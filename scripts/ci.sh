#!/usr/bin/env bash
# Pre-PR gate: tier-1 tests, formatting, and lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (netlist analyses: no unordered hash-map iteration) =="
# The analysis cache promises deterministic, sorted results; iterating a
# HashMap/HashSet in ril-netlist would silently break that promise.
cargo clippy -p ril-netlist --all-targets -- -D warnings -D clippy::iter_over_hash_type

echo "== serve smoke (rilock serve + remote SAT attack with morphing) =="
mkdir -p exp_out
ADDR_FILE=exp_out/ci_serve.addr
rm -f "$ADDR_FILE"
target/release/rilock serve --addr 127.0.0.1:0 --addr-file "$ADDR_FILE" \
  --workers 2 --morph-queries 2 >exp_out/ci_serve.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$ADDR_FILE" ] && break; sleep 0.1; done
[ -s "$ADDR_FILE" ] || { echo "serve never became ready"; kill "$SERVE_PID"; exit 1; }
# A morphing chip with an armed-by-morph SE stage: the attack itself may
# win or be defended, but the round trip, the re-keys, and the drain must
# all be clean.
target/release/rilock remote-attack "$(cat "$ADDR_FILE")" \
  --benchmark adder:8 --spec 2x2 --blocks 2 --seed 7 --scan --zero-se \
  --timeout 30 --shutdown >exp_out/ci_remote_attack.log 2>&1 \
  || { tail -20 exp_out/ci_serve.log exp_out/ci_remote_attack.log; exit 1; }
grep -q "server drained" exp_out/ci_remote_attack.log
# The scheduler must actually have re-keyed the chip mid-attack (the
# design/seed/solver are all pinned, so the count is deterministic).
grep -q "re-key(s) observed" exp_out/ci_remote_attack.log
! grep -q "(0 re-key(s) observed" exp_out/ci_remote_attack.log
# Clean shutdown: the server process must exit 0 after the drain.
wait "$SERVE_PID"
grep -q "ril-serve drained" exp_out/ci_serve.log
tail -4 exp_out/ci_remote_attack.log

echo "== dynamic defense smoke (ril-bench run dynamic_defense --smoke) =="
RIL_OUT_DIR=exp_out/ci_dynamic RIL_LOG=error cargo run --release -q -p ril-bench --bin ril-bench -- \
  run dynamic_defense --smoke >exp_out/ci_dynamic.log 2>&1 \
  || { tail -50 exp_out/ci_dynamic.log; exit 1; }
tail -10 exp_out/ci_dynamic.log
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_dynamic

echo "== incremental verify smoke (ril-bench run incremental_verify --smoke) =="
# Timed live, never cached (--no-cache is belt-and-braces): the ≥5x
# incremental-vs-full-rebuild floor is asserted inside the experiment.
RIL_OUT_DIR=exp_out/ci_incremental RIL_LOG=error cargo run --release -q -p ril-bench --bin ril-bench -- \
  run incremental_verify --smoke --no-cache >exp_out/ci_incremental.log 2>&1 \
  || { tail -50 exp_out/ci_incremental.log; exit 1; }
tail -10 exp_out/ci_incremental.log
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_incremental

echo "== experiment smoke (ril-bench run --all --smoke) =="
RIL_OUT_DIR=exp_out/ci_smoke RIL_LOG=error cargo run --release -q -p ril-bench --bin ril-bench -- \
  run --all --smoke >exp_out/ci_smoke.log 2>&1 \
  || { tail -50 exp_out/ci_smoke.log; exit 1; }
tail -15 exp_out/ci_smoke.log

echo "== run artifacts (ril-bench validate + trace) =="
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_smoke
cargo run --release -q -p ril-bench --bin ril-bench -- trace exp_out/ci_smoke \
  >exp_out/ci_trace.log || { tail -50 exp_out/ci_trace.log; exit 1; }
tail -5 exp_out/ci_trace.log

echo "== portfolio smoke (RIL_SOLVER_THREADS=4) =="
RIL_OUT_DIR=exp_out/ci_smoke_portfolio RIL_LOG=error RIL_SOLVER_THREADS=4 \
  cargo run --release -q -p ril-bench --bin ril-bench -- \
  run --all --smoke >exp_out/ci_smoke_portfolio.log 2>&1 \
  || { tail -50 exp_out/ci_smoke_portfolio.log; exit 1; }
tail -15 exp_out/ci_smoke_portfolio.log
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_smoke_portfolio

echo "ci.sh: all green"
