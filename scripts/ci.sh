#!/usr/bin/env bash
# Pre-PR gate: tier-1 tests, formatting, and lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== experiment smoke (ril-bench run --all --smoke) =="
RIL_OUT_DIR=exp_out/ci_smoke RIL_LOG=error cargo run --release -q -p ril-bench --bin ril-bench -- \
  run --all --smoke >exp_out/ci_smoke.log 2>&1 \
  || { tail -50 exp_out/ci_smoke.log; exit 1; }
tail -15 exp_out/ci_smoke.log

echo "== run artifacts (ril-bench validate + trace) =="
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_smoke
cargo run --release -q -p ril-bench --bin ril-bench -- trace exp_out/ci_smoke \
  >exp_out/ci_trace.log || { tail -50 exp_out/ci_trace.log; exit 1; }
tail -5 exp_out/ci_trace.log

echo "== portfolio smoke (RIL_SOLVER_THREADS=4) =="
RIL_OUT_DIR=exp_out/ci_smoke_portfolio RIL_LOG=error RIL_SOLVER_THREADS=4 \
  cargo run --release -q -p ril-bench --bin ril-bench -- \
  run --all --smoke >exp_out/ci_smoke_portfolio.log 2>&1 \
  || { tail -50 exp_out/ci_smoke_portfolio.log; exit 1; }
tail -15 exp_out/ci_smoke_portfolio.log
cargo run --release -q -p ril-bench --bin ril-bench -- validate exp_out/ci_smoke_portfolio

echo "ci.sh: all green"
