#!/usr/bin/env bash
# Pre-PR gate: tier-1 tests, formatting, and lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --all --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
