#!/usr/bin/env bash
# Regenerates every table/figure of the paper and collects the outputs under
# exp_out/. EXPERIMENTS.md embeds a captured run of this script.
#
# Budget knobs:
#   RIL_TIMEOUT_SECS   per-cell attack budget (default 60)
#   RIL_TABLE1_FULL=1  full 10-row Table I sweep
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p exp_out

run() {
  local name="$1"
  shift
  echo ">>> $name"
  cargo run --release -q -p ril-bench --bin "$name" "$@" >"exp_out/$name.txt" 2>"exp_out/$name.err"
}

export RIL_TIMEOUT_SECS="${RIL_TIMEOUT_SECS:-60}"
RIL_TABLE1_FULL="${RIL_TABLE1_FULL:-1}" run table1
run table3
run table4
run table5
run fig1
run fig5
run fig6
run overhead
run scan_defense
run corruptibility
run lut_scaling
echo "all outputs in exp_out/"
