#!/usr/bin/env bash
# Regenerates every table/figure of the paper and collects the outputs under
# exp_out/. EXPERIMENTS.md embeds a captured run of this script.
#
# Budget knobs (validated by ril-bench; malformed values are errors):
#   RIL_TIMEOUT_SECS   per-cell attack budget (default 60)
#   RIL_TABLE1_FULL=1  full 10-row Table I sweep
#   RIL_THREADS        sweep worker threads (default: all cores)
#
# Finished sweep cells are content-cached under exp_out/cache/, so an
# interrupted collection resumes where it stopped; each experiment also
# leaves MANIFEST_<name>.json and EVENTS_<name>.jsonl under exp_out/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p exp_out

export RIL_TIMEOUT_SECS="${RIL_TIMEOUT_SECS:-60}"
export RIL_TABLE1_FULL="${RIL_TABLE1_FULL:-1}"

cargo build --release -q -p ril-bench --bin ril-bench
RIL_BENCH=target/release/ril-bench

for name in $("$RIL_BENCH" list | tail -n +2 | awk '{print $1}'); do
  echo ">>> $name"
  "$RIL_BENCH" run "$name" >"exp_out/$name.txt" 2>"exp_out/$name.err"
done
echo "all outputs in exp_out/"
