//! End-to-end: real attacks over real sockets, with and without the
//! morph scheduler armed.

use ril_attacks::prelude::*;
use ril_serve::{ClientConfig, DesignSpec, RemoteOracle, ServeConfig, Server};
use ril_trace::{Phase, Tracer};
use std::time::Duration;

fn design(scan: bool, zero_se: bool, seed: u64) -> DesignSpec {
    DesignSpec {
        benchmark: "adder:8".to_string(),
        spec: "2x2".to_string(),
        blocks: 2,
        seed,
        scan,
        zero_se,
    }
}

fn attack_cfg() -> SatAttackConfig {
    SatAttackConfig {
        timeout: Some(Duration::from_secs(30)),
        ..SatAttackConfig::default()
    }
}

/// The tentpole claim, static half: with no morphing, a stock SAT attack
/// driven through [`RemoteOracle`] recovers a truly-correct key, exactly
/// as it does against the in-process oracle.
#[test]
fn sat_attack_succeeds_through_a_static_remote_oracle() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let design = design(false, false, 41);
    let locked = design.build().unwrap();
    let view = attacker_view(&locked);

    let mut oracle =
        RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
            .unwrap();
    let report = ril_attacks::satattack::sat_attack(&view, &mut oracle, &attack_cfg());
    let AttackResult::ExactKey(key) = &report.result else {
        panic!("remote attack failed: {report}");
    };
    assert!(locked.equivalent_under_key(key, 32).unwrap());
    assert_eq!(oracle.generation_changes(), 0, "no scheduler is armed");
    assert!(oracle.queries() > 0);

    // The server counted the same traffic.
    let stats = oracle.client().stats().unwrap();
    assert_eq!(stats.chips.len(), 1);
    assert!(stats.chips[0].queries >= oracle.queries());
    assert_eq!(stats.chips[0].morphs, 0);
    handle.shutdown();
}

/// The tentpole claim, dynamic half: the same attack against the same
/// design family is defeated when the query-count morph trigger re-rolls
/// the Scan-Enable keys out from under the accumulating DIP set.
#[test]
fn query_triggered_morphing_defeats_the_remote_attack() {
    let tracer = Tracer::new();
    let root = tracer.open_root("e2e", Phase::Experiment);
    let handle = Server::start_traced(
        ServeConfig {
            morph_queries: Some(1),
            ..ServeConfig::default()
        },
        &tracer,
        root,
    )
    .unwrap();

    // A fresh SE generation per query is overwhelmingly likely to corrupt
    // some accumulated DIP response, but a tiny adder can occasionally
    // dodge every re-roll — so, like the static scan-defense test in
    // ril-attacks, try a few seeds and require a defeat among them.
    let mut defeated = false;
    for seed in 41..46 {
        // Provisioned transparent (SE keys zeroed): only the morphs arm
        // the scan corruption — exactly the paper's dynamic defense.
        let design = DesignSpec {
            blocks: 3,
            ..design(true, true, seed)
        };
        let locked = design.build().unwrap();
        let view = attacker_view(&locked);

        let mut oracle =
            RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
                .unwrap();
        let report = ril_attacks::satattack::sat_attack(&view, &mut oracle, &attack_cfg());
        let truly_correct = match &report.result {
            AttackResult::ExactKey(key) => locked.equivalent_under_key(key, 32).unwrap(),
            _ => false,
        };
        assert!(
            oracle.generation_changes() > 0,
            "the oracle should have observed generation bumps"
        );
        // Those morphs rode behind query responses (no delta published),
        // so the delta accumulator must report itself incomplete.
        assert_eq!(oracle.take_delta(), None);
        if !truly_correct {
            defeated = true;
            break;
        }
    }
    assert!(
        defeated,
        "a chip morphing every query must defeat the attack on some seed"
    );

    handle.shutdown();
    tracer.close(root);
    assert!(tracer.metrics().counter("serve.morphs") > 0);
    assert!(tracer.metrics().counter("serve.requests") > 0);
}

/// The wall-clock trigger morphs chips that receive no traffic at all.
#[test]
fn time_triggered_morphing_rekeys_idle_chips() {
    let handle = Server::start(ServeConfig {
        morph_interval: Some(Duration::from_millis(20)),
        ..ServeConfig::default()
    })
    .unwrap();
    let design = design(true, false, 7);
    let mut oracle =
        RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
            .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = oracle.client().stats().unwrap();
        if stats.chips[0].morphs >= 2 {
            assert_eq!(stats.chips[0].generation, stats.chips[0].morphs);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "scheduler never fired: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

/// Morphing preserves the chip's functional contract: a scan-free chip
/// answers identically across generations, and every manual morph bumps
/// the generation exactly once.
#[test]
fn manual_morphs_preserve_functional_responses() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let design = design(false, false, 13);
    let mut oracle =
        RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
            .unwrap();
    let width = oracle.input_width();
    let patterns: Vec<Vec<bool>> = (0..16u32)
        .map(|i| (0..width).map(|b| (i >> (b % 32)) & 1 == 1).collect())
        .collect();
    let before: Vec<Vec<bool>> = patterns
        .iter()
        .map(|p| oracle.try_query(p).unwrap())
        .collect();
    let key_bits = design.build().unwrap().keys.bits().len();
    let mut accumulated = ril_core::MorphDelta::default();
    for round in 1..=3u64 {
        let delta = oracle.morph().unwrap();
        assert_eq!(oracle.generation(), Some(round));
        // The published delta names real key-bit indices of this design.
        assert!(delta.changed_bits().iter().all(|&b| b < key_bits));
        accumulated.merge(&delta);
        let after: Vec<Vec<bool>> = patterns
            .iter()
            .map(|p| oracle.try_query(p).unwrap())
            .collect();
        assert_eq!(before, after, "morph broke functionality at round {round}");
    }
    // Every generation change arrived with a published delta, so the
    // accumulator is complete and drains to the union of the rounds.
    assert_eq!(oracle.take_delta(), Some(accumulated));
    assert_eq!(oracle.take_delta(), Some(ril_core::MorphDelta::default()));
    handle.shutdown();
}
