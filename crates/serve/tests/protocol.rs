//! Protocol-robustness tests: hostile and broken clients must get typed
//! errors, never panic a worker or wedge the service.

use ril_serve::{
    ClientConfig, ClientError, DesignSpec, ErrorKind, RemoteOracle, Request, Response, ServeClient,
    ServeConfig, Server, MAX_FRAME_BYTES,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn small_design() -> DesignSpec {
    DesignSpec {
        benchmark: "adder:6".to_string(),
        spec: "2x2".to_string(),
        blocks: 1,
        seed: 3,
        scan: false,
        zero_se: false,
    }
}

fn fast_client(addr: impl Into<String>) -> ServeClient {
    ServeClient::with_config(
        addr,
        ClientConfig {
            timeout: Duration::from_secs(2),
            retries: 1,
            backoff: Duration::from_millis(10),
        },
    )
}

#[test]
fn malformed_frames_get_typed_errors() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Valid frame, garbage payload.
    let body = b"this is not json";
    stream
        .write_all(&(body.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(body).unwrap();
    let text = ril_serve::read_frame(&mut stream).unwrap();
    match Response::parse(&text).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Malformed),
        other => panic!("expected a malformed error, got {other:?}"),
    }
    drop(stream);

    // Valid JSON, unknown op — also typed, and the connection stays alive
    // (framing is still intact).
    let mut client = fast_client(handle.addr().to_string());
    let err = client
        .request(&Request::Morph { chip: 1 })
        .expect_err("no chip exists yet");
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::UnknownChip,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn oversized_frames_are_refused_before_the_body_is_read() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Declare a 100 MiB frame; send no body at all. The server must
    // answer from the header alone.
    let declared: u32 = 100 * 1024 * 1024;
    assert!(declared as usize > MAX_FRAME_BYTES);
    stream.write_all(&declared.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let text = ril_serve::read_frame(&mut stream).unwrap();
    match Response::parse(&text).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Oversized),
        other => panic!("expected an oversized error, got {other:?}"),
    }
    // The server closes the now-unframed connection.
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must close after an oversized frame");
    handle.shutdown();
}

#[test]
fn truncated_frames_do_not_wedge_the_service() {
    let handle = Server::start(ServeConfig::default()).unwrap();

    // Half a header, then hang up.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&[0u8, 0]).unwrap();
    drop(stream);

    // A full header promising a body that never comes, then hang up.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&64u32.to_be_bytes()).unwrap();
    stream.write_all(b"partial").unwrap();
    drop(stream);

    // The service keeps answering new clients.
    let mut client = fast_client(handle.addr().to_string());
    let stats = client.stats().unwrap();
    assert_eq!(stats.chips.len(), 0);
    handle.shutdown();
}

#[test]
fn bad_query_widths_are_typed() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut client = fast_client(handle.addr().to_string());
    let chip = match client
        .request(&Request::Activate {
            design: small_design(),
        })
        .unwrap()
    {
        Response::Activated { chip, .. } => chip,
        other => panic!("activation failed: {other:?}"),
    };
    let err = client
        .request(&Request::Query {
            chip,
            inputs: vec![true; 3],
        })
        .expect_err("wrong width must be rejected");
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::BadWidth,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn query_limits_rate_limit_the_chip() {
    let handle = Server::start(ServeConfig {
        query_limit: Some(4),
        ..ServeConfig::default()
    })
    .unwrap();
    let design = small_design();
    let mut oracle =
        RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
            .unwrap();
    use ril_attacks::OracleSource;
    let width = oracle.input_width();
    for _ in 0..4 {
        oracle.try_query(&vec![false; width]).unwrap();
    }
    let err = oracle
        .try_query(&vec![false; width])
        .expect_err("budget is exhausted");
    assert_eq!(
        err,
        ril_attacks::OracleError::Protocol {
            kind: "rate_limited".to_string(),
            message: format!("chip {} exhausted its 4-query budget", oracle.chip()),
        }
    );
    handle.shutdown();
}

#[test]
fn unknown_benchmarks_fail_activation_with_internal() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let mut client = fast_client(handle.addr().to_string());
    let err = client
        .request(&Request::Activate {
            design: DesignSpec {
                benchmark: "no-such-circuit".to_string(),
                ..small_design()
            },
        })
        .expect_err("unknown benchmark");
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::Internal,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn dead_servers_produce_transport_errors_after_retries() {
    // Bind a port, then close it so nothing listens there.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let mut client = ServeClient::with_config(
        dead_addr.to_string(),
        ClientConfig {
            timeout: Duration::from_millis(200),
            retries: 2,
            backoff: Duration::from_millis(1),
        },
    );
    let err = client
        .request(&Request::Stats)
        .expect_err("nothing listens");
    match err {
        ClientError::Transport(msg) => {
            assert!(msg.contains("3 attempts"), "retry count missing: {msg}")
        }
        other => panic!("expected a transport error, got {other:?}"),
    }

    // The same failure through the OracleSource surface is a typed
    // OracleError, which the attack loop turns into AttackResult::Failed.
    use ril_attacks::OracleSource;
    let mut oracle = RemoteOracle::bind(
        dead_addr.to_string(),
        ClientConfig {
            timeout: Duration::from_millis(200),
            retries: 1,
            backoff: Duration::from_millis(1),
        },
        1,
        4,
        4,
    );
    match oracle.try_query(&[false; 4]) {
        Err(ril_attacks::OracleError::Transport(_)) => {}
        other => panic!("expected a transport oracle error, got {other:?}"),
    }
}

#[test]
fn shutdown_op_drains_the_server() {
    let handle = Server::start(ServeConfig::default()).unwrap();
    let addr = handle.addr();
    let mut client = fast_client(addr.to_string());
    client.shutdown_server().unwrap();
    handle.shutdown(); // joins every thread; must not hang
                       // The listener is gone: a fresh connection is refused (or, at worst,
                       // accepted by nobody and then reset).
    std::thread::sleep(Duration::from_millis(50));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err();
    assert!(refused, "listener should be closed after shutdown");
}
