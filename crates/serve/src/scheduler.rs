//! The morph scheduler: the paper's dynamic defense made operational.
//!
//! A chip re-keys itself every K oracle queries (checked inline in the
//! query path) or every T milliseconds (this module's background thread).
//! Each morph runs [`ril_core::morph_all`] — functionality under the
//! correct key is preserved, but the key itself, and with Scan-Enable
//! circuitry the *scan-response corruption pattern*, changes — so DIPs an
//! attacker accumulated against an earlier generation stop describing the
//! chip it is now talking to.

use crate::server::{HostedChip, State};
use ril_core::{morph_all_delta, MorphDelta, MorphReport};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Applies one morph to a hosted chip: re-keys the locked circuit,
/// re-burns the oracle, bumps the generation, and resets both triggers.
/// Returns the move report plus the *net* key delta, which the protocol
/// publishes so clients can re-check only the dirty output cones.
pub(crate) fn do_morph(chip: &mut HostedChip) -> (MorphReport, MorphDelta) {
    let (report, delta) = morph_all_delta(&mut chip.locked, &mut chip.rng);
    chip.oracle.rekey(&chip.locked);
    chip.generation += 1;
    chip.morphs += 1;
    chip.since_morph = 0;
    chip.last_morph = Instant::now();
    ril_trace::counter("serve.morphs", 1);
    ril_trace::counter("serve.key_bits_morphed", delta.len() as u64);
    (report, delta)
}

/// Spawns the time-based trigger: every tick, morph any chip whose key
/// has been stable for the configured interval. The tick is a quarter of
/// the interval (capped at 50 ms) so the jitter stays small relative to T.
pub(crate) fn spawn_scheduler(state: Arc<State>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let interval = state
            .cfg
            .morph_interval
            .expect("scheduler spawned without an interval");
        let tick = (interval / 4)
            .min(Duration::from_millis(50))
            .max(Duration::from_millis(1));
        let _guard = state.install_trace();
        while !state.shutting_down() {
            std::thread::sleep(tick);
            let mut chips = state.chips.lock().expect("chip table");
            for chip in chips.values_mut() {
                if chip.last_morph.elapsed() >= interval {
                    do_morph(chip);
                }
            }
        }
    })
}
