//! The client side: a framed TCP client with reconnect/retry, and the
//! [`RemoteOracle`] adapter that lets every oracle-guided attack in
//! `ril-attacks` run unchanged against a live (morphing) server.

use crate::protocol::{
    read_frame, write_frame, DesignSpec, ErrorKind, FrameError, Request, Response, ServerStats,
};
use ril_attacks::{OracleError, OracleSource};
use ril_core::MorphDelta;
use std::net::TcpStream;
use std::time::Duration;

/// Transport tuning for [`ServeClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-request socket timeout (connect, read, and write).
    pub timeout: Duration,
    /// Transport retries per request (reconnect + resend).
    pub retries: u32,
    /// Base backoff between retries (doubles per attempt).
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            timeout: Duration::from_secs(2),
            retries: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// A client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server answered with a typed protocol error. Not retried: the
    /// server made a decision, resending the same frame cannot change it.
    Server {
        /// The server's error category.
        kind: ErrorKind,
        /// The server's detail message.
        message: String,
    },
    /// The transport failed after exhausting every retry.
    Transport(String),
    /// The server answered with a frame the protocol does not allow here.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server { kind, message } => {
                write!(f, "server error `{}`: {message}", kind.as_str())
            }
            ClientError::Transport(msg) => write!(f, "transport failure: {msg}"),
            ClientError::UnexpectedResponse(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for OracleError {
    fn from(e: ClientError) -> OracleError {
        match e {
            ClientError::Server { kind, message } => OracleError::Protocol {
                kind: kind.as_str().to_string(),
                message,
            },
            ClientError::Transport(msg) => OracleError::Transport(msg),
            ClientError::UnexpectedResponse(msg) => OracleError::Protocol {
                kind: "unexpected_response".to_string(),
                message: msg,
            },
        }
    }
}

/// A framed request/response client with connection reuse: one TCP stream
/// carries every request until it fails, then the next request
/// reconnects (bounded retries, exponential backoff).
pub struct ServeClient {
    addr: String,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
}

impl ServeClient {
    /// A client for `addr` (e.g. `127.0.0.1:4615`) with default tuning.
    pub fn connect(addr: impl Into<String>) -> ServeClient {
        ServeClient::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit transport tuning.
    pub fn with_config(addr: impl Into<String>, cfg: ClientConfig) -> ServeClient {
        ServeClient {
            addr: addr.into(),
            cfg,
            conn: None,
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn stream(&mut self) -> Result<&mut TcpStream, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(|e| e.to_string())?;
            stream
                .set_read_timeout(Some(self.cfg.timeout))
                .map_err(|e| e.to_string())?;
            stream
                .set_write_timeout(Some(self.cfg.timeout))
                .map_err(|e| e.to_string())?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn round_trip_once(&mut self, json: &str) -> Result<Response, String> {
        let stream = self.stream()?;
        write_frame(stream, json).map_err(|e| e.to_string())?;
        let text = match read_frame(stream) {
            Ok(text) => text,
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err("request timed out".to_string())
            }
            Err(e) => return Err(e.to_string()),
        };
        Response::parse(&text).map_err(|e| format!("bad response frame: {e}"))
    }

    /// Sends one request, reconnecting and retrying on transport failure.
    /// Server-side [`Response::Error`]s are returned as
    /// [`ClientError::Server`] without retrying.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] once retries are exhausted.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let json = req.to_json();
        let mut last = String::new();
        for attempt in 0..=self.cfg.retries {
            if attempt > 0 {
                ril_trace::counter("oracle.remote.retries", 1);
                std::thread::sleep(self.cfg.backoff * (1 << (attempt - 1).min(8)));
            }
            match self.round_trip_once(&json) {
                Ok(Response::Error { kind, message }) => {
                    return Err(ClientError::Server { kind, message })
                }
                Ok(resp) => return Ok(resp),
                Err(msg) => {
                    // The stream is suspect; reconnect on the next try.
                    self.conn = None;
                    last = msg;
                }
            }
        }
        Err(ClientError::Transport(format!(
            "{} after {} attempts: {last}",
            self.addr,
            self.cfg.retries + 1
        )))
    }

    /// Fetches the server's statistics snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

/// An [`OracleSource`] backed by a chip on a remote server.
///
/// SAT, AppSAT, and ScanSAT take `&mut dyn OracleSource`, so swapping the
/// in-process [`ril_attacks::Oracle`] for this struct is the *entire*
/// change needed to attack over the network — including against a target
/// whose morph scheduler is live. The [`RemoteOracle::generation_changes`]
/// counter reports how often the chip re-keyed mid-attack.
pub struct RemoteOracle {
    client: ServeClient,
    chip: u64,
    inputs: usize,
    outputs: usize,
    queries: u64,
    generation: u64,
    generation_changes: u64,
    pending_delta: MorphDelta,
    delta_complete: bool,
}

impl RemoteOracle {
    /// Activates a fresh chip from `design` on the server at `addr` and
    /// returns an oracle bound to it.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the activation round trip.
    pub fn activate(
        addr: impl Into<String>,
        cfg: ClientConfig,
        design: &DesignSpec,
    ) -> Result<RemoteOracle, ClientError> {
        let mut client = ServeClient::with_config(addr, cfg);
        let resp = client.request(&Request::Activate {
            design: design.clone(),
        })?;
        match resp {
            Response::Activated {
                chip,
                generation,
                inputs,
                outputs,
                ..
            } => Ok(RemoteOracle {
                client,
                chip,
                inputs,
                outputs,
                queries: 0,
                generation,
                generation_changes: 0,
                pending_delta: MorphDelta::default(),
                delta_complete: true,
            }),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Binds to an already-activated chip (widths fetched via a probe is
    /// not possible over this protocol, so the caller supplies them).
    pub fn bind(
        addr: impl Into<String>,
        cfg: ClientConfig,
        chip: u64,
        inputs: usize,
        outputs: usize,
    ) -> RemoteOracle {
        RemoteOracle {
            client: ServeClient::with_config(addr, cfg),
            chip,
            inputs,
            outputs,
            queries: 0,
            generation: 0,
            generation_changes: 0,
            pending_delta: MorphDelta::default(),
            // The chip may have morphed before we bound to it.
            delta_complete: false,
        }
    }

    /// The server-assigned chip id.
    pub fn chip(&self) -> u64 {
        self.chip
    }

    /// How many times a response arrived under a new key generation.
    pub fn generation_changes(&self) -> u64 {
        self.generation_changes
    }

    /// Manually re-keys the remote chip and returns the *net* key delta
    /// the server published — which key bits now hold a different value.
    /// The delta is also folded into [`RemoteOracle::take_delta`]'s
    /// accumulator.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn morph(&mut self) -> Result<MorphDelta, ClientError> {
        match self.client.request(&Request::Morph { chip: self.chip })? {
            Response::Morphed {
                generation,
                changed_bits,
                ..
            } => {
                let delta = MorphDelta::from_changed_bits(changed_bits);
                self.pending_delta.merge(&delta);
                if generation != self.generation {
                    self.generation_changes += 1;
                    self.generation = generation;
                }
                Ok(delta)
            }
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Drains the accumulated key delta since the last call (or since
    /// activation): `Some(delta)` when every generation change seen so
    /// far arrived with a published delta, `None` when at least one morph
    /// happened *behind* a query/scheduler (those responses carry only
    /// the new generation, not the delta) — the caller must then fall
    /// back to a full re-check rather than a dirty-cone-only one.
    /// Either way the accumulator resets.
    pub fn take_delta(&mut self) -> Option<MorphDelta> {
        let complete = self.delta_complete;
        self.delta_complete = true;
        let delta = std::mem::take(&mut self.pending_delta);
        complete.then_some(delta)
    }

    /// The underlying client (for `stats` / `shutdown_server`).
    pub fn client(&mut self) -> &mut ServeClient {
        &mut self.client
    }

    fn observe_generation(&mut self, generation: u64) {
        if generation != self.generation {
            self.generation_changes += 1;
            self.generation = generation;
            // This generation bump was *not* accompanied by a delta (it
            // rode a query response), so the accumulator is incomplete.
            self.delta_complete = false;
        }
    }
}

impl OracleSource for RemoteOracle {
    fn input_width(&self) -> usize {
        self.inputs
    }

    fn output_width(&self) -> usize {
        self.outputs
    }

    fn try_query(&mut self, inputs: &[bool]) -> Result<Vec<bool>, OracleError> {
        let resp = self
            .client
            .request(&Request::Query {
                chip: self.chip,
                inputs: inputs.to_vec(),
            })
            .map_err(OracleError::from)?;
        match resp {
            Response::Outputs { bits, generation } => {
                self.queries += 1;
                self.observe_generation(generation);
                Ok(bits)
            }
            other => Err(OracleError::Protocol {
                kind: "unexpected_response".to_string(),
                message: format!("{other:?}"),
            }),
        }
    }

    fn queries(&self) -> u64 {
        self.queries
    }

    fn generation(&self) -> Option<u64> {
        Some(self.generation)
    }
}
