//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON, written with the suite's hand-rolled writers and read
//! back with [`ril_attacks::json::JsonValue`] (no crates-io `serde` in
//! this environment). Frames are capped at [`MAX_FRAME_BYTES`]; an
//! oversized header is rejected *before* the body is read, so a malicious
//! length cannot make the server allocate.
//!
//! Chips are provisioned **by design spec**, not by shipping netlists:
//! the [`crate::server`] and any client rebuild bit-identical
//! [`LockedCircuit`]s from the same [`DesignSpec`] because the
//! [`Obfuscator`] is deterministic in its seed. The adversary's client
//! derives its attacker view the same way — exactly the reverse-engineered
//! layout knowledge the threat model grants it.

use ril_attacks::json::{escape, JsonValue};
use ril_core::{KeyBitKind, LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::{generators, Netlist};
use std::io::{Read, Write};

/// Hard cap on one frame's JSON payload (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A failed frame read/write.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary — the peer closed the connection.
    Closed,
    /// The connection died mid-frame (partial header or body).
    Truncated,
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// The payload is not the UTF-8 JSON the protocol requires.
    Malformed(String),
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Truncated => f.write_str("connection died mid-frame"),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one length-prefixed frame and returns its JSON text.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF, [`FrameError::Truncated`] on a
/// mid-frame disconnect, [`FrameError::Oversized`] when the header
/// declares more than [`MAX_FRAME_BYTES`] (the body is *not* read).
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    match r.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            return Err(FrameError::Truncated)
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    String::from_utf8(body).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] when `json` exceeds [`MAX_FRAME_BYTES`];
/// otherwise propagates I/O failures.
pub fn write_frame(w: &mut impl Write, json: &str) -> Result<(), FrameError> {
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(bytes.len()));
    }
    let header = (bytes.len() as u32).to_be_bytes();
    w.write_all(&header).map_err(FrameError::Io)?;
    w.write_all(bytes).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Typed server-side error kinds carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request frame is not valid protocol JSON.
    Malformed,
    /// A frame exceeded [`MAX_FRAME_BYTES`].
    Oversized,
    /// No chip with the given id is hosted.
    UnknownChip,
    /// A query's input width does not match the chip.
    BadWidth,
    /// The chip's per-chip query limit is exhausted.
    RateLimited,
    /// The server is shutting down.
    ShuttingDown,
    /// Chip provisioning or evaluation failed server-side.
    Internal,
}

impl ErrorKind {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Oversized => "oversized",
            ErrorKind::UnknownChip => "unknown_chip",
            ErrorKind::BadWidth => "bad_width",
            ErrorKind::RateLimited => "rate_limited",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire token back.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "malformed" => ErrorKind::Malformed,
            "oversized" => ErrorKind::Oversized,
            "unknown_chip" => ErrorKind::UnknownChip,
            "bad_width" => ErrorKind::BadWidth,
            "rate_limited" => ErrorKind::RateLimited,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A deterministic chip recipe: both sides rebuild the identical
/// [`LockedCircuit`] from it (the obfuscator is seed-deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Host circuit: a [`generators::benchmark`] name (`c7552`, `b15`,
    /// …) or `adder:N` / `multiplier:N`.
    pub benchmark: String,
    /// RIL block spec token (`2x2`, `8x8`, `8x8x8`).
    pub spec: String,
    /// Number of blocks to insert.
    pub blocks: usize,
    /// Obfuscator seed.
    pub seed: u64,
    /// Add the Scan-Enable circuitry.
    pub scan: bool,
    /// Provision with all `MTJ_SE` key bits zeroed: the scan path starts
    /// transparent and only the *morph scheduler's* SE re-rolls arm the
    /// corruption — the dynamic-defense experiment's starting state.
    pub zero_se: bool,
}

impl DesignSpec {
    /// Builds the host netlist for this spec.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown benchmark names.
    pub fn host(&self) -> Result<Netlist, String> {
        if let Some(n) = self.benchmark.strip_prefix("adder:") {
            let bits: usize = n.parse().map_err(|_| format!("bad adder width `{n}`"))?;
            return Ok(generators::adder(bits));
        }
        if let Some(n) = self.benchmark.strip_prefix("multiplier:") {
            let bits: usize = n
                .parse()
                .map_err(|_| format!("bad multiplier width `{n}`"))?;
            return Ok(generators::multiplier(bits));
        }
        generators::benchmark(&self.benchmark)
            .ok_or_else(|| format!("unknown benchmark `{}`", self.benchmark))
    }

    /// Locks the host deterministically. Both the server (to provision)
    /// and a client (to derive its attacker view) call this and get the
    /// same circuit, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns a message on a bad spec token, unknown benchmark, or
    /// obfuscation failure.
    pub fn build(&self) -> Result<LockedCircuit, String> {
        let spec = RilBlockSpec::parse(&self.spec)
            .ok_or_else(|| format!("bad spec token `{}`", self.spec))?;
        let host = self.host()?;
        let mut locked = Obfuscator::new(spec)
            .blocks(self.blocks)
            .scan_obfuscation(self.scan)
            .seed(self.seed)
            .obfuscate(&host)
            .map_err(|e| format!("obfuscation failed: {e}"))?;
        if self.zero_se {
            let se_bits: Vec<usize> = locked
                .keys
                .kinds()
                .iter()
                .enumerate()
                .filter(|(_, k)| matches!(k, KeyBitKind::ScanEnable { .. }))
                .map(|(i, _)| i)
                .collect();
            for i in se_bits {
                locked.keys.set_bit(i, false);
            }
        }
        Ok(locked)
    }

    /// The spec as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"benchmark":"{}","spec":"{}","blocks":{},"seed":{},"scan":{},"zero_se":{}}}"#,
            escape(&self.benchmark),
            escape(&self.spec),
            self.blocks,
            self.seed,
            self.scan,
            self.zero_se,
        )
    }

    fn from_json(v: &JsonValue) -> Result<DesignSpec, String> {
        Ok(DesignSpec {
            benchmark: str_field(v, "benchmark")?,
            spec: str_field(v, "spec")?,
            blocks: u64_field(v, "blocks")? as usize,
            seed: u64_field(v, "seed")?,
            scan: bool_field(v, "scan")?,
            zero_se: bool_field(v, "zero_se")?,
        })
    }
}

fn str_field(v: &JsonValue, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{name}`"))
}

fn u64_field(v: &JsonValue, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field `{name}`"))
}

fn bool_field(v: &JsonValue, name: &str) -> Result<bool, String> {
    v.get(name)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing bool field `{name}`"))
}

/// Encodes a bit vector as the wire's compact `"0101"` string.
pub fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Decodes the wire's `"0101"` bit-string.
///
/// # Errors
///
/// Returns a message on any character outside `0`/`1`.
pub fn bits_from_str(s: &str) -> Result<Vec<bool>, String> {
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad bit character `{other}`")),
        })
        .collect()
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Lock + provision a chip from a deterministic design spec.
    Activate {
        /// The chip recipe.
        design: DesignSpec,
    },
    /// One oracle access through the scan interface.
    Query {
        /// Target chip id.
        chip: u64,
        /// Data-input pattern (SE excluded — the scan path asserts it).
        inputs: Vec<bool>,
    },
    /// Several oracle accesses in one frame.
    QueryBatch {
        /// Target chip id.
        chip: u64,
        /// Data-input patterns.
        patterns: Vec<Vec<bool>>,
    },
    /// Manual re-key of one chip.
    Morph {
        /// Target chip id.
        chip: u64,
    },
    /// Server + per-chip statistics.
    Stats,
    /// Graceful shutdown of the whole server.
    Shutdown,
}

impl Request {
    /// The request as a JSON frame payload.
    pub fn to_json(&self) -> String {
        match self {
            Request::Activate { design } => {
                format!(r#"{{"op":"activate","design":{}}}"#, design.to_json())
            }
            Request::Query { chip, inputs } => format!(
                r#"{{"op":"query","chip":{chip},"inputs":"{}"}}"#,
                bits_to_string(inputs)
            ),
            Request::QueryBatch { chip, patterns } => {
                let rows: Vec<String> = patterns
                    .iter()
                    .map(|p| format!("\"{}\"", bits_to_string(p)))
                    .collect();
                format!(
                    r#"{{"op":"query_batch","chip":{chip},"patterns":[{}]}}"#,
                    rows.join(",")
                )
            }
            Request::Morph { chip } => format!(r#"{{"op":"morph","chip":{chip}}}"#),
            Request::Stats => r#"{"op":"stats"}"#.to_string(),
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// Returns a message for anything that is not a protocol request.
    pub fn parse(text: &str) -> Result<Request, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let op = str_field(&v, "op")?;
        Ok(match op.as_str() {
            "activate" => Request::Activate {
                design: DesignSpec::from_json(v.get("design").ok_or("missing `design` object")?)?,
            },
            "query" => Request::Query {
                chip: u64_field(&v, "chip")?,
                inputs: bits_from_str(&str_field(&v, "inputs")?)?,
            },
            "query_batch" => {
                let rows = v
                    .get("patterns")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `patterns` array")?;
                let mut patterns = Vec::with_capacity(rows.len());
                for row in rows {
                    patterns.push(bits_from_str(
                        row.as_str().ok_or("pattern rows must be bit strings")?,
                    )?);
                }
                Request::QueryBatch {
                    chip: u64_field(&v, "chip")?,
                    patterns,
                }
            }
            "morph" => Request::Morph {
                chip: u64_field(&v, "chip")?,
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown op `{other}`")),
        })
    }
}

/// Per-chip statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipStats {
    /// Chip id.
    pub chip: u64,
    /// Oracle queries served (batch patterns counted individually).
    pub queries: u64,
    /// Morphs applied (scheduled + manual).
    pub morphs: u64,
    /// Current key generation (starts at 0, +1 per morph).
    pub generation: u64,
}

/// Server-wide statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests handled since start.
    pub requests: u64,
    /// One entry per hosted chip, ascending chip id.
    pub chips: Vec<ChipStats>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A chip was provisioned.
    Activated {
        /// The new chip's id.
        chip: u64,
        /// Its key generation (0 at activation).
        generation: u64,
        /// Data-input width per query.
        inputs: usize,
        /// Output width per response.
        outputs: usize,
        /// Key bits burned into the chip.
        key_bits: usize,
    },
    /// One query's response.
    Outputs {
        /// Output bits.
        bits: Vec<bool>,
        /// Key generation the response was produced under.
        generation: u64,
    },
    /// A batch's responses.
    Batch {
        /// One output row per request pattern.
        rows: Vec<Vec<bool>>,
        /// Key generation the batch was produced under.
        generation: u64,
    },
    /// A morph was applied.
    Morphed {
        /// The chip's new generation.
        generation: u64,
        /// Key-bit *transitions* across the morph's moves (a bit toggled
        /// twice counts twice) — [`ril_core::MorphReport::bits_changed`].
        bits_changed: u64,
        /// Indices of key bits whose *value* differs from the previous
        /// generation (the net [`ril_core::MorphDelta`]), sorted
        /// ascending. Combined with the netlist's key analysis this names
        /// exactly the output cones whose logic changed, so a client can
        /// re-verify or re-encode only those.
        changed_bits: Vec<usize>,
    },
    /// Statistics snapshot.
    Stats(ServerStats),
    /// Shutdown acknowledged.
    Bye,
    /// A typed error.
    Error {
        /// Error category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The response as a JSON frame payload.
    pub fn to_json(&self) -> String {
        match self {
            Response::Activated {
                chip,
                generation,
                inputs,
                outputs,
                key_bits,
            } => format!(
                r#"{{"ok":"activated","chip":{chip},"generation":{generation},"inputs":{inputs},"outputs":{outputs},"key_bits":{key_bits}}}"#
            ),
            Response::Outputs { bits, generation } => format!(
                r#"{{"ok":"outputs","bits":"{}","generation":{generation}}}"#,
                bits_to_string(bits)
            ),
            Response::Batch { rows, generation } => {
                let encoded: Vec<String> = rows
                    .iter()
                    .map(|r| format!("\"{}\"", bits_to_string(r)))
                    .collect();
                format!(
                    r#"{{"ok":"batch","rows":[{}],"generation":{generation}}}"#,
                    encoded.join(",")
                )
            }
            Response::Morphed {
                generation,
                bits_changed,
                changed_bits,
            } => {
                let bits: Vec<String> = changed_bits.iter().map(usize::to_string).collect();
                format!(
                    r#"{{"ok":"morphed","generation":{generation},"bits_changed":{bits_changed},"changed_bits":[{}]}}"#,
                    bits.join(",")
                )
            }
            Response::Stats(stats) => {
                let chips: Vec<String> = stats
                    .chips
                    .iter()
                    .map(|c| {
                        format!(
                            r#"{{"chip":{},"queries":{},"morphs":{},"generation":{}}}"#,
                            c.chip, c.queries, c.morphs, c.generation
                        )
                    })
                    .collect();
                format!(
                    r#"{{"ok":"stats","requests":{},"chips":[{}]}}"#,
                    stats.requests,
                    chips.join(",")
                )
            }
            Response::Bye => r#"{"ok":"bye"}"#.to_string(),
            Response::Error { kind, message } => format!(
                r#"{{"err":"{}","message":"{}"}}"#,
                kind.as_str(),
                escape(message)
            ),
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// Returns a message for anything that is not a protocol response.
    pub fn parse(text: &str) -> Result<Response, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        if let Some(err) = v.get("err").and_then(JsonValue::as_str) {
            let kind =
                ErrorKind::parse(err).ok_or_else(|| format!("unknown error kind `{err}`"))?;
            return Ok(Response::Error {
                kind,
                message: str_field(&v, "message").unwrap_or_default(),
            });
        }
        let ok = str_field(&v, "ok")?;
        Ok(match ok.as_str() {
            "activated" => Response::Activated {
                chip: u64_field(&v, "chip")?,
                generation: u64_field(&v, "generation")?,
                inputs: u64_field(&v, "inputs")? as usize,
                outputs: u64_field(&v, "outputs")? as usize,
                key_bits: u64_field(&v, "key_bits")? as usize,
            },
            "outputs" => Response::Outputs {
                bits: bits_from_str(&str_field(&v, "bits")?)?,
                generation: u64_field(&v, "generation")?,
            },
            "batch" => {
                let rows = v
                    .get("rows")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `rows` array")?;
                let mut decoded = Vec::with_capacity(rows.len());
                for row in rows {
                    decoded.push(bits_from_str(
                        row.as_str().ok_or("batch rows must be bit strings")?,
                    )?);
                }
                Response::Batch {
                    rows: decoded,
                    generation: u64_field(&v, "generation")?,
                }
            }
            "morphed" => {
                let rows = v
                    .get("changed_bits")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `changed_bits` array")?;
                let mut changed_bits = Vec::with_capacity(rows.len());
                for row in rows {
                    changed_bits.push(
                        row.as_u64()
                            .ok_or("changed_bits entries must be integers")?
                            as usize,
                    );
                }
                Response::Morphed {
                    generation: u64_field(&v, "generation")?,
                    bits_changed: u64_field(&v, "bits_changed")?,
                    changed_bits,
                }
            }
            "stats" => {
                let rows = v
                    .get("chips")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `chips` array")?;
                let mut chips = Vec::with_capacity(rows.len());
                for row in rows {
                    chips.push(ChipStats {
                        chip: u64_field(row, "chip")?,
                        queries: u64_field(row, "queries")?,
                        morphs: u64_field(row, "morphs")?,
                        generation: u64_field(row, "generation")?,
                    });
                }
                Response::Stats(ServerStats {
                    requests: u64_field(&v, "requests")?,
                    chips,
                })
            }
            "bye" => Response::Bye,
            other => return Err(format!("unknown ok kind `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_design() -> DesignSpec {
        DesignSpec {
            benchmark: "adder:6".to_string(),
            spec: "2x2".to_string(),
            blocks: 2,
            seed: 7,
            scan: true,
            zero_se: true,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), r#"{"op":"stats"}"#);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_header_is_rejected_without_reading_the_body() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn truncated_frames_are_typed() {
        // Partial header.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated)
        ));
        // Full header, partial body.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_writes_are_refused() {
        let big = "x".repeat(MAX_FRAME_BYTES + 1);
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &big),
            Err(FrameError::Oversized(_))
        ));
        assert!(buf.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Activate {
                design: sample_design(),
            },
            Request::Query {
                chip: 3,
                inputs: vec![true, false, true],
            },
            Request::QueryBatch {
                chip: 1,
                patterns: vec![vec![false, true], vec![true, true]],
            },
            Request::Morph { chip: 9 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Activated {
                chip: 1,
                generation: 0,
                inputs: 12,
                outputs: 7,
                key_bits: 24,
            },
            Response::Outputs {
                bits: vec![true, false],
                generation: 4,
            },
            Response::Batch {
                rows: vec![vec![true], vec![false]],
                generation: 2,
            },
            Response::Morphed {
                generation: 5,
                bits_changed: 11,
                changed_bits: vec![0, 3, 9],
            },
            Response::Morphed {
                generation: 6,
                bits_changed: 2,
                changed_bits: Vec::new(),
            },
            Response::Stats(ServerStats {
                requests: 42,
                chips: vec![ChipStats {
                    chip: 1,
                    queries: 40,
                    morphs: 3,
                    generation: 3,
                }],
            }),
            Response::Bye,
            Response::Error {
                kind: ErrorKind::UnknownChip,
                message: "no chip 7".to_string(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::parse(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn bad_requests_are_errors_not_panics() {
        for text in [
            "",
            "{",
            "[1,2]",
            r#"{"op":"warp"}"#,
            r#"{"op":"query","chip":1,"inputs":"01x"}"#,
            r#"{"op":"query","chip":"one","inputs":"01"}"#,
        ] {
            assert!(Request::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn design_spec_builds_deterministically_and_zeroes_se() {
        let design = sample_design();
        let a = design.build().unwrap();
        let b = design.build().unwrap();
        assert_eq!(a.keys.bits(), b.keys.bits());
        assert_eq!(
            ril_netlist::write_bench(&a.netlist),
            ril_netlist::write_bench(&b.netlist)
        );
        // zero_se left every ScanEnable bit cleared but the chip valid.
        assert!(a
            .keys
            .kinds()
            .iter()
            .zip(a.keys.bits())
            .all(|(k, &v)| !matches!(k, KeyBitKind::ScanEnable { .. }) || !v));
        assert!(a.verify(8).unwrap());
    }

    #[test]
    fn design_spec_json_round_trips() {
        let design = sample_design();
        let v = JsonValue::parse(&design.to_json()).unwrap();
        assert_eq!(DesignSpec::from_json(&v).unwrap(), design);
    }
}
