//! # ril-serve — the activation service and dynamic-defense runtime
//!
//! The paper's threat model splits the world into a trusted party that
//! *activates* chips (burns the key into tamper-proof memory) and an
//! adversary with oracle access to an activated part. This crate makes
//! that split literal: a TCP service hosts activated chips and answers
//! oracle queries over a length-prefixed JSON protocol, while a
//! **morph scheduler** re-keys every hosted chip each K queries or T
//! milliseconds — the dynamic obfuscation the paper argues defeats
//! accumulated SAT-attack progress.
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length + JSON
//!   frames, typed [`protocol::ErrorKind`]s, and [`protocol::DesignSpec`]
//!   (chips are provisioned by deterministic recipe, never by shipping a
//!   netlist).
//! * [`server`] — the listener, bounded worker pool (one connection per
//!   worker, reused across thousands of queries), and chip table.
//! * [`scheduler`] — the re-keying triggers.
//! * [`client`] — [`RemoteOracle`]: an [`ril_attacks::OracleSource`] over
//!   TCP with reconnect/retry, so SAT, AppSAT and ScanSAT run unchanged
//!   against a live, morphing target.
//!
//! ## Quickstart
//!
//! ```
//! use ril_serve::{ClientConfig, DesignSpec, RemoteOracle, ServeConfig, Server};
//! use ril_attacks::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = Server::start(ServeConfig::default())?;
//! let design = DesignSpec {
//!     benchmark: "adder:6".into(), spec: "2x2".into(), blocks: 1,
//!     seed: 7, scan: false, zero_se: false,
//! };
//! let mut oracle = RemoteOracle::activate(
//!     handle.addr().to_string(), ClientConfig::default(), &design)?;
//! let view = attacker_view(&design.build()?);
//! let report = ril_attacks::satattack::sat_attack(
//!     &view, &mut oracle, &SatAttackConfig::default());
//! assert!(matches!(report.result, AttackResult::ExactKey(_)));
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
mod scheduler;
pub mod server;

pub use client::{ClientConfig, ClientError, RemoteOracle, ServeClient};
pub use protocol::{
    bits_from_str, bits_to_string, read_frame, write_frame, ChipStats, DesignSpec, ErrorKind,
    FrameError, Request, Response, ServerStats, MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, Server, ServerHandle};
