//! The activation service: a TCP listener, a bounded worker pool, and the
//! hosted-chip table.
//!
//! Each worker owns one connection at a time for its whole lifetime
//! (connection reuse — the SAT attack's thousands of oracle queries ride
//! one TCP stream). The acceptor polls a shutdown flag between
//! `accept` attempts, and workers poll it between frames, so
//! [`ServerHandle::shutdown`] drains the whole service without killing
//! in-flight requests.

use crate::protocol::{
    read_frame, write_frame, ChipStats, DesignSpec, ErrorKind, FrameError, Request, Response,
    ServerStats,
};
use crate::scheduler::{do_morph, spawn_scheduler};
use rand::{rngs::StdRng, SeedableRng};
use ril_attacks::Oracle;
use ril_core::LockedCircuit;
use ril_trace::{SpanId, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::io::ErrorKind as IoKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Decorrelates a design seed from the obfuscator's use of the same seed,
/// so the morph stream is not the lock stream replayed.
const MORPH_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Morph every chip after this many oracle queries (`None` = off).
    pub morph_queries: Option<u64>,
    /// Morph every chip after this much wall time (`None` = off).
    pub morph_interval: Option<Duration>,
    /// Per-chip lifetime query budget (`None` = unlimited).
    pub query_limit: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            morph_queries: None,
            morph_interval: None,
            query_limit: None,
        }
    }
}

/// One provisioned chip: the locked circuit it was burned from, its
/// activated oracle, and the morph bookkeeping.
pub(crate) struct HostedChip {
    pub(crate) locked: LockedCircuit,
    pub(crate) oracle: Oracle,
    pub(crate) rng: StdRng,
    pub(crate) queries: u64,
    pub(crate) morphs: u64,
    pub(crate) generation: u64,
    pub(crate) since_morph: u64,
    pub(crate) last_morph: Instant,
}

pub(crate) struct State {
    pub(crate) cfg: ServeConfig,
    pub(crate) chips: Mutex<BTreeMap<u64, HostedChip>>,
    next_chip: AtomicU64,
    requests: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_ready: Condvar,
    trace: Option<(Tracer, SpanId)>,
}

impl State {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Installs this server's trace context on the calling thread (the
    /// guard must stay alive for `counter()` calls to land).
    pub(crate) fn install_trace(&self) -> Option<ril_trace::ContextGuard> {
        self.trace.as_ref().map(|(t, parent)| t.install(*parent))
    }
}

/// The ril-serve activation service.
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor + worker pool (+ time-based morph
    /// scheduler when configured), and returns the control handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
        Server::start_inner(cfg, None)
    }

    /// Like [`Server::start`], but every worker and the scheduler join
    /// `tracer`'s trace as children of `parent`, so `serve.*` counters
    /// and spans land in the caller's export.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start_traced(
        cfg: ServeConfig,
        tracer: &Tracer,
        parent: SpanId,
    ) -> std::io::Result<ServerHandle> {
        Server::start_inner(cfg, Some((tracer.clone(), parent)))
    }

    fn start_inner(
        cfg: ServeConfig,
        trace: Option<(Tracer, SpanId)>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let state = Arc::new(State {
            cfg,
            chips: Mutex::new(BTreeMap::new()),
            next_chip: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conns_ready: Condvar::new(),
            trace,
        });

        let mut threads = Vec::new();
        {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || accept_loop(&state, &listener)));
        }
        for _ in 0..workers {
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || worker_loop(&state)));
        }
        if state.cfg.morph_interval.is_some() {
            threads.push(spawn_scheduler(Arc::clone(&state)));
        }

        Ok(ServerHandle {
            addr,
            state,
            threads: Mutex::new(threads),
        })
    }
}

/// Control handle for a running server. Dropping it does **not** stop the
/// service; call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Provisions a chip directly, without a connection — used by the CLI
    /// to pre-activate, and by tests.
    ///
    /// # Errors
    ///
    /// Returns the provisioning failure message.
    pub fn activate(&self, design: &DesignSpec) -> Result<u64, String> {
        match activate(&self.state, design)? {
            Response::Activated { chip, .. } => Ok(chip),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Blocks until the service drains — i.e. until some client sends the
    /// `shutdown` op (or [`ServerHandle::shutdown`] runs on another
    /// thread). This is how `rilock serve` stays in the foreground.
    pub fn wait(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.threads.lock().expect("thread table");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Signals shutdown and joins every service thread. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.conns_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.threads.lock().expect("thread table");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(state: &State, listener: &TcpListener) {
    let _guard = state.install_trace();
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let mut queue = state.conns.lock().expect("conn queue");
                queue.push_back(stream);
                drop(queue);
                state.conns_ready.notify_one();
            }
            Err(e) if e.kind() == IoKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(state: &State) {
    let _guard = state.install_trace();
    loop {
        let stream = {
            let mut queue = state.conns.lock().expect("conn queue");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if state.shutting_down() {
                    break None;
                }
                let (q, _) = state
                    .conns_ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("conn queue");
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        handle_connection(state, stream);
    }
}

/// Polls for the next frame so the worker can notice shutdown between
/// requests. Returns `Ok(None)` when the server is draining.
fn poll_frame(state: &State, stream: &mut TcpStream) -> Result<Option<String>, FrameError> {
    let mut probe = [0u8; 1];
    loop {
        match stream.peek(&mut probe) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
                if state.shutting_down() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // A frame has started; give the peer a bounded window to finish it so
    // a stalled client cannot pin a worker past shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let frame = read_frame(stream);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    match frame {
        Ok(text) => Ok(Some(text)),
        Err(FrameError::Io(e)) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
            Err(FrameError::Truncated)
        }
        Err(e) => Err(e),
    }
}

fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        let text = match poll_frame(state, &mut stream) {
            Ok(Some(text)) => text,
            // Draining: tell the peer and drop the connection.
            Ok(None) => {
                let resp = Response::Error {
                    kind: ErrorKind::ShuttingDown,
                    message: "server is shutting down".to_string(),
                };
                let _ = write_frame(&mut stream, &resp.to_json());
                return;
            }
            Err(FrameError::Oversized(n)) => {
                // The frame body was never read, so the stream is no
                // longer aligned to frame boundaries: answer and close.
                let resp = Response::Error {
                    kind: ErrorKind::Oversized,
                    message: format!("{n}-byte frame exceeds the cap"),
                };
                let _ = write_frame(&mut stream, &resp.to_json());
                return;
            }
            Err(FrameError::Malformed(msg)) => {
                let resp = Response::Error {
                    kind: ErrorKind::Malformed,
                    message: msg,
                };
                let _ = write_frame(&mut stream, &resp.to_json());
                return;
            }
            Err(FrameError::Closed | FrameError::Truncated | FrameError::Io(_)) => return,
        };
        ril_trace::counter("serve.requests", 1);
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (resp, close) = dispatch(state, &text);
        if write_frame(&mut stream, &resp.to_json()).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

/// Routes one parsed frame. Returns the response and whether the
/// connection should close afterwards.
fn dispatch(state: &State, text: &str) -> (Response, bool) {
    let req = match Request::parse(text) {
        Ok(req) => req,
        Err(msg) => return (err(ErrorKind::Malformed, msg), false),
    };
    match req {
        Request::Activate { design } => {
            let resp = match activate(state, &design) {
                Ok(resp) => resp,
                Err(msg) => err(ErrorKind::Internal, msg),
            };
            (resp, false)
        }
        Request::Query { chip, inputs } => (query(state, chip, &[inputs]), false),
        Request::QueryBatch { chip, patterns } => (query(state, chip, &patterns), false),
        Request::Morph { chip } => (morph(state, chip), false),
        Request::Stats => (stats(state), false),
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.conns_ready.notify_all();
            (Response::Bye, true)
        }
    }
}

/// Builds and hosts a chip. The expensive lock + compile happens outside
/// the chip-table lock.
fn activate(state: &State, design: &DesignSpec) -> Result<Response, String> {
    let locked = design.build()?;
    let oracle = Oracle::new(&locked).map_err(|e| format!("oracle build failed: {e}"))?;
    let chip = HostedChip {
        rng: StdRng::seed_from_u64(design.seed ^ MORPH_SEED_SALT),
        queries: 0,
        morphs: 0,
        generation: 0,
        since_morph: 0,
        last_morph: Instant::now(),
        oracle,
        locked,
    };
    let inputs = chip.oracle.input_width();
    let outputs = chip.oracle.output_width();
    let key_bits = chip.locked.keys.bits().len();
    let id = state.next_chip.fetch_add(1, Ordering::Relaxed);
    state.chips.lock().expect("chip table").insert(id, chip);
    Ok(Response::Activated {
        chip: id,
        generation: 0,
        inputs,
        outputs,
        key_bits,
    })
}

fn query(state: &State, chip_id: u64, patterns: &[Vec<bool>]) -> Response {
    let single = patterns.len() == 1;
    let mut chips = state.chips.lock().expect("chip table");
    let Some(chip) = chips.get_mut(&chip_id) else {
        return err(ErrorKind::UnknownChip, format!("no chip {chip_id}"));
    };
    if let Some(limit) = state.cfg.query_limit {
        if chip.queries + patterns.len() as u64 > limit {
            return err(
                ErrorKind::RateLimited,
                format!("chip {chip_id} exhausted its {limit}-query budget"),
            );
        }
    }
    let width = chip.oracle.input_width();
    let mut rows = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        if pattern.len() != width {
            return err(
                ErrorKind::BadWidth,
                format!("chip {chip_id} takes {width} inputs, got {}", pattern.len()),
            );
        }
        rows.push(chip.oracle.query(pattern));
    }
    chip.queries += patterns.len() as u64;
    chip.since_morph += patterns.len() as u64;
    // The response reports the generation the answers were produced
    // under; a query-count morph fires after, never mid-batch.
    let generation = chip.generation;
    if let Some(k) = state.cfg.morph_queries {
        if chip.since_morph >= k {
            do_morph(chip);
        }
    }
    if single {
        Response::Outputs {
            bits: rows.pop().expect("one row"),
            generation,
        }
    } else {
        Response::Batch { rows, generation }
    }
}

fn morph(state: &State, chip_id: u64) -> Response {
    let mut chips = state.chips.lock().expect("chip table");
    let Some(chip) = chips.get_mut(&chip_id) else {
        return err(ErrorKind::UnknownChip, format!("no chip {chip_id}"));
    };
    let (report, delta) = do_morph(chip);
    Response::Morphed {
        generation: chip.generation,
        bits_changed: report.bits_changed as u64,
        changed_bits: delta.changed_bits().to_vec(),
    }
}

fn stats(state: &State) -> Response {
    let chips = state.chips.lock().expect("chip table");
    Response::Stats(ServerStats {
        requests: state.requests.load(Ordering::Relaxed),
        chips: chips
            .iter()
            .map(|(&chip, c)| ChipStats {
                chip,
                queries: c.queries,
                morphs: c.morphs,
                generation: c.generation,
            })
            .collect(),
    })
}
