//! Portfolio integration tests: the racing engine must be
//! outcome-equivalent to the sequential solver on both satisfiable and
//! unsatisfiable instances, and a finished race must leave clean
//! accounting behind (losers cancelled, spans balanced).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_netlist::generators;
use ril_sat::{
    encode_netlist_into, Budget, Cnf, Lit, Outcome, Portfolio, Session, SolverConfig, Var,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A random k-SAT instance around the solvable side of the phase
/// transition: mixes easy-SAT and genuinely UNSAT cases across seeds.
fn random_cnf(seed: u64, vars: usize, clauses: usize) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new();
    for _ in 0..vars {
        cnf.new_var();
    }
    for _ in 0..clauses {
        let mut lits = Vec::with_capacity(3);
        while lits.len() < 3 {
            let v = rng.gen_range(0..vars);
            if lits.iter().all(|l: &Lit| l.var().index() != v) {
                lits.push(Lit::new(v, rng.gen()));
            }
        }
        cnf.add_clause(lits);
    }
    cnf
}

fn satisfies(cnf: &Cnf, model: &[bool]) -> bool {
    cnf.clauses()
        .iter()
        .all(|clause| clause.iter().any(|l| model[l.var().index()] == l.target()))
}

/// The miter `a ≢ b` over shared inputs: SAT iff the circuits differ.
fn miter_cnf(a: &ril_netlist::Netlist, b: &ril_netlist::Netlist) -> Cnf {
    let mut cnf = Cnf::new();
    let va = encode_netlist_into(a, &mut cnf, &HashMap::new()).expect("combinational");
    let pinned: HashMap<_, Var> = b
        .inputs()
        .iter()
        .zip(a.inputs())
        .map(|(&bi, &ai)| (bi, va.var(ai)))
        .collect();
    let vb = encode_netlist_into(b, &mut cnf, &pinned).expect("combinational");
    let mut diff = Vec::new();
    for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
        let x = cnf.new_var().positive();
        let (la, lb) = (va.lit(oa), vb.lit(ob));
        cnf.add_clause([!x, la, lb]);
        cnf.add_clause([!x, !la, !lb]);
        cnf.add_clause([x, !la, lb]);
        cnf.add_clause([x, la, !lb]);
        diff.push(x);
    }
    cnf.add_clause(diff);
    cnf
}

fn solve_with_threads(cnf: &Cnf, threads: usize) -> (Outcome, Option<Vec<bool>>) {
    let cfg = SolverConfig::default()
        .with_threads(threads)
        .expect("valid thread count");
    let mut session = Session::from_cnf_with_config(cnf, cfg);
    session.set_budget(Budget::from_timeout(Some(Duration::from_secs(30))));
    let outcome = session.solve();
    let model = (outcome == Outcome::Sat).then(|| session.model().to_vec());
    (outcome, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequential and portfolio sessions agree on random 3-SAT, and any
    /// model either returns actually satisfies the formula.
    #[test]
    fn portfolio_agrees_with_sequential_on_random_cnf(seed in 0u64..5000) {
        let cnf = random_cnf(seed, 40, 170);
        let (seq, seq_model) = solve_with_threads(&cnf, 1);
        let (par, par_model) = solve_with_threads(&cnf, 4);
        prop_assert_ne!(seq, Outcome::Unknown, "sequential exhausted budget");
        prop_assert_eq!(seq, par, "engines disagree on seed {}", seed);
        if let Some(m) = seq_model {
            prop_assert!(satisfies(&cnf, &m));
        }
        if let Some(m) = par_model {
            prop_assert!(satisfies(&cnf, &m));
        }
    }

    /// Obfuscated-miter-shaped instances: the self-miter of a random
    /// circuit is UNSAT and the miter of two different random circuits is
    /// (almost always) SAT — both engines must return the same verdict.
    #[test]
    fn portfolio_agrees_on_circuit_miters(seed in 0u64..2000) {
        let a = generators::random_circuit(seed, 6, 40, 4);
        let self_miter = miter_cnf(&a, &a);
        let (seq, _) = solve_with_threads(&self_miter, 1);
        let (par, _) = solve_with_threads(&self_miter, 4);
        prop_assert_eq!(seq, Outcome::Unsat, "a circuit differs from itself");
        prop_assert_eq!(par, Outcome::Unsat);

        let b = generators::random_circuit(seed.wrapping_add(1), 6, 40, 4);
        let cross = miter_cnf(&a, &b);
        let (seq, seq_model) = solve_with_threads(&cross, 1);
        let (par, par_model) = solve_with_threads(&cross, 4);
        prop_assert_eq!(seq, par, "engines disagree on cross-miter seed {}", seed);
        if let Some(m) = seq_model {
            prop_assert!(satisfies(&cross, &m));
        }
        if let Some(m) = par_model {
            prop_assert!(satisfies(&cross, &m));
        }
    }
}

/// A race finishes as soon as one worker answers: the losers are stopped
/// instead of running out their (deliberately generous) budget, and the
/// accounting stays consistent across repeated races.
#[test]
fn losing_workers_are_cancelled_promptly() {
    // Hard enough that workers are genuinely mid-search when the winner
    // lands, easy enough to answer in well under a second.
    let cnf = random_cnf(99, 60, 250);
    let cfg = SolverConfig::default().with_threads(4).expect("valid");
    let mut portfolio = Portfolio::new(&cfg);
    portfolio.append_cnf(&cnf);
    portfolio.set_budget(Budget::from_timeout(Some(Duration::from_secs(120))));

    let start = Instant::now();
    let first = portfolio.solve();
    let second = portfolio.solve();
    let elapsed = start.elapsed();
    assert_ne!(first, Outcome::Unknown);
    assert_eq!(first, second, "a solved instance must stay solved");
    assert!(
        elapsed < Duration::from_secs(60),
        "races must not wait out the 120 s budget (took {elapsed:?})"
    );

    let stats = portfolio.portfolio_stats();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.races, 2);
    assert_eq!(
        stats.wins.iter().sum::<u64>(),
        2,
        "exactly one winner per race: {:?}",
        stats.wins
    );
    assert!(
        stats.cancelled <= 2 * (stats.workers as u64 - 1),
        "at most workers-1 losers per race can be cancelled: {stats:?}"
    );
    assert!(portfolio.last_winner().is_some());
}

/// Worker spans nest under the session's `solve` span, stay balanced
/// (every begin has an end), and name exactly one winner per race.
#[test]
fn portfolio_race_leaves_balanced_spans() {
    let tracer = ril_trace::Tracer::new();
    let root = tracer.open_root("test", ril_trace::Phase::Experiment);
    {
        let _guard = tracer.install(root);
        let cnf = random_cnf(7, 40, 170);
        let cfg = SolverConfig::default().with_threads(3).expect("valid");
        let mut session = Session::from_cnf_with_config(&cnf, cfg);
        assert_ne!(session.solve(), Outcome::Unknown);
    }
    tracer.close(root);

    let jsonl = tracer.spans_jsonl();
    let begins = jsonl
        .lines()
        .filter(|l| l.contains(r#""ev":"begin""#))
        .count();
    let ends = jsonl
        .lines()
        .filter(|l| l.contains(r#""ev":"end""#))
        .count();
    assert_eq!(begins, ends, "unbalanced spans:\n{jsonl}");
    let worker_spans = jsonl
        .lines()
        .filter(|l| l.contains(r#""name":"solve_worker""#))
        .count();
    assert_eq!(worker_spans, 3, "one begin per worker:\n{jsonl}");
    let winners = jsonl
        .lines()
        .filter(|l| l.contains(r#""winner":true"#))
        .count();
    assert_eq!(winners, 1, "exactly one worker wins the race:\n{jsonl}");
}
