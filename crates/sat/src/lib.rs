//! # ril-sat — CDCL SAT solver substrate
//!
//! A from-scratch conflict-driven clause-learning solver ([`Solver`]) with
//! the architecture of the CaDiCaL-class solvers the paper attacks with:
//! two-watched-literal propagation, first-UIP learning, VSIDS + phase
//! saving, Luby restarts and learnt-database reduction. Companion modules
//! provide CNF formulas with DIMACS I/O ([`Cnf`]), Tseitin encoding of
//! gate-level netlists ([`encode_netlist`]), and the attack-side
//! preprocessing passes (BVA and one-layer one-hot routing encoding,
//! [`bva`]).
//!
//! ## Quickstart
//!
//! ```
//! use ril_sat::{Cnf, Solver, Outcome};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([a.positive(), b.positive()]);
//! cnf.add_clause([a.negative(), b.negative()]);
//! let mut solver = Solver::from_cnf(&cnf);
//! assert_eq!(solver.solve(), Outcome::Sat);
//! assert_ne!(solver.model()[a.index()], solver.model()[b.index()]);
//! ```

#![warn(missing_docs)]

pub mod bva;
pub mod cnf;
pub mod equiv;
pub mod lit;
pub mod portfolio;
pub mod session;
pub mod solver;
pub mod tseitin;

pub use cnf::{Cnf, ParseDimacsError};
pub use equiv::{
    check_equivalence, check_equivalence_in, EquivError, EquivOptions, EquivResult, EquivSession,
    IncrementalEquivSession,
};
pub use lit::{LBool, Lit, Var};
pub use portfolio::{Portfolio, PortfolioStats};
pub use session::{Session, SolveRecord};
pub use solver::{
    Budget, BudgetError, Outcome, Solver, SolverConfig, SolverConfigError, SolverStats,
    MAX_SOLVER_THREADS,
};
pub use tseitin::{encode_netlist, encode_netlist_into, CircuitVars, TseitinError};
