//! Portfolio solving: race diversified CDCL workers, share short clauses.
//!
//! A [`Portfolio`] keeps K [`Solver`] workers loaded with the *same*
//! formula but diversified configurations (restart cadence, VSIDS decay,
//! phase saving, default polarity — see [`Portfolio::diversified`]).
//! Each solve call races all workers on fresh threads; the first
//! definitive [`Outcome`] (`Sat`/`Unsat`) wins and the losers are stopped
//! cooperatively through the solver's budget hooks ([`Solver::set_stop_flag`]).
//! During a race, workers publish short learnt clauses (≤ [`EXPORT_MAX_LEN`]
//! literals, LBD ≤ [`EXPORT_MAX_LBD`]) into a bounded mutex-guarded ring
//! buffer and import their peers' clauses at restart boundaries, so the
//! portfolio is cooperative rather than merely redundant.
//!
//! Worker 0 always runs the caller's base configuration unchanged, which
//! keeps the portfolio's *answers* identical to a single-threaded run:
//! soundness of `Sat`/`Unsat` does not depend on which worker finishes
//! first, and with every worker budget-bound the race degrades to the
//! same `Unknown` a lone solver would report.
//!
//! [`crate::Session`] builds a portfolio automatically when
//! [`SolverConfig::threads`] > 1, which is how the SAT-attack DIP loop,
//! AppSAT, ScanSAT and the equivalence checker all pick this layer up
//! without code changes.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::solver::{Budget, Outcome, Solver, SolverConfig, SolverStats, MAX_SOLVER_THREADS};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Longest learnt clause (in literals) a worker will publish.
pub const EXPORT_MAX_LEN: usize = 8;

/// Highest LBD ("glue") a published clause may have.
pub const EXPORT_MAX_LBD: u32 = 4;

/// Ring-buffer capacity of the per-race clause exchange.
pub const EXCHANGE_CAPACITY: usize = 4096;

/// Static per-worker win-counter names (`ril_trace` counters take
/// `&'static str`, so the names are enumerated up to
/// [`MAX_SOLVER_THREADS`]).
const WIN_COUNTERS: [&str; MAX_SOLVER_THREADS] = [
    "portfolio.win.w0",
    "portfolio.win.w1",
    "portfolio.win.w2",
    "portfolio.win.w3",
    "portfolio.win.w4",
    "portfolio.win.w5",
    "portfolio.win.w6",
    "portfolio.win.w7",
    "portfolio.win.w8",
    "portfolio.win.w9",
    "portfolio.win.w10",
    "portfolio.win.w11",
    "portfolio.win.w12",
    "portfolio.win.w13",
    "portfolio.win.w14",
    "portfolio.win.w15",
];

/// The bounded clause exchange shared by one race: a mutex-guarded ring
/// of `(sequence, publisher, literals)`. Publishing past capacity drops
/// the oldest entry; importers track how far they have read via a
/// sequence cursor, so a slow importer simply misses overwritten clauses
/// (which only costs pruning, never soundness).
#[derive(Debug)]
pub(crate) struct ClauseExchange {
    capacity: usize,
    inner: Mutex<ExchangeRing>,
}

#[derive(Debug, Default)]
struct ExchangeRing {
    clauses: VecDeque<(u64, usize, Vec<Lit>)>,
    next_seq: u64,
}

impl ClauseExchange {
    fn new(capacity: usize) -> ClauseExchange {
        ClauseExchange {
            capacity,
            inner: Mutex::new(ExchangeRing::default()),
        }
    }

    fn publish(&self, from: usize, lits: &[Lit]) {
        let mut ring = self.inner.lock().expect("clause exchange");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.clauses.len() == self.capacity {
            ring.clauses.pop_front();
        }
        ring.clauses.push_back((seq, from, lits.to_vec()));
    }

    /// All clauses with sequence ≥ `cursor` not published by `reader`,
    /// plus the new cursor position.
    fn collect_since(&self, cursor: u64, reader: usize) -> (u64, Vec<Vec<Lit>>) {
        let ring = self.inner.lock().expect("clause exchange");
        let fresh = ring
            .clauses
            .iter()
            .filter(|(seq, from, _)| *seq >= cursor && *from != reader)
            .map(|(_, _, lits)| lits.clone())
            .collect();
        (ring.next_seq, fresh)
    }
}

/// One worker's endpoint of a [`ClauseExchange`]: publishes with the
/// worker's identity, imports everything new from its peers.
#[derive(Debug)]
pub(crate) struct ExchangeHandle {
    shared: Arc<ClauseExchange>,
    worker: usize,
    cursor: u64,
}

impl ExchangeHandle {
    fn new(shared: Arc<ClauseExchange>, worker: usize) -> ExchangeHandle {
        ExchangeHandle {
            shared,
            worker,
            cursor: 0,
        }
    }

    /// Whether a learnt clause of this shape is worth sharing.
    pub(crate) fn accepts(&self, len: usize, lbd: u32) -> bool {
        len <= EXPORT_MAX_LEN && lbd <= EXPORT_MAX_LBD
    }

    /// Publishes a learnt clause to the peers.
    pub(crate) fn publish(&self, lits: &[Lit]) {
        self.shared.publish(self.worker, lits);
    }

    /// Drains every clause published by peers since the last call.
    pub(crate) fn take_pending(&mut self) -> Vec<Vec<Lit>> {
        let (cursor, fresh) = self.shared.collect_since(self.cursor, self.worker);
        self.cursor = cursor;
        fresh
    }
}

/// Aggregated portfolio accounting (what the bench manifests surface).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Number of workers raced per solve call.
    pub workers: usize,
    /// Solve races run so far.
    pub races: u64,
    /// Definitive outcomes won, per worker.
    pub wins: Vec<u64>,
    /// Workers stopped because a peer answered first.
    pub cancelled: u64,
    /// Shared clauses imported across all workers.
    pub clauses_imported: u64,
    /// Shared clauses exported across all workers.
    pub clauses_exported: u64,
}

/// A portfolio of diversified CDCL workers racing on one formula.
///
/// # Examples
///
/// ```
/// use ril_sat::{Lit, Outcome, Portfolio, SolverConfig};
///
/// let cfg = SolverConfig::default().with_threads(2).unwrap();
/// let mut p = Portfolio::new(&cfg);
/// p.add_clause([Lit::new(0, false), Lit::new(1, false)]);
/// p.add_clause([Lit::new(0, true)]);
/// assert_eq!(p.solve(), Outcome::Sat);
/// assert!(p.model()[1]);
/// ```
#[derive(Debug)]
pub struct Portfolio {
    workers: Vec<Solver>,
    budget: Budget,
    wins: Vec<u64>,
    races: u64,
    cancelled: u64,
    last_winner: Option<usize>,
}

impl Portfolio {
    /// A portfolio of `base.threads` workers (clamped to
    /// `1..=MAX_SOLVER_THREADS`), worker 0 running `base` unchanged and
    /// the rest running [`Portfolio::diversified`] variants.
    pub fn new(base: &SolverConfig) -> Portfolio {
        let n = base.threads.clamp(1, MAX_SOLVER_THREADS);
        let workers = (0..n)
            .map(|i| Solver::with_config(Portfolio::diversified(base, i)))
            .collect();
        Portfolio {
            workers,
            budget: Budget::unlimited(),
            wins: vec![0; n],
            races: 0,
            cancelled: 0,
            last_winner: None,
        }
    }

    /// The configuration worker `worker` runs: worker 0 is `base`
    /// verbatim (the determinism anchor); higher indices vary restart
    /// cadence, VSIDS decay, phase saving and default polarity. Budget
    /// fields are never varied. See DESIGN.md §10 for the table.
    pub fn diversified(base: &SolverConfig, worker: usize) -> SolverConfig {
        let mut cfg = base.clone();
        cfg.threads = 1;
        match worker {
            0 => {}
            1 => cfg.default_phase = !base.default_phase,
            2 => {
                cfg.vsids_decay = 0.85;
                cfg.restart_interval = 50;
            }
            3 => {
                cfg.phase_saving = false;
                cfg.restart_interval = 200;
            }
            4 => cfg.vsids_decay = 0.99,
            5 => cfg.restarts = false,
            6 => {
                cfg.default_phase = !base.default_phase;
                cfg.vsids_decay = 0.90;
                cfg.restart_interval = 30;
            }
            7 => {
                cfg.phase_saving = false;
                cfg.default_phase = !base.default_phase;
                cfg.vsids_decay = 0.92;
            }
            _ => {
                // Deterministic jitter for wide portfolios: Knuth hash of
                // the worker index picks decay/restart/polarity.
                let h = (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                cfg.vsids_decay = 0.80 + (h % 19) as f64 * 0.01;
                cfg.restart_interval = 50 + (h >> 8) % 200;
                cfg.default_phase = (h >> 16) & 1 == 1;
            }
        }
        cfg
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Allocates a fresh variable in every worker (all workers share one
    /// variable numbering, which is what makes clause exchange sound).
    pub fn new_var(&mut self) -> Var {
        let mut var = None;
        for w in &mut self.workers {
            var = Some(w.new_var());
        }
        var.expect("portfolio has at least one worker")
    }

    /// Ensures at least `n` variables exist in every worker.
    pub fn reserve_vars(&mut self, n: usize) {
        for w in &mut self.workers {
            w.reserve_vars(n);
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.workers[0].num_vars()
    }

    /// Adds a clause to every worker. Returns `false` if any worker
    /// derived root-level unsatisfiability (a sound UNSAT proof for all).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        let clause: Vec<Lit> = lits.into_iter().collect();
        let mut ok = true;
        for w in &mut self.workers {
            ok &= w.add_clause(clause.iter().copied());
        }
        ok
    }

    /// Appends every clause of `cnf` to every worker.
    pub fn append_cnf(&mut self, cnf: &Cnf) -> bool {
        self.reserve_vars(cnf.num_vars());
        let mut ok = true;
        for clause in cnf.clauses() {
            ok = self.add_clause(clause.iter().copied());
            if !ok {
                break;
            }
        }
        ok
    }

    /// Applies `budget` to every subsequent race (re-applied per call, so
    /// a conflict limit is per-call for each worker).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Races the workers with no assumptions.
    pub fn solve(&mut self) -> Outcome {
        self.solve_with_assumptions(&[])
    }

    /// Races the workers under assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Outcome {
        self.solve_traced(assumptions, None)
    }

    /// Races the workers, attaching one `solve_worker` span per worker
    /// under `parent` when a tracer is supplied (the form
    /// [`crate::Session`] uses so worker spans nest under its `solve`
    /// span).
    pub fn solve_traced(
        &mut self,
        assumptions: &[Lit],
        trace: Option<(ril_trace::Tracer, ril_trace::SpanId)>,
    ) -> Outcome {
        self.races += 1;
        if !self.workers.iter().all(Solver::root_consistent) {
            return Outcome::Unsat;
        }
        let budget = self.budget;
        if self.workers.len() == 1 {
            let outcome = self.workers[0].solve_within(assumptions, budget);
            if outcome != Outcome::Unknown {
                self.wins[0] += 1;
                self.last_winner = Some(0);
            } else {
                self.last_winner = None;
            }
            return outcome;
        }

        let shared_before = self.shared_totals();
        let exchange = Arc::new(ClauseExchange::new(EXCHANGE_CAPACITY));
        let stop = Arc::new(AtomicBool::new(false));
        let first: Mutex<Option<(usize, Outcome)>> = Mutex::new(None);
        let cancelled = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for (i, w) in self.workers.iter_mut().enumerate() {
                w.set_stop_flag(Some(Arc::clone(&stop)));
                w.set_exchange(Some(ExchangeHandle::new(Arc::clone(&exchange), i)));
                w.set_budget(budget);
                let stop = Arc::clone(&stop);
                let first = &first;
                let cancelled = &cancelled;
                let trace = trace.clone();
                scope.spawn(move || {
                    let mut span = match &trace {
                        Some((tracer, parent)) => {
                            tracer.span_under(*parent, "solve_worker", ril_trace::Phase::Solve)
                        }
                        None => ril_trace::Span::noop(),
                    };
                    let stats_before = w.stats();
                    let (imp_before, exp_before) = w.shared_clause_counts();
                    let outcome = w.solve_with_assumptions(assumptions);
                    let won = {
                        let mut slot = first.lock().expect("race result");
                        match outcome {
                            Outcome::Sat | Outcome::Unsat if slot.is_none() => {
                                *slot = Some((i, outcome));
                                stop.store(true, Ordering::SeqCst);
                                true
                            }
                            _ => false,
                        }
                    };
                    let was_cancelled =
                        !won && outcome == Outcome::Unknown && stop.load(Ordering::SeqCst);
                    if was_cancelled {
                        cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    if span.is_active() {
                        let delta = w.stats().since(&stats_before);
                        let (imp, exp) = w.shared_clause_counts();
                        span.record_u64("worker", i as u64);
                        span.record_str(
                            "outcome",
                            match outcome {
                                Outcome::Sat => "sat",
                                Outcome::Unsat => "unsat",
                                Outcome::Unknown => "unknown",
                            },
                        );
                        span.record_bool("winner", won);
                        span.record_bool("cancelled", was_cancelled);
                        span.record_u64("conflicts", delta.conflicts);
                        span.record_u64("decisions", delta.decisions);
                        span.record_u64("propagations", delta.propagations);
                        span.record_u64("imported", imp - imp_before);
                        span.record_u64("exported", exp - exp_before);
                        // span_under installed this thread's context, so the
                        // free-function counters attribute correctly.
                        if was_cancelled {
                            ril_trace::counter("portfolio.cancelled", 1);
                        }
                    }
                });
            }
        });

        for w in &mut self.workers {
            w.set_stop_flag(None);
            w.set_exchange(None);
        }
        self.cancelled += cancelled.load(Ordering::Relaxed);
        let shared_after = self.shared_totals();
        ril_trace::counter("portfolio.races", 1);
        ril_trace::counter(
            "portfolio.clauses_imported",
            shared_after.0 - shared_before.0,
        );
        ril_trace::counter(
            "portfolio.clauses_exported",
            shared_after.1 - shared_before.1,
        );
        match first.into_inner().expect("race result") {
            Some((winner, outcome)) => {
                self.wins[winner] += 1;
                self.last_winner = Some(winner);
                ril_trace::counter(WIN_COUNTERS[winner], 1);
                outcome
            }
            None => {
                // Every worker exhausted its budget.
                self.last_winner = None;
                Outcome::Unknown
            }
        }
    }

    /// `(imported, exported)` totals across workers.
    fn shared_totals(&self) -> (u64, u64) {
        self.workers.iter().fold((0, 0), |(i, e), w| {
            let (wi, we) = w.shared_clause_counts();
            (i + wi, e + we)
        })
    }

    /// The winning worker's model after a `Sat` race.
    pub fn model(&self) -> &[bool] {
        self.workers[self.last_winner.unwrap_or(0)].model()
    }

    /// Summed statistics across all workers (monotone over time, so
    /// session records based on deltas stay consistent).
    pub fn stats(&self) -> SolverStats {
        self.workers
            .iter()
            .fold(SolverStats::default(), |acc, w| acc.plus(&w.stats()))
    }

    /// Whether every worker's clause database is still root-consistent.
    pub fn root_consistent(&self) -> bool {
        self.workers.iter().all(Solver::root_consistent)
    }

    /// The worker that won the most recent race (`None` after `Unknown`).
    pub fn last_winner(&self) -> Option<usize> {
        self.last_winner
    }

    /// Portfolio accounting so far.
    pub fn portfolio_stats(&self) -> PortfolioStats {
        let (imported, exported) = self.shared_totals();
        PortfolioStats {
            workers: self.workers.len(),
            races: self.races,
            wins: self.wins.clone(),
            cancelled: self.cancelled,
            clauses_imported: imported,
            clauses_exported: exported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(v, neg)
    }

    fn pigeonhole(holes: usize) -> Cnf {
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for _ in 0..pigeons * holes {
            cnf.new_var();
        }
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        cnf
    }

    fn portfolio_of(workers: usize) -> Portfolio {
        Portfolio::new(&SolverConfig::default().with_threads(workers).unwrap())
    }

    #[test]
    fn worker_zero_is_the_base_config() {
        let base = SolverConfig::default();
        let w0 = Portfolio::diversified(&base, 0);
        assert_eq!(w0.vsids_decay, base.vsids_decay);
        assert_eq!(w0.restart_interval, base.restart_interval);
        assert_eq!(w0.phase_saving, base.phase_saving);
        assert_eq!(w0.default_phase, base.default_phase);
        assert_eq!(w0.restarts, base.restarts);
    }

    #[test]
    fn diversified_configs_differ_and_keep_budgets() {
        let base = SolverConfig {
            timeout: Some(Duration::from_secs(7)),
            max_conflicts: Some(123),
            ..SolverConfig::default()
        };
        for i in 1..MAX_SOLVER_THREADS {
            let cfg = Portfolio::diversified(&base, i);
            assert_eq!(cfg.timeout, base.timeout, "worker {i} keeps timeout");
            assert_eq!(
                cfg.max_conflicts, base.max_conflicts,
                "worker {i} keeps conflicts"
            );
            assert!(
                cfg.vsids_decay != base.vsids_decay
                    || cfg.restart_interval != base.restart_interval
                    || cfg.phase_saving != base.phase_saving
                    || cfg.default_phase != base.default_phase
                    || cfg.restarts != base.restarts,
                "worker {i} must differ from base"
            );
            assert!(cfg.vsids_decay > 0.0 && cfg.vsids_decay < 1.0);
            assert!(cfg.restart_interval >= 1);
        }
    }

    #[test]
    fn race_agrees_sat_and_unsat() {
        let unsat = pigeonhole(4);
        let mut p = portfolio_of(4);
        p.append_cnf(&unsat);
        assert_eq!(p.solve(), Outcome::Unsat);
        assert!(p.last_winner().is_some());
        assert_eq!(p.portfolio_stats().wins.iter().sum::<u64>(), 1);

        let mut p = portfolio_of(4);
        p.add_clause([lit(0, false), lit(1, false)]);
        p.add_clause([lit(0, true)]);
        assert_eq!(p.solve(), Outcome::Sat);
        assert!(p.model()[1]);
    }

    #[test]
    fn assumptions_race() {
        let mut p = portfolio_of(3);
        p.add_clause([lit(0, false), lit(1, false)]);
        p.add_clause([lit(0, true), lit(2, false)]);
        assert_eq!(p.solve_with_assumptions(&[lit(0, false)]), Outcome::Sat);
        assert!(p.model()[0] && p.model()[2]);
        assert_eq!(
            p.solve_with_assumptions(&[lit(1, true), lit(0, true)]),
            Outcome::Unsat
        );
        // The session survives UNSAT-under-assumptions.
        assert!(p.root_consistent());
        assert_eq!(p.solve(), Outcome::Sat);
    }

    #[test]
    fn budget_bound_race_returns_unknown() {
        let mut p = portfolio_of(2);
        p.append_cnf(&pigeonhole(8));
        p.set_budget(Budget::conflicts(5).unwrap());
        assert_eq!(p.solve(), Outcome::Unknown);
        assert_eq!(p.last_winner(), None);
        // Budget is per race: a generous second budget finishes the job.
        p.set_budget(Budget::conflicts(10_000_000).unwrap());
        assert_eq!(p.solve(), Outcome::Unsat);
    }

    #[test]
    fn incremental_race_keeps_workers_in_lockstep() {
        let mut p = portfolio_of(3);
        p.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(p.solve(), Outcome::Sat);
        p.add_clause([lit(0, true)]);
        p.add_clause([lit(1, true)]);
        assert_eq!(p.solve(), Outcome::Unsat);
        assert!(!p.root_consistent());
        assert_eq!(p.solve(), Outcome::Unsat);
        let stats = p.portfolio_stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.races, 3);
    }

    #[test]
    fn exchange_ring_is_bounded_and_skips_own_clauses() {
        let ex = ClauseExchange::new(4);
        for i in 0..10u64 {
            ex.publish(0, &[Lit::new(i as usize, false)]);
        }
        // Reader 0 published everything: nothing to import.
        let (cursor, own) = ex.collect_since(0, 0);
        assert_eq!(cursor, 10);
        assert!(own.is_empty());
        // Reader 1 sees at most the ring capacity.
        let (_, fresh) = ex.collect_since(0, 1);
        assert_eq!(fresh.len(), 4);
        assert_eq!(fresh[0], vec![Lit::new(6, false)]);
        // A caught-up reader gets nothing new.
        let (cursor2, fresh2) = ex.collect_since(cursor, 1);
        assert_eq!(cursor2, 10);
        assert!(fresh2.is_empty());
    }

    #[test]
    fn stats_sum_over_workers_monotonically() {
        let mut p = portfolio_of(2);
        p.append_cnf(&pigeonhole(4));
        let before = p.stats();
        p.solve();
        let after = p.stats();
        assert!(after.conflicts >= before.conflicts);
        assert!(after.decisions > 0);
    }
}
