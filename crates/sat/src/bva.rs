//! Attack-side CNF preprocessing.
//!
//! Two passes from the paper's Section IV-B experimental setup:
//!
//! * [`bounded_variable_addition`] — a simplified Bounded Variable Addition
//!   pass: frequently co-occurring literal *pairs* are factored through a
//!   fresh definition variable, shrinking the formula the way the InterLock
//!   attack pipeline \[11\] does before solving.
//! * [`one_hot_selection`] — the "one-layer linear encoding" for routing
//!   networks: instead of the multi-stage MUX-tree CNF of a permutation
//!   network, each output picks among all `N` inputs through a single layer
//!   of one-hot-keyed selectors. The attack uses this to flatten banyan
//!   routing obfuscation into an easier search space.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use std::collections::HashMap;

/// Report of a [`bounded_variable_addition`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BvaReport {
    /// Fresh definition variables introduced.
    pub new_vars: usize,
    /// Literal occurrences removed (net of the added definitions).
    pub literals_saved: isize,
    /// Factoring rounds applied.
    pub rounds: usize,
}

/// Factors literal pairs that co-occur in at least `min_occurrences`
/// clauses: each such pair `(l1, l2)` gets a fresh variable `x ↔ l1 ∨ l2`,
/// and every clause containing both literals is rewritten to use `x`.
/// Repeats until no profitable pair remains or `max_rounds` is hit.
///
/// This is the pair-width restriction of the BVA algorithm; it preserves
/// satisfiability and models over the original variables.
pub fn bounded_variable_addition(
    cnf: &mut Cnf,
    min_occurrences: usize,
    max_rounds: usize,
) -> BvaReport {
    let min_occurrences = min_occurrences.max(4);
    let mut report = BvaReport::default();
    for _ in 0..max_rounds {
        // Count co-occurring literal pairs.
        let mut pair_counts: HashMap<(Lit, Lit), usize> = HashMap::new();
        for clause in cnf.clauses() {
            if clause.len() < 2 || clause.len() > 16 {
                continue; // pair mining in huge clauses is quadratic noise
            }
            for i in 0..clause.len() {
                for j in i + 1..clause.len() {
                    let (a, b) = if clause[i] < clause[j] {
                        (clause[i], clause[j])
                    } else {
                        (clause[j], clause[i])
                    };
                    *pair_counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let best = pair_counts
            .into_iter()
            .max_by_key(|&(pair, count)| (count, std::cmp::Reverse(pair)));
        let Some(((l1, l2), count)) = best else { break };
        if count < min_occurrences {
            break;
        }
        // Introduce x ↔ l1 ∨ l2 and rewrite.
        let x = cnf.new_var().positive();
        let mut rewritten = 0usize;
        for clause in cnf.clauses_mut().iter_mut() {
            if clause.len() < 2 || clause.len() > 16 {
                continue;
            }
            if clause.contains(&l1) && clause.contains(&l2) {
                clause.retain(|&l| l != l1 && l != l2);
                clause.push(x);
                rewritten += 1;
            }
        }
        cnf.add_clause([!l1, x]);
        cnf.add_clause([!l2, x]);
        cnf.add_clause([!x, l1, l2]);
        report.new_vars += 1;
        report.rounds += 1;
        report.literals_saved += rewritten as isize - 5; // pairs removed − defs added
    }
    report
}

/// Builds the one-layer one-hot selection encoding of an `N`-input,
/// `N`-output routing element.
///
/// For each output `o`, fresh one-hot selector variables `s[o][i]` are
/// created with clauses enforcing: at least one selected, at most one
/// selected, and `s[o][i] → (out[o] ↔ in[i])`. When `permutation` is true,
/// "each input used at most once" clauses are added, restricting the
/// routing element to permutations (banyan networks route permutations).
///
/// Returns the selector variable matrix `s[output][input]`.
///
/// # Panics
///
/// Panics if `inputs.len() != outputs.len()`.
pub fn one_hot_selection(
    cnf: &mut Cnf,
    inputs: &[Lit],
    outputs: &[Lit],
    permutation: bool,
) -> Vec<Vec<Var>> {
    assert_eq!(
        inputs.len(),
        outputs.len(),
        "routing element must be square"
    );
    let n = inputs.len();
    let sel: Vec<Vec<Var>> = (0..n).map(|_| cnf.new_vars(n)).collect();
    for (o, &out) in outputs.iter().enumerate() {
        // At least one input selected.
        cnf.add_clause(sel[o].iter().map(|v| v.positive()));
        // At most one input selected.
        for i in 0..n {
            for j in i + 1..n {
                cnf.add_clause([sel[o][i].negative(), sel[o][j].negative()]);
            }
        }
        // Selection semantics.
        for (i, &inp) in inputs.iter().enumerate() {
            let s = sel[o][i].positive();
            cnf.add_clause([!s, !inp, out]);
            cnf.add_clause([!s, inp, !out]);
        }
    }
    if permutation {
        for o1 in 0..n {
            for o2 in o1 + 1..n {
                for (&a, &b) in sel[o1].iter().zip(&sel[o2]) {
                    cnf.add_clause([a.negative(), b.negative()]);
                }
            }
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Outcome, Solver};

    fn models_over(cnf: &Cnf, n_orig: usize) -> Vec<Vec<bool>> {
        // Enumerate all models projected onto the first n_orig vars via
        // brute force over original vars + solving the rest.
        let mut out = Vec::new();
        for m in 0u64..(1 << n_orig) {
            let assumptions: Vec<Lit> = (0..n_orig)
                .map(|i| Lit::new(i, (m >> i) & 1 == 0))
                .collect();
            let mut s = Solver::from_cnf(cnf);
            if s.solve_with_assumptions(&assumptions) == Outcome::Sat {
                out.push((0..n_orig).map(|i| (m >> i) & 1 == 1).collect());
            }
        }
        out
    }

    #[test]
    fn bva_preserves_models() {
        // Formula with a frequently repeated pair (x0 ∨ x1).
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(7);
        for i in 2..7 {
            cnf.add_clause([v[0].positive(), v[1].positive(), v[i].positive()]);
            cnf.add_clause([v[0].positive(), v[1].positive(), v[i].negative()]);
        }
        let n_orig = cnf.num_vars();
        let before = models_over(&cnf, n_orig);
        let mut processed = cnf.clone();
        let report = bounded_variable_addition(&mut processed, 4, 8);
        assert!(report.new_vars >= 1, "pair should be factored");
        let after = models_over(&processed, n_orig);
        assert_eq!(before, after, "BVA must preserve projected models");
        assert!(processed.num_literals() < cnf.num_literals() + 6);
    }

    #[test]
    fn bva_no_op_below_threshold() {
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(3);
        cnf.add_clause([v[0].positive(), v[1].positive()]);
        cnf.add_clause([v[1].negative(), v[2].positive()]);
        let before = cnf.clone();
        let report = bounded_variable_addition(&mut cnf, 4, 8);
        assert_eq!(report.new_vars, 0);
        assert_eq!(cnf, before);
    }

    #[test]
    fn one_hot_routes_any_permutation() {
        let mut cnf = Cnf::new();
        let ins: Vec<Lit> = cnf.new_vars(3).iter().map(|v| v.positive()).collect();
        let outs: Vec<Lit> = cnf.new_vars(3).iter().map(|v| v.positive()).collect();
        let sel = one_hot_selection(&mut cnf, &ins, &outs, true);
        // Force input pattern 1,0,1 and demand outputs 0,1,1 — the
        // permutation (0→1, 1→0, 2→2) realizes it, so SAT.
        let mut s = Solver::from_cnf(&cnf);
        let assumptions = vec![ins[0], !ins[1], ins[2], !outs[0], outs[1], outs[2]];
        assert_eq!(s.solve_with_assumptions(&assumptions), Outcome::Sat);
        // The chosen selectors form a permutation matrix.
        let model = s.model().to_vec();
        for o in 0..3 {
            let row: usize = (0..3).filter(|&i| model[sel[o][i].index()]).count();
            assert_eq!(row, 1, "output {o} selects exactly one input");
        }
        for i in 0..3 {
            let col: usize = (0..3).filter(|&o| model[sel[o][i].index()]).count();
            assert_eq!(col, 1, "input {i} used exactly once");
        }
    }

    #[test]
    fn one_hot_permutation_rejects_duplication() {
        let mut cnf = Cnf::new();
        let ins: Vec<Lit> = cnf.new_vars(2).iter().map(|v| v.positive()).collect();
        let outs: Vec<Lit> = cnf.new_vars(2).iter().map(|v| v.positive()).collect();
        one_hot_selection(&mut cnf, &ins, &outs, true);
        // Inputs 1,0 — outputs 1,1 would need input 0 twice: UNSAT.
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(
            s.solve_with_assumptions(&[ins[0], !ins[1], outs[0], outs[1]]),
            Outcome::Unsat
        );
        // Without the permutation restriction it becomes SAT.
        let mut cnf2 = Cnf::new();
        let ins2: Vec<Lit> = cnf2.new_vars(2).iter().map(|v| v.positive()).collect();
        let outs2: Vec<Lit> = cnf2.new_vars(2).iter().map(|v| v.positive()).collect();
        one_hot_selection(&mut cnf2, &ins2, &outs2, false);
        let mut s2 = Solver::from_cnf(&cnf2);
        assert_eq!(
            s2.solve_with_assumptions(&[ins2[0], !ins2[1], outs2[0], outs2[1]]),
            Outcome::Sat
        );
    }
}
