//! SAT-based combinational equivalence checking.
//!
//! Builds the classic miter between two netlists matched by port *names*
//! and asks the CDCL solver whether any input makes the outputs differ —
//! the formal upgrade of random-pattern verification, used by the locking
//! flow to certify `locked(correct key) ≡ original` and by attack
//! evaluation to certify recovered keys.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::session::Session;
use crate::solver::{Budget, Outcome, SolverConfig, SolverStats};
use crate::tseitin::{encode_netlist_into, encode_selected, TseitinError};
use ril_netlist::cone::fanin_cone;
use ril_netlist::{GateId, NetId, Netlist};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The circuits agree on every input (UNSAT miter).
    Equivalent,
    /// A distinguishing input was found (values in the *shared* input
    /// order of [`check_equivalence`]'s report).
    Inequivalent {
        /// Counterexample input assignment, shared-input order.
        counterexample: Vec<bool>,
    },
    /// The solve budget expired first.
    Unknown,
}

/// Errors from equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// Port sets do not line up (message names the offender).
    PortMismatch(String),
    /// Encoding failed (sequential netlist, etc.).
    Encode(TseitinError),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::PortMismatch(m) => write!(f, "port mismatch: {m}"),
            EquivError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl Error for EquivError {}

impl From<TseitinError> for EquivError {
    fn from(e: TseitinError) -> Self {
        EquivError::Encode(e)
    }
}

/// Options for [`check_equivalence`].
#[derive(Debug, Clone, Default)]
pub struct EquivOptions {
    /// Wall-clock budget for the solve.
    pub timeout: Option<Duration>,
    /// Inputs of either circuit that are allowed to be missing from the
    /// other; they are treated as free (universally quantified) on their
    /// own side. Useful for ignoring scan/test pins.
    pub ignore_inputs: Vec<String>,
    /// Per-input fixed values (by name), e.g. `SE = 0` for functional-mode
    /// checks of scan-obfuscated designs.
    pub fixed_inputs: Vec<(String, bool)>,
    /// Pair outputs by position instead of by name. Netlist surgery
    /// (removal/bypass, resynthesis) often re-drives an output from a net
    /// with a different name while preserving output order; positional
    /// matching lets such circuits still be checked. Output *counts* must
    /// agree.
    pub match_outputs_by_position: bool,
}

/// Result of matching two netlists' ports into a shared CNF variable pool:
/// the common substrate of [`EquivSession`] and
/// [`IncrementalEquivSession`].
struct MiterPorts {
    out_pairs: Vec<(NetId, NetId)>,
    shared_vars: Vec<Var>,
    input_vars: HashMap<String, Var>,
    pins_left: HashMap<NetId, Var>,
    pins_right: HashMap<NetId, Var>,
    base_assumptions: Vec<Lit>,
}

/// Matches outputs (by name, or by position on request) and inputs (by
/// name) of `left` vs `right`, allocating one CNF input variable per port
/// name. Inputs present on only one side must be ignored or fixed by
/// `options`.
fn match_ports(
    cnf: &mut Cnf,
    left: &Netlist,
    right: &Netlist,
    options: &EquivOptions,
) -> Result<MiterPorts, EquivError> {
    // --- Match outputs (by name, or by position on request) --------------
    let out_pairs: Vec<(NetId, NetId)> = if options.match_outputs_by_position {
        if left.outputs().len() != right.outputs().len() {
            return Err(EquivError::PortMismatch(format!(
                "output counts differ: {} vs {}",
                left.outputs().len(),
                right.outputs().len()
            )));
        }
        left.outputs()
            .iter()
            .copied()
            .zip(right.outputs().iter().copied())
            .collect()
    } else {
        let mut right_outputs: HashMap<&str, NetId> = right
            .outputs()
            .iter()
            .map(|&o| (right.net(o).name(), o))
            .collect();
        let mut pairs: Vec<(NetId, NetId)> = Vec::new();
        for &o in left.outputs() {
            let name = left.net(o).name();
            match right_outputs.remove(name) {
                Some(ro) => pairs.push((o, ro)),
                None => {
                    return Err(EquivError::PortMismatch(format!(
                        "output `{name}` missing on the right"
                    )))
                }
            }
        }
        if let Some((name, _)) = right_outputs.into_iter().next() {
            return Err(EquivError::PortMismatch(format!(
                "output `{name}` missing on the left"
            )));
        }
        pairs
    };

    // --- Match inputs by name --------------------------------------------
    let fixed: HashMap<&str, bool> = options
        .fixed_inputs
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    let ignored: Vec<&str> = options.ignore_inputs.iter().map(String::as_str).collect();
    let mut shared_vars: Vec<Var> = Vec::new();
    let mut input_vars: HashMap<String, Var> = HashMap::new();
    let mut pins_left: HashMap<NetId, Var> = HashMap::new();
    let mut pins_right: HashMap<NetId, Var> = HashMap::new();
    let right_inputs: HashMap<&str, NetId> = right
        .inputs()
        .iter()
        .map(|&i| (right.net(i).name(), i))
        .collect();

    let mut base_assumptions: Vec<Lit> = Vec::new();
    for &li in left.inputs() {
        let name = left.net(li).name().to_string();
        let var = cnf.new_var();
        pins_left.insert(li, var);
        if let Some(&ri) = right_inputs.get(name.as_str()) {
            pins_right.insert(ri, var);
            shared_vars.push(var);
        } else if !ignored.contains(&name.as_str()) && !fixed.contains_key(name.as_str()) {
            return Err(EquivError::PortMismatch(format!(
                "input `{name}` missing on the right (ignore or fix it)"
            )));
        }
        if let Some(&v) = fixed.get(name.as_str()) {
            base_assumptions.push(var.lit(!v));
        }
        input_vars.insert(name, var);
    }
    for &ri in right.inputs() {
        let name = right.net(ri).name();
        if pins_right.contains_key(&ri) {
            continue;
        }
        let var = cnf.new_var();
        pins_right.insert(ri, var);
        if let Some(&v) = fixed.get(name) {
            base_assumptions.push(var.lit(!v));
        } else if !ignored.contains(&name) {
            return Err(EquivError::PortMismatch(format!(
                "input `{name}` missing on the left (ignore or fix it)"
            )));
        }
        input_vars.insert(name.to_string(), var);
    }

    Ok(MiterPorts {
        out_pairs,
        shared_vars,
        input_vars,
        pins_left,
        pins_right,
        base_assumptions,
    })
}

/// Builds the assumption vector for one query: `head`, then every base
/// assumption not overridden by `fixed`, then the per-call pins.
fn layered_assumptions(
    head: &[Lit],
    base: &[Lit],
    input_vars: &HashMap<String, Var>,
    fixed: &[(String, bool)],
) -> Result<Vec<Lit>, EquivError> {
    let mut assumptions: Vec<Lit> = head.to_vec();
    for l in base {
        let keep = !fixed
            .iter()
            .any(|(n, _)| input_vars.get(n) == Some(&l.var()));
        if keep {
            assumptions.push(*l);
        }
    }
    for (name, value) in fixed {
        let var = input_vars.get(name).ok_or_else(|| {
            EquivError::PortMismatch(format!("input `{name}` not present in the miter"))
        })?;
        assumptions.push(var.lit(!*value));
    }
    Ok(assumptions)
}

/// A miter encoded once into a persistent [`Session`], for *repeated*
/// equivalence checks of the same circuit pair under varying fixed inputs
/// — key verification after an attack, morph validation, `SE`-mode checks.
///
/// The expensive part of an equivalence query on circuits produced by the
/// locking flow is re-encoding the miter and re-constructing the solver;
/// an `EquivSession` pays that once, then answers each query with a
/// [`Session::solve_under`] call against the warm solver (learned clauses
/// from earlier keys carry over — they are implied by the miter formula
/// alone, so they remain sound for every later query).
///
/// # Examples
///
/// ```
/// use ril_netlist::generators;
/// use ril_sat::{EquivOptions, EquivResult, EquivSession};
///
/// let nl = generators::adder(4);
/// let mut sess = EquivSession::new(&nl, &nl.clone(), &EquivOptions::default()).unwrap();
/// for _ in 0..3 {
///     assert_eq!(sess.check(), EquivResult::Equivalent);
/// }
/// ```
#[derive(Debug)]
pub struct EquivSession {
    session: Session,
    /// Activation literal guarding the miter's difference clause, so that
    /// an equivalent pair yields UNSAT-under-assumptions rather than a
    /// root-level contradiction that would poison the session.
    act: Lit,
    shared_vars: Vec<Var>,
    input_vars: HashMap<String, Var>,
    base_assumptions: Vec<Lit>,
}

impl EquivSession {
    /// Encodes the miter of `left` vs `right` (ports matched by name) into
    /// a fresh session. `options.fixed_inputs` become *base* assumptions
    /// applied to every check; `options.timeout` bounds each solve call.
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] on name mismatches and
    /// [`EquivError::Encode`] for sequential netlists.
    pub fn new(
        left: &Netlist,
        right: &Netlist,
        options: &EquivOptions,
    ) -> Result<EquivSession, EquivError> {
        let mut session = Session::with_config(SolverConfig {
            timeout: options.timeout,
            ..SolverConfig::default()
        });
        EquivSession::encode_into(&mut session, left, right, options)
    }

    /// Like [`EquivSession::new`], but encodes into a caller-provided
    /// session (whose solver config, learned clauses and variable pool are
    /// reused). The difference clause is guarded by a fresh activation
    /// literal, so several miters can live in one session without
    /// interfering at the root level.
    ///
    /// On success the passed-in session is **moved into** the returned
    /// `EquivSession` (the caller's binding is left empty); reclaim it with
    /// [`EquivSession::into_session`]. On error the session is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] on name mismatches and
    /// [`EquivError::Encode`] for sequential netlists.
    pub fn encode_into(
        session: &mut Session,
        left: &Netlist,
        right: &Netlist,
        options: &EquivOptions,
    ) -> Result<EquivSession, EquivError> {
        // Encode into a scratch CNF whose variable pool continues the
        // session's (so clauses transfer verbatim).
        let mut cnf = Cnf::new();
        cnf.reserve_vars(session.num_vars());
        let MiterPorts {
            out_pairs,
            shared_vars,
            input_vars,
            pins_left,
            pins_right,
            base_assumptions,
        } = match_ports(&mut cnf, left, right, options)?;

        // --- Miter -------------------------------------------------------
        let vars_l = encode_netlist_into(left, &mut cnf, &pins_left)?;
        let vars_r = encode_netlist_into(right, &mut cnf, &pins_right)?;
        let act = cnf.new_var().positive();
        let mut diff = Vec::with_capacity(out_pairs.len() + 1);
        for (lo, ro) in out_pairs {
            let x = cnf.new_var().positive();
            let a = vars_l.lit(lo);
            let b = vars_r.lit(ro);
            cnf.add_clause([!x, a, b]);
            cnf.add_clause([!x, !a, !b]);
            cnf.add_clause([x, !a, b]);
            cnf.add_clause([x, a, !b]);
            diff.push(x);
        }
        // Guarded difference clause: active only while `act` is assumed.
        diff.push(!act);
        cnf.add_clause(diff);

        // All fallible work is done; take ownership of the session now so
        // an earlier error leaves the caller's session untouched.
        let mut owned = std::mem::take(session);
        owned.append_cnf(&cnf);
        Ok(EquivSession {
            session: owned,
            act,
            shared_vars,
            input_vars,
            base_assumptions,
        })
    }

    /// Consumes the miter and returns the underlying (grown, warm) session
    /// for further reuse.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// One equivalence query under the base fixed inputs.
    pub fn check(&mut self) -> EquivResult {
        self.check_with(&[]).expect("no overrides: names known")
    }

    /// One equivalence query with additional per-call pinned inputs (by
    /// name), layered over — and overriding — the base fixed inputs. This
    /// is the repeated-key-verification fast path: the miter is warm, only
    /// the assumptions change.
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] if a name matches no input.
    pub fn check_with(&mut self, fixed: &[(String, bool)]) -> Result<EquivResult, EquivError> {
        let assumptions =
            layered_assumptions(&[self.act], &self.base_assumptions, &self.input_vars, fixed)?;
        Ok(match self.session.solve_under(&assumptions) {
            Outcome::Unsat => EquivResult::Equivalent,
            Outcome::Unknown => EquivResult::Unknown,
            Outcome::Sat => {
                let model = self.session.model();
                EquivResult::Inequivalent {
                    counterexample: self.shared_vars.iter().map(|v| model[v.index()]).collect(),
                }
            }
        })
    }

    /// Updates the per-call wall-clock budget.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.session.set_budget(Budget::from_timeout(timeout));
    }

    /// Cumulative solver statistics across all checks.
    pub fn stats(&self) -> SolverStats {
        self.session.stats()
    }

    /// Number of checks answered so far.
    pub fn checks(&self) -> usize {
        self.session.solve_count()
    }
}

/// A persistent miter with **per-output** difference literals and **lazy
/// cone encoding**, built for the post-morph incremental verification loop.
///
/// Where [`EquivSession`] encodes both circuits up front and owns a single
/// all-outputs difference clause, an `IncrementalEquivSession` encodes an
/// output pair's fan-in cones only when that output is first checked, and
/// can restrict a query to any output subset. After a morph reports which
/// key bits changed, the verifier asks only about the *dirty* outputs —
/// the cones actually containing changed key bits — and the clean outputs'
/// previous verdicts carry over (their difference is a function of inputs
/// whose pinned values did not change). Each distinct output subset gets
/// one guarded disjunction clause (`∨ xᵢ ∨ ¬g`), memoized so a recurring
/// dirty set re-uses its guard instead of growing the clause database.
///
/// The session owns clones of both netlists so cones can be encoded on
/// demand; it is keyed to the netlists *as constructed* (structural edits
/// afterwards are not observed — check [`IncrementalEquivSession::generations`]
/// against [`Netlist::generation`] to detect staleness).
///
/// # Examples
///
/// ```
/// use ril_netlist::generators;
/// use ril_sat::{EquivOptions, EquivResult, IncrementalEquivSession};
///
/// let nl = generators::adder(4);
/// let mut sess =
///     IncrementalEquivSession::new(&nl, &nl.clone(), &EquivOptions::default()).unwrap();
/// // Check a single output's cone — only that cone gets encoded.
/// assert_eq!(sess.check_outputs(&[0], &[]).unwrap(), EquivResult::Equivalent);
/// assert!(sess.encoded_outputs() < sess.outputs());
/// // The full check encodes the rest on demand.
/// assert_eq!(sess.check(), EquivResult::Equivalent);
/// assert_eq!(sess.encoded_outputs(), sess.outputs());
/// ```
#[derive(Debug)]
pub struct IncrementalEquivSession {
    session: Session,
    left: Netlist,
    right: Netlist,
    out_pairs: Vec<(NetId, NetId)>,
    /// Per-output difference literal, allocated when the cone is encoded.
    diff: Vec<Option<Lit>>,
    vars_left: HashMap<NetId, Var>,
    vars_right: HashMap<NetId, Var>,
    encoded_left: HashSet<GateId>,
    encoded_right: HashSet<GateId>,
    input_vars: HashMap<String, Var>,
    shared_vars: Vec<Var>,
    base_assumptions: Vec<Lit>,
    /// Guard literal per (sorted, deduped) output subset already queried.
    guards: HashMap<Vec<usize>, Lit>,
    generations: (u64, u64),
}

impl IncrementalEquivSession {
    /// Matches ports of `left` vs `right` (same rules as
    /// [`EquivSession::new`]) and allocates input variables, but encodes
    /// **no** gates yet — cones are pushed into the session on first use by
    /// [`IncrementalEquivSession::check_outputs`].
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] on name mismatches.
    pub fn new(
        left: &Netlist,
        right: &Netlist,
        options: &EquivOptions,
    ) -> Result<IncrementalEquivSession, EquivError> {
        let mut session = Session::with_config(SolverConfig {
            timeout: options.timeout,
            ..SolverConfig::default()
        });
        let mut cnf = Cnf::new();
        cnf.reserve_vars(session.num_vars());
        let MiterPorts {
            out_pairs,
            shared_vars,
            input_vars,
            pins_left,
            pins_right,
            base_assumptions,
        } = match_ports(&mut cnf, left, right, options)?;
        session.append_cnf(&cnf);
        let n_outputs = out_pairs.len();
        Ok(IncrementalEquivSession {
            session,
            left: left.clone(),
            right: right.clone(),
            out_pairs,
            diff: vec![None; n_outputs],
            vars_left: pins_left,
            vars_right: pins_right,
            encoded_left: HashSet::new(),
            encoded_right: HashSet::new(),
            input_vars,
            shared_vars,
            base_assumptions,
            guards: HashMap::new(),
            generations: (left.generation(), right.generation()),
        })
    }

    /// The netlist [`Netlist::generation`] stamps `(left, right)` this
    /// miter was encoded against.
    pub fn generations(&self) -> (u64, u64) {
        self.generations
    }

    /// Number of matched output pairs.
    pub fn outputs(&self) -> usize {
        self.out_pairs.len()
    }

    /// Number of output pairs whose cones have been pushed into the solver.
    pub fn encoded_outputs(&self) -> usize {
        self.diff.iter().filter(|d| d.is_some()).count()
    }

    /// Encodes output pair `i`'s fan-in cones (left and right, minus gates
    /// already in the solver) and its difference literal.
    fn ensure_output(&mut self, i: usize) -> Result<(), EquivError> {
        if self.diff[i].is_some() {
            return Ok(());
        }
        let (lo, ro) = self.out_pairs[i];
        let mut cnf = Cnf::new();
        cnf.reserve_vars(self.session.num_vars());

        let cone_l = fanin_cone(&self.left, lo);
        let encoded = &self.encoded_left;
        let map = encode_selected(&self.left, &mut cnf, &self.vars_left, |g| {
            cone_l.binary_search(&g).is_ok() && !encoded.contains(&g)
        })?;
        self.vars_left = map;
        self.encoded_left.extend(cone_l.iter().copied());

        let cone_r = fanin_cone(&self.right, ro);
        let encoded = &self.encoded_right;
        let map = encode_selected(&self.right, &mut cnf, &self.vars_right, |g| {
            cone_r.binary_search(&g).is_ok() && !encoded.contains(&g)
        })?;
        self.vars_right = map;
        self.encoded_right.extend(cone_r.iter().copied());

        // An output that is itself a primary input already has a pin; any
        // other un-encoded output net gets a free variable (mirroring the
        // eager encoder, which allocates variables for every net).
        let a = self
            .vars_left
            .entry(lo)
            .or_insert_with(|| cnf.new_var())
            .positive();
        let b = self
            .vars_right
            .entry(ro)
            .or_insert_with(|| cnf.new_var())
            .positive();
        let x = cnf.new_var().positive();
        cnf.add_clause([!x, a, b]);
        cnf.add_clause([!x, !a, !b]);
        cnf.add_clause([x, !a, b]);
        cnf.add_clause([x, a, !b]);
        self.diff[i] = Some(x);
        self.session.append_cnf(&cnf);
        Ok(())
    }

    /// One equivalence query restricted to the given output indices
    /// (positions in the matched output-pair order, which follows the left
    /// netlist's [`Netlist::outputs`] order), with per-call pinned inputs
    /// layered over the base fixed inputs.
    ///
    /// An empty `outputs` slice is vacuously [`EquivResult::Equivalent`].
    /// Cones are encoded on demand; the subset's guarded difference clause
    /// is created once and reused on repeat queries.
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] for out-of-range output indices
    /// or unknown input names, [`EquivError::Encode`] if a cone contains a
    /// DFF.
    pub fn check_outputs(
        &mut self,
        outputs: &[usize],
        fixed: &[(String, bool)],
    ) -> Result<EquivResult, EquivError> {
        let mut subset: Vec<usize> = outputs.to_vec();
        subset.sort_unstable();
        subset.dedup();
        if let Some(&bad) = subset.last().filter(|&&o| o >= self.out_pairs.len()) {
            return Err(EquivError::PortMismatch(format!(
                "output index {bad} out of range ({} outputs)",
                self.out_pairs.len()
            )));
        }
        if subset.is_empty() {
            return Ok(EquivResult::Equivalent);
        }
        for &o in &subset {
            self.ensure_output(o)?;
        }
        let guard = match self.guards.get(&subset) {
            Some(&g) => g,
            None => {
                let g = self.session.new_var().positive();
                let mut clause: Vec<Lit> = subset
                    .iter()
                    .map(|&o| self.diff[o].expect("cone encoded above"))
                    .collect();
                clause.push(!g);
                self.session.add_clause(clause);
                self.guards.insert(subset.clone(), g);
                g
            }
        };
        let assumptions =
            layered_assumptions(&[guard], &self.base_assumptions, &self.input_vars, fixed)?;
        Ok(match self.session.solve_under(&assumptions) {
            Outcome::Unsat => EquivResult::Equivalent,
            Outcome::Unknown => EquivResult::Unknown,
            Outcome::Sat => {
                let model = self.session.model();
                EquivResult::Inequivalent {
                    counterexample: self.shared_vars.iter().map(|v| model[v.index()]).collect(),
                }
            }
        })
    }

    /// One full equivalence query (all outputs) under the base fixed
    /// inputs.
    pub fn check(&mut self) -> EquivResult {
        self.check_with(&[]).expect("no overrides: names known")
    }

    /// One full equivalence query with per-call pinned inputs.
    ///
    /// # Errors
    ///
    /// Returns [`EquivError::PortMismatch`] if a name matches no input.
    pub fn check_with(&mut self, fixed: &[(String, bool)]) -> Result<EquivResult, EquivError> {
        let all: Vec<usize> = (0..self.out_pairs.len()).collect();
        self.check_outputs(&all, fixed)
    }

    /// Updates the per-call wall-clock budget.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.session.set_budget(Budget::from_timeout(timeout));
    }

    /// Applies a full [`Budget`] to subsequent checks.
    pub fn set_budget(&mut self, budget: Budget) {
        self.session.set_budget(budget);
    }

    /// Cumulative solver statistics across all checks.
    pub fn stats(&self) -> SolverStats {
        self.session.stats()
    }

    /// Number of checks answered so far (vacuous empty-subset checks
    /// excluded — they never reach the solver).
    pub fn checks(&self) -> usize {
        self.session.solve_count()
    }
}

/// Checks combinational equivalence of `left` and `right`, matching inputs
/// and outputs by name.
///
/// Inputs present in only one circuit must be listed in
/// [`EquivOptions::ignore_inputs`] or pinned in
/// [`EquivOptions::fixed_inputs`]; outputs must match exactly by name.
/// One-shot convenience over [`EquivSession`]; callers issuing repeated
/// checks of the same pair should hold an `EquivSession` (or pass a shared
/// [`Session`] to [`check_equivalence_in`]) instead of paying miter
/// encoding and solver construction per call.
///
/// # Errors
///
/// Returns [`EquivError::PortMismatch`] on name mismatches and
/// [`EquivError::Encode`] for sequential netlists.
pub fn check_equivalence(
    left: &Netlist,
    right: &Netlist,
    options: &EquivOptions,
) -> Result<EquivResult, EquivError> {
    Ok(EquivSession::new(left, right, options)?.check())
}

/// Like [`check_equivalence`], but encodes into an existing [`Session`],
/// reusing its solver state (allocations, learned clauses, activity
/// ordering). Each miter's difference clause is guarded by a fresh
/// activation literal assumed only for its own query, so sequential checks
/// of *different* circuit pairs can share one session soundly.
///
/// # Errors
///
/// Returns [`EquivError::PortMismatch`] on name mismatches and
/// [`EquivError::Encode`] for sequential netlists.
pub fn check_equivalence_in(
    session: &mut Session,
    left: &Netlist,
    right: &Netlist,
    options: &EquivOptions,
) -> Result<EquivResult, EquivError> {
    session.set_budget(Budget::from_timeout(options.timeout));
    let mut equiv = EquivSession::encode_into(session, left, right, options)?;
    let result = equiv.check();
    // Give the (grown) session back to the caller.
    *session = equiv.into_session();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_netlist::{generators, parse_bench, GateKind, Netlist};

    fn and_circuit(name: &str, kind: GateKind) -> Netlist {
        let mut nl = Netlist::new(name);
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(kind, &[a, b], y).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let l = and_circuit("l", GateKind::And);
        let r = and_circuit("r", GateKind::And);
        assert_eq!(
            check_equivalence(&l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn different_gates_yield_counterexample() {
        let l = and_circuit("l", GateKind::And);
        let r = and_circuit("r", GateKind::Or);
        match check_equivalence(&l, &r, &EquivOptions::default()).unwrap() {
            EquivResult::Inequivalent { counterexample } => {
                // AND ≠ OR exactly when inputs differ from each other.
                assert_eq!(counterexample.len(), 2);
                assert_ne!(counterexample[0], counterexample[1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_adders() {
        // DeMorgan: NAND(a,b) ≡ OR(!a,!b).
        let l = and_circuit("l", GateKind::Nand);
        let mut r = Netlist::new("r");
        let a = r.add_input("a").unwrap();
        let b = r.add_input("b").unwrap();
        let na = r.add_gate_fresh(GateKind::Not, &[a], "n").unwrap();
        let nb = r.add_gate_fresh(GateKind::Not, &[b], "n").unwrap();
        let y = r.add_net("y").unwrap();
        r.add_gate(GateKind::Or, &[na, nb], y).unwrap();
        r.mark_output(y);
        assert_eq!(
            check_equivalence(&l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn port_mismatches_are_reported() {
        let l = and_circuit("l", GateKind::And);
        let mut r = and_circuit("r", GateKind::And);
        r.add_input("extra").unwrap();
        let err = check_equivalence(&l, &r, &EquivOptions::default()).unwrap_err();
        assert!(matches!(err, EquivError::PortMismatch(_)));
        // Ignoring the extra pin makes it pass (the pin is unused).
        let opts = EquivOptions {
            ignore_inputs: vec!["extra".into()],
            ..EquivOptions::default()
        };
        assert_eq!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn fixed_inputs_model_functional_mode() {
        // right = left XOR se: equivalent only when se is pinned to 0.
        let l = and_circuit("l", GateKind::And);
        let text = "INPUT(a)\nINPUT(b)\nINPUT(se)\nOUTPUT(y)\nt = AND(a, b)\ny = XOR(t, se)\n";
        let r = parse_bench("r", text).unwrap();
        let err = check_equivalence(&l, &r, &EquivOptions::default()).unwrap_err();
        assert!(matches!(err, EquivError::PortMismatch(_)));
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), false)],
            ..EquivOptions::default()
        };
        assert_eq!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Equivalent
        );
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), true)],
            ..EquivOptions::default()
        };
        assert!(matches!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
    }

    #[test]
    fn equiv_session_answers_repeated_queries() {
        // right = left XOR se: the verdict flips with the pinned value of
        // `se`, all on one warm miter.
        let l = and_circuit("l", GateKind::And);
        let text = "INPUT(a)\nINPUT(b)\nINPUT(se)\nOUTPUT(y)\nt = AND(a, b)\ny = XOR(t, se)\n";
        let r = parse_bench("r", text).unwrap();
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), false)],
            ..EquivOptions::default()
        };
        let mut sess = EquivSession::new(&l, &r, &opts).unwrap();
        assert_eq!(sess.check(), EquivResult::Equivalent);
        // Per-call override flips the verdict without re-encoding.
        assert!(matches!(
            sess.check_with(&[("se".into(), true)]).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
        // Base assumptions are restored on the next plain check.
        assert_eq!(sess.check(), EquivResult::Equivalent);
        assert_eq!(sess.checks(), 3);
        let err = sess.check_with(&[("nope".into(), true)]).unwrap_err();
        assert!(matches!(err, EquivError::PortMismatch(_)));
    }

    #[test]
    fn shared_session_survives_multiple_miters() {
        // Independent miters (one UNSAT, one SAT) in a single session: the
        // activation guards keep the UNSAT one from poisoning the rest.
        let mut session = Session::new();
        let l = and_circuit("l", GateKind::And);
        let r = and_circuit("r", GateKind::And);
        assert_eq!(
            check_equivalence_in(&mut session, &l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
        let vars_after_first = session.num_vars();
        let r2 = and_circuit("r2", GateKind::Or);
        assert!(matches!(
            check_equivalence_in(&mut session, &l, &r2, &EquivOptions::default()).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
        // The session really was reused: the second miter extended the
        // first's variable pool instead of starting over.
        assert!(session.num_vars() > vars_after_first);
        assert_eq!(
            check_equivalence_in(&mut session, &l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
        assert!(session.root_consistent());
        assert_eq!(session.solve_count(), 3);
    }

    #[test]
    fn encode_errors_leave_caller_session_untouched() {
        let mut session = Session::new();
        session.add_clause([Lit::new(0, false)]);
        let l = and_circuit("l", GateKind::And);
        let mut r = and_circuit("r", GateKind::And);
        r.add_input("extra").unwrap();
        let err = check_equivalence_in(&mut session, &l, &r, &EquivOptions::default());
        assert!(matches!(err, Err(EquivError::PortMismatch(_))));
        assert_eq!(session.num_vars(), 1);
        assert_eq!(session.solve(), Outcome::Sat);
    }

    #[test]
    fn incremental_session_agrees_with_scratch() {
        let l = and_circuit("l", GateKind::And);
        let r_eq = and_circuit("r", GateKind::And);
        let r_ne = and_circuit("r2", GateKind::Or);
        for (right, expect_eq) in [(&r_eq, true), (&r_ne, false)] {
            let scratch = check_equivalence(&l, right, &EquivOptions::default()).unwrap();
            let mut inc =
                IncrementalEquivSession::new(&l, right, &EquivOptions::default()).unwrap();
            let got = inc.check();
            assert_eq!(
                matches!(got, EquivResult::Equivalent),
                expect_eq,
                "incremental verdict"
            );
            assert_eq!(
                matches!(scratch, EquivResult::Equivalent),
                matches!(got, EquivResult::Equivalent),
                "scratch vs incremental"
            );
        }
    }

    #[test]
    fn incremental_session_lazy_cones_and_subsets() {
        // Two independent outputs: y0 = AND(a,b) on both sides, y1 = XOR
        // vs XNOR (inequivalent).
        let build = |name: &str, second: GateKind| {
            let mut nl = Netlist::new(name.to_string());
            let a = nl.add_input("a").unwrap();
            let b = nl.add_input("b").unwrap();
            let y0 = nl.add_net("y0").unwrap();
            let y1 = nl.add_net("y1").unwrap();
            nl.add_gate(GateKind::And, &[a, b], y0).unwrap();
            nl.add_gate(second, &[a, b], y1).unwrap();
            nl.mark_output(y0);
            nl.mark_output(y1);
            nl
        };
        let l = build("l", GateKind::Xor);
        let r = build("r", GateKind::Xnor);
        let mut inc = IncrementalEquivSession::new(&l, &r, &EquivOptions::default()).unwrap();
        assert_eq!(inc.outputs(), 2);
        assert_eq!(inc.encoded_outputs(), 0);
        // Output 0 alone: equivalent, and only its cone was encoded.
        assert_eq!(
            inc.check_outputs(&[0], &[]).unwrap(),
            EquivResult::Equivalent
        );
        assert_eq!(inc.encoded_outputs(), 1);
        // Output 1 alone: inequivalent.
        assert!(matches!(
            inc.check_outputs(&[1], &[]).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
        assert_eq!(inc.encoded_outputs(), 2);
        // Full check still inequivalent; subset guard for {0} is memoized
        // (repeat query adds no clause, just re-assumes the guard).
        assert!(matches!(inc.check(), EquivResult::Inequivalent { .. }));
        let before = inc.checks();
        assert_eq!(
            inc.check_outputs(&[0], &[]).unwrap(),
            EquivResult::Equivalent
        );
        assert_eq!(inc.checks(), before + 1);
        // Empty subset is vacuously equivalent without a solve.
        assert_eq!(
            inc.check_outputs(&[], &[]).unwrap(),
            EquivResult::Equivalent
        );
        assert_eq!(inc.checks(), before + 1);
        // Out-of-range index is a port error.
        assert!(matches!(
            inc.check_outputs(&[7], &[]),
            Err(EquivError::PortMismatch(_))
        ));
    }

    #[test]
    fn incremental_session_layers_fixed_inputs() {
        // right = left XOR se, key-style: pin `se` per call.
        let l = and_circuit("l", GateKind::And);
        let text = "INPUT(a)\nINPUT(b)\nINPUT(se)\nOUTPUT(y)\nt = AND(a, b)\ny = XOR(t, se)\n";
        let r = parse_bench("r", text).unwrap();
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), false)],
            ..EquivOptions::default()
        };
        let mut inc = IncrementalEquivSession::new(&l, &r, &opts).unwrap();
        assert_eq!(inc.check(), EquivResult::Equivalent);
        assert!(matches!(
            inc.check_with(&[("se".into(), true)]).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
        assert_eq!(inc.check(), EquivResult::Equivalent);
        assert!(matches!(
            inc.check_outputs(&[0], &[("nope".into(), true)]),
            Err(EquivError::PortMismatch(_))
        ));
    }

    #[test]
    fn real_benchmark_is_self_equivalent() {
        let nl = generators::adder(8);
        assert_eq!(
            check_equivalence(&nl, &nl.clone(), &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn tiny_timeout_reports_unknown_or_answers() {
        let nl = generators::multiplier(6);
        let opts = EquivOptions {
            timeout: Some(Duration::from_nanos(1)),
            ..EquivOptions::default()
        };
        // With a 1 ns budget the solver may still finish trivially (both
        // copies identical), but must never crash or mis-answer.
        match check_equivalence(&nl, &nl.clone(), &opts).unwrap() {
            EquivResult::Equivalent | EquivResult::Unknown => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
