//! SAT-based combinational equivalence checking.
//!
//! Builds the classic miter between two netlists matched by port *names*
//! and asks the CDCL solver whether any input makes the outputs differ —
//! the formal upgrade of random-pattern verification, used by the locking
//! flow to certify `locked(correct key) ≡ original` and by attack
//! evaluation to certify recovered keys.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::solver::{Outcome, Solver, SolverConfig};
use crate::tseitin::{encode_netlist_into, TseitinError};
use ril_netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The circuits agree on every input (UNSAT miter).
    Equivalent,
    /// A distinguishing input was found (values in the *shared* input
    /// order of [`check_equivalence`]'s report).
    Inequivalent {
        /// Counterexample input assignment, shared-input order.
        counterexample: Vec<bool>,
    },
    /// The solve budget expired first.
    Unknown,
}

/// Errors from equivalence checking.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// Port sets do not line up (message names the offender).
    PortMismatch(String),
    /// Encoding failed (sequential netlist, etc.).
    Encode(TseitinError),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::PortMismatch(m) => write!(f, "port mismatch: {m}"),
            EquivError::Encode(e) => write!(f, "encoding error: {e}"),
        }
    }
}

impl Error for EquivError {}

impl From<TseitinError> for EquivError {
    fn from(e: TseitinError) -> Self {
        EquivError::Encode(e)
    }
}

/// Options for [`check_equivalence`].
#[derive(Debug, Clone, Default)]
pub struct EquivOptions {
    /// Wall-clock budget for the solve.
    pub timeout: Option<Duration>,
    /// Inputs of either circuit that are allowed to be missing from the
    /// other; they are treated as free (universally quantified) on their
    /// own side. Useful for ignoring scan/test pins.
    pub ignore_inputs: Vec<String>,
    /// Per-input fixed values (by name), e.g. `SE = 0` for functional-mode
    /// checks of scan-obfuscated designs.
    pub fixed_inputs: Vec<(String, bool)>,
}

/// Checks combinational equivalence of `left` and `right`, matching inputs
/// and outputs by name.
///
/// Inputs present in only one circuit must be listed in
/// [`EquivOptions::ignore_inputs`] or pinned in
/// [`EquivOptions::fixed_inputs`]; outputs must match exactly by name.
///
/// # Errors
///
/// Returns [`EquivError::PortMismatch`] on name mismatches and
/// [`EquivError::Encode`] for sequential netlists.
pub fn check_equivalence(
    left: &Netlist,
    right: &Netlist,
    options: &EquivOptions,
) -> Result<EquivResult, EquivError> {
    // --- Match outputs by name -------------------------------------------
    let mut right_outputs: HashMap<&str, NetId> = right
        .outputs()
        .iter()
        .map(|&o| (right.net(o).name(), o))
        .collect();
    let mut out_pairs: Vec<(NetId, NetId)> = Vec::new();
    for &o in left.outputs() {
        let name = left.net(o).name();
        match right_outputs.remove(name) {
            Some(ro) => out_pairs.push((o, ro)),
            None => {
                return Err(EquivError::PortMismatch(format!(
                    "output `{name}` missing on the right"
                )))
            }
        }
    }
    if let Some((name, _)) = right_outputs.into_iter().next() {
        return Err(EquivError::PortMismatch(format!(
            "output `{name}` missing on the left"
        )));
    }

    // --- Match inputs by name --------------------------------------------
    let fixed: HashMap<&str, bool> = options
        .fixed_inputs
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    let ignored: Vec<&str> = options.ignore_inputs.iter().map(String::as_str).collect();
    let mut cnf = Cnf::new();
    let mut shared_names: Vec<String> = Vec::new();
    let mut shared_vars: Vec<Var> = Vec::new();
    let mut pins_left: HashMap<NetId, Var> = HashMap::new();
    let mut pins_right: HashMap<NetId, Var> = HashMap::new();
    let right_inputs: HashMap<&str, NetId> = right
        .inputs()
        .iter()
        .map(|&i| (right.net(i).name(), i))
        .collect();

    let mut assumptions: Vec<Lit> = Vec::new();
    for &li in left.inputs() {
        let name = left.net(li).name().to_string();
        let var = cnf.new_var();
        pins_left.insert(li, var);
        if let Some(&ri) = right_inputs.get(name.as_str()) {
            pins_right.insert(ri, var);
            shared_names.push(name.clone());
            shared_vars.push(var);
        } else if !ignored.contains(&name.as_str()) && !fixed.contains_key(name.as_str()) {
            return Err(EquivError::PortMismatch(format!(
                "input `{name}` missing on the right (ignore or fix it)"
            )));
        }
        if let Some(&v) = fixed.get(name.as_str()) {
            assumptions.push(var.lit(!v));
        }
    }
    for &ri in right.inputs() {
        let name = right.net(ri).name();
        if pins_right.contains_key(&ri) {
            continue;
        }
        let var = cnf.new_var();
        pins_right.insert(ri, var);
        if let Some(&v) = fixed.get(name) {
            assumptions.push(var.lit(!v));
        } else if !ignored.contains(&name) {
            return Err(EquivError::PortMismatch(format!(
                "input `{name}` missing on the left (ignore or fix it)"
            )));
        }
    }

    // --- Miter --------------------------------------------------------------
    let vars_l = encode_netlist_into(left, &mut cnf, &pins_left)?;
    let vars_r = encode_netlist_into(right, &mut cnf, &pins_right)?;
    let mut diff = Vec::with_capacity(out_pairs.len());
    for (lo, ro) in out_pairs {
        let x = cnf.new_var().positive();
        let a = vars_l.lit(lo);
        let b = vars_r.lit(ro);
        cnf.add_clause([!x, a, b]);
        cnf.add_clause([!x, !a, !b]);
        cnf.add_clause([x, !a, b]);
        cnf.add_clause([x, a, !b]);
        diff.push(x);
    }
    cnf.add_clause(diff);

    let mut solver = Solver::from_cnf_with_config(
        &cnf,
        SolverConfig {
            timeout: options.timeout,
            ..SolverConfig::default()
        },
    );
    Ok(match solver.solve_with_assumptions(&assumptions) {
        Outcome::Unsat => EquivResult::Equivalent,
        Outcome::Unknown => EquivResult::Unknown,
        Outcome::Sat => {
            let model = solver.model();
            EquivResult::Inequivalent {
                counterexample: shared_vars.iter().map(|v| model[v.index()]).collect(),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_netlist::{generators, parse_bench, GateKind, Netlist};

    fn and_circuit(name: &str, kind: GateKind) -> Netlist {
        let mut nl = Netlist::new(name);
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(kind, &[a, b], y).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn identical_circuits_are_equivalent() {
        let l = and_circuit("l", GateKind::And);
        let r = and_circuit("r", GateKind::And);
        assert_eq!(
            check_equivalence(&l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn different_gates_yield_counterexample() {
        let l = and_circuit("l", GateKind::And);
        let r = and_circuit("r", GateKind::Or);
        match check_equivalence(&l, &r, &EquivOptions::default()).unwrap() {
            EquivResult::Inequivalent { counterexample } => {
                // AND ≠ OR exactly when inputs differ from each other.
                assert_eq!(counterexample.len(), 2);
                assert_ne!(counterexample[0], counterexample[1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_adders() {
        // DeMorgan: NAND(a,b) ≡ OR(!a,!b).
        let l = and_circuit("l", GateKind::Nand);
        let mut r = Netlist::new("r");
        let a = r.add_input("a").unwrap();
        let b = r.add_input("b").unwrap();
        let na = r.add_gate_fresh(GateKind::Not, &[a], "n").unwrap();
        let nb = r.add_gate_fresh(GateKind::Not, &[b], "n").unwrap();
        let y = r.add_net("y").unwrap();
        r.add_gate(GateKind::Or, &[na, nb], y).unwrap();
        r.mark_output(y);
        assert_eq!(
            check_equivalence(&l, &r, &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn port_mismatches_are_reported() {
        let l = and_circuit("l", GateKind::And);
        let mut r = and_circuit("r", GateKind::And);
        r.add_input("extra").unwrap();
        let err = check_equivalence(&l, &r, &EquivOptions::default()).unwrap_err();
        assert!(matches!(err, EquivError::PortMismatch(_)));
        // Ignoring the extra pin makes it pass (the pin is unused).
        let opts = EquivOptions {
            ignore_inputs: vec!["extra".into()],
            ..EquivOptions::default()
        };
        assert_eq!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn fixed_inputs_model_functional_mode() {
        // right = left XOR se: equivalent only when se is pinned to 0.
        let l = and_circuit("l", GateKind::And);
        let text = "INPUT(a)\nINPUT(b)\nINPUT(se)\nOUTPUT(y)\nt = AND(a, b)\ny = XOR(t, se)\n";
        let r = parse_bench("r", text).unwrap();
        let err = check_equivalence(&l, &r, &EquivOptions::default()).unwrap_err();
        assert!(matches!(err, EquivError::PortMismatch(_)));
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), false)],
            ..EquivOptions::default()
        };
        assert_eq!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Equivalent
        );
        let opts = EquivOptions {
            fixed_inputs: vec![("se".into(), true)],
            ..EquivOptions::default()
        };
        assert!(matches!(
            check_equivalence(&l, &r, &opts).unwrap(),
            EquivResult::Inequivalent { .. }
        ));
    }

    #[test]
    fn real_benchmark_is_self_equivalent() {
        let nl = generators::adder(8);
        assert_eq!(
            check_equivalence(&nl, &nl.clone(), &EquivOptions::default()).unwrap(),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn tiny_timeout_reports_unknown_or_answers() {
        let nl = generators::multiplier(6);
        let opts = EquivOptions {
            timeout: Some(Duration::from_nanos(1)),
            ..EquivOptions::default()
        };
        // With a 1 ns budget the solver may still finish trivially (both
        // copies identical), but must never crash or mis-answer.
        match check_equivalence(&nl, &nl.clone(), &opts).unwrap() {
            EquivResult::Equivalent | EquivResult::Unknown => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
