//! Variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable (0-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its 0-based index.
    pub fn new(index: usize) -> Var {
        Var(index as u32)
    }

    /// The 0-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign (`true` = negated).
    pub fn lit(self, negated: bool) -> Lit {
        Lit((self.0 << 1) | negated as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation. Encoded as `var*2 + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal over the 0-based variable index.
    pub fn new(var: usize, negated: bool) -> Lit {
        Var::new(var).lit(negated)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index usable for watch lists (`var*2 + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense index.
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }

    /// The truth value this literal requires of its variable.
    pub fn target(self) -> bool {
        !self.is_negated()
    }

    /// Converts from DIMACS convention (non-zero, sign = polarity,
    /// 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i64) -> Lit {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        Lit::new((dimacs.unsigned_abs() - 1) as usize, dimacs < 0)
    }

    /// Converts to DIMACS convention.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_negated() {
            -v
        } else {
            v
        }
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// Three-valued assignment domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// Lifts a `bool`.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Lowers to `Option<bool>`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::new(3);
        assert_eq!(v.positive().index(), 6);
        assert_eq!(v.negative().index(), 7);
        assert_eq!(v.positive().var(), v);
        assert!(!v.positive().is_negated());
        assert!(v.negative().is_negated());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(Lit::from_index(7), v.negative());
    }

    #[test]
    fn dimacs_round_trip() {
        for d in [1i64, -1, 5, -17] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::from_dimacs(1), Var::new(0).positive());
        assert_eq!(Lit::from_dimacs(-2), Var::new(1).negative());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_conversions() {
        assert_eq!(LBool::from_bool(true).to_bool(), Some(true));
        assert_eq!(LBool::from_bool(false).to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
        assert_eq!(LBool::default(), LBool::Undef);
    }

    #[test]
    fn target_matches_sign() {
        assert!(Var::new(0).positive().target());
        assert!(!Var::new(0).negative().target());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::new(2).positive().to_string(), "x2");
        assert_eq!(Var::new(2).negative().to_string(), "!x2");
        assert_eq!(Var::new(2).to_string(), "x2");
    }
}
