//! Incremental solving sessions.
//!
//! A [`Session`] is a long-lived [`Solver`] plus per-call accounting: the
//! oracle-guided attack loop appends each DIP's I/O constraint to a *live*
//! solver — keeping learned clauses, VSIDS activities and watch lists warm
//! across iterations — instead of re-reading a growing CNF from scratch
//! every iteration. Each `solve*` call is recorded as a [`SolveRecord`]
//! (outcome, wall time, and the [`SolverStats`] delta for just that call),
//! which is what the bench tables surface as per-DIP solver statistics.
//!
//! ## Assumption-literal protocol
//!
//! Clauses added to a session are permanent. Retractable constraints are
//! expressed through *assumption literals* passed to
//! [`Session::solve_under`]: the solver decides them first and reports
//! UNSAT-under-assumptions without poisoning the clause database. To make
//! a whole clause retractable, guard it with a fresh activation variable
//! `a` (`clause ∨ ¬a`) and assume `a` while the clause should hold — the
//! pattern [`crate::equiv::check_equivalence_in`] uses to share one
//! session across independent miters.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::solver::{Outcome, Solver, SolverConfig, SolverStats};
use std::time::{Duration, Instant};

/// Accounting for one `solve*` call on a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveRecord {
    /// The call's outcome.
    pub outcome: Outcome,
    /// Wall-clock time of the call.
    pub wall: Duration,
    /// Search statistics for *this call only* (delta of the solver's
    /// cumulative stats).
    pub stats: SolverStats,
    /// Clauses appended to the session since the previous solve call.
    pub clauses_added: usize,
}

/// A persistent incremental SAT solving session.
///
/// # Examples
///
/// ```
/// use ril_sat::{Lit, Outcome, Session};
///
/// let mut s = Session::new();
/// s.add_clause([Lit::new(0, false), Lit::new(1, false)]);
/// assert_eq!(s.solve(), Outcome::Sat);
/// // Appending clauses keeps the solver (and everything it learned) warm.
/// s.add_clause([Lit::new(0, true)]);
/// assert_eq!(s.solve(), Outcome::Sat);
/// assert!(s.model()[1]);
/// assert_eq!(s.solve_count(), 2);
/// ```
#[derive(Debug)]
pub struct Session {
    solver: Solver,
    records: Vec<SolveRecord>,
    clauses_since_solve: usize,
    stats_snapshot: SolverStats,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// An empty session with default solver configuration.
    pub fn new() -> Session {
        Session::with_config(SolverConfig::default())
    }

    /// An empty session with the given solver configuration.
    pub fn with_config(config: SolverConfig) -> Session {
        Session {
            solver: Solver::with_config(config),
            records: Vec::new(),
            clauses_since_solve: 0,
            stats_snapshot: SolverStats::default(),
        }
    }

    /// A session pre-loaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Session {
        Session::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// A configured session pre-loaded with the clauses of `cnf`.
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Session {
        let mut s = Session::with_config(config);
        s.append_cnf(cnf);
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.solver.reserve_vars(n);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Appends a clause to the live solver. Returns `false` if the formula
    /// became trivially unsatisfiable at the root.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.clauses_since_solve += 1;
        self.solver.add_clause(lits)
    }

    /// Appends every clause of `cnf` (growing the variable pool to match).
    /// Returns `false` if the formula became trivially unsatisfiable.
    pub fn append_cnf(&mut self, cnf: &Cnf) -> bool {
        self.reserve_vars(cnf.num_vars());
        let mut ok = true;
        for clause in cnf.clauses() {
            ok = self.add_clause(clause.iter().copied());
            if !ok {
                break;
            }
        }
        ok
    }

    /// Solves the current formula with no assumptions, recording a
    /// [`SolveRecord`].
    pub fn solve(&mut self) -> Outcome {
        self.solve_under(&[])
    }

    /// Solves under assumption literals (see the module docs for the
    /// assumption protocol), recording a [`SolveRecord`]. When a
    /// `ril-trace` context is installed on the current thread, the call is
    /// wrapped in a `solve` span carrying this call's [`SolverStats`]
    /// delta (decisions/conflicts/propagations/learned).
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> Outcome {
        let mut span = ril_trace::span("solve", ril_trace::Phase::Solve);
        let start = Instant::now();
        let outcome = self.solver.solve_with_assumptions(assumptions);
        let after = self.solver.stats();
        let wall = start.elapsed();
        let delta = after.since(&self.stats_snapshot);
        if span.is_active() {
            span.record_str(
                "outcome",
                match outcome {
                    Outcome::Sat => "sat",
                    Outcome::Unsat => "unsat",
                    Outcome::Unknown => "unknown",
                },
            );
            span.record_u64("decisions", delta.decisions);
            span.record_u64("conflicts", delta.conflicts);
            span.record_u64("propagations", delta.propagations);
            span.record_u64("learned", delta.learned);
            span.record_u64("clauses_added", self.clauses_since_solve as u64);
            span.record_u64("vars", self.solver.num_vars() as u64);
            ril_trace::counter("sat.solves", 1);
            ril_trace::counter("sat.conflicts", delta.conflicts);
            ril_trace::counter("sat.propagations", delta.propagations);
            ril_trace::timing("sat.solve_wall", wall);
        }
        self.records.push(SolveRecord {
            outcome,
            wall,
            stats: delta,
            clauses_added: self.clauses_since_solve,
        });
        self.stats_snapshot = after;
        self.clauses_since_solve = 0;
        outcome
    }

    /// The most recent satisfying model. Only meaningful directly after a
    /// solve call returned [`Outcome::Sat`].
    pub fn model(&self) -> &[bool] {
        self.solver.model()
    }

    /// Cumulative statistics over the session's lifetime.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Per-call records, oldest first.
    pub fn records(&self) -> &[SolveRecord] {
        &self.records
    }

    /// The record of the most recent solve call.
    pub fn last_record(&self) -> Option<&SolveRecord> {
        self.records.last()
    }

    /// Number of solve calls so far.
    pub fn solve_count(&self) -> usize {
        self.records.len()
    }

    /// Whether the clause database is still consistent at the root. Once
    /// `false`, every future solve returns [`Outcome::Unsat`].
    pub fn root_consistent(&self) -> bool {
        self.solver.root_consistent()
    }

    /// Wall-clock budget for subsequent solve calls (measured per call).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.solver.set_timeout(timeout);
    }

    /// Conflict budget for the *next* solve calls, counted from now.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(v, neg)
    }

    #[test]
    fn incremental_additions_flip_outcome() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(s.solve(), Outcome::Sat);
        s.add_clause([lit(0, true)]);
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(s.model()[1]);
        s.add_clause([lit(1, true)]);
        assert_eq!(s.solve(), Outcome::Unsat);
        assert!(!s.root_consistent());
        // Root inconsistency is permanent.
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn records_track_each_call() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        s.add_clause([lit(0, true), lit(1, false)]);
        s.solve();
        s.add_clause([lit(1, true), lit(2, false)]);
        s.solve();
        assert_eq!(s.solve_count(), 2);
        assert_eq!(s.records()[0].clauses_added, 2);
        assert_eq!(s.records()[1].clauses_added, 1);
        assert_eq!(s.records()[1].outcome, Outcome::Sat);
        // Deltas sum to the cumulative stats.
        let sum = s.records()[0].stats.plus(&s.records()[1].stats);
        assert_eq!(sum, s.stats());
    }

    #[test]
    fn assumptions_do_not_poison_the_session() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(s.solve_under(&[lit(0, true), lit(1, true)]), Outcome::Unsat);
        assert!(s.root_consistent());
        assert_eq!(s.solve(), Outcome::Sat);
    }

    #[test]
    fn activation_literal_protocol_retracts_clauses() {
        let mut s = Session::new();
        let x = s.new_var();
        let act = s.new_var();
        // Guarded unit clause: x ∨ ¬act.
        s.add_clause([x.positive(), act.negative()]);
        // A hard clause contradicting x.
        s.add_clause([x.negative()]);
        // With the guard asserted the formula is UNSAT…
        assert_eq!(s.solve_under(&[act.positive()]), Outcome::Unsat);
        // …but the session survives and the clause is retracted without it.
        assert!(s.root_consistent());
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(!s.model()[x.index()]);
    }

    #[test]
    fn append_cnf_matches_from_scratch() {
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(3);
        cnf.add_clause([v[0].positive(), v[1].positive()]);
        cnf.add_clause([v[1].negative(), v[2].positive()]);
        cnf.add_clause([v[2].negative()]);
        let mut scratch = Solver::from_cnf(&cnf);
        let mut session = Session::from_cnf(&cnf);
        assert_eq!(session.solve(), scratch.solve());
        assert!(cnf.is_satisfied_by(session.model()));
    }

    #[test]
    fn conflict_budget_is_per_call() {
        // A formula hard enough to need conflicts (pigeonhole 5→4).
        let holes = 4;
        let pigeons = holes + 1;
        let mut s = Session::new();
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        s.set_conflict_budget(Some(2));
        assert_eq!(s.solve(), Outcome::Unknown);
        // A fresh per-call budget counts from the current total, so the
        // second call gets real work done rather than dying instantly.
        s.set_conflict_budget(Some(1_000_000));
        assert_eq!(s.solve(), Outcome::Unsat);
    }
}
