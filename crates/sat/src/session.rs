//! Incremental solving sessions.
//!
//! A [`Session`] is a long-lived [`Solver`] plus per-call accounting: the
//! oracle-guided attack loop appends each DIP's I/O constraint to a *live*
//! solver — keeping learned clauses, VSIDS activities and watch lists warm
//! across iterations — instead of re-reading a growing CNF from scratch
//! every iteration. Each `solve*` call is recorded as a [`SolveRecord`]
//! (outcome, wall time, and the [`SolverStats`] delta for just that call),
//! which is what the bench tables surface as per-DIP solver statistics.
//!
//! ## Assumption-literal protocol
//!
//! Clauses added to a session are permanent. Retractable constraints are
//! expressed through *assumption literals* passed to
//! [`Session::solve_under`]: the solver decides them first and reports
//! UNSAT-under-assumptions without poisoning the clause database. To make
//! a whole clause retractable, guard it with a fresh activation variable
//! `a` (`clause ∨ ¬a`) and assume `a` while the clause should hold — the
//! pattern [`crate::equiv::check_equivalence_in`] uses to share one
//! session across independent miters.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use crate::portfolio::{Portfolio, PortfolioStats};
use crate::solver::{Budget, Outcome, Solver, SolverConfig, SolverStats};
use std::time::{Duration, Instant};

/// Accounting for one `solve*` call on a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveRecord {
    /// The call's outcome.
    pub outcome: Outcome,
    /// Wall-clock time of the call.
    pub wall: Duration,
    /// Search statistics for *this call only* (delta of the solver's
    /// cumulative stats).
    pub stats: SolverStats,
    /// Clauses appended to the session since the previous solve call.
    pub clauses_added: usize,
}

/// A persistent incremental SAT solving session.
///
/// # Examples
///
/// ```
/// use ril_sat::{Lit, Outcome, Session};
///
/// let mut s = Session::new();
/// s.add_clause([Lit::new(0, false), Lit::new(1, false)]);
/// assert_eq!(s.solve(), Outcome::Sat);
/// // Appending clauses keeps the solver (and everything it learned) warm.
/// s.add_clause([Lit::new(0, true)]);
/// assert_eq!(s.solve(), Outcome::Sat);
/// assert!(s.model()[1]);
/// assert_eq!(s.solve_count(), 2);
/// ```
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    records: Vec<SolveRecord>,
    clauses_since_solve: usize,
    stats_snapshot: SolverStats,
}

/// The solving backend: one CDCL instance, or a portfolio of diversified
/// instances raced per call ([`SolverConfig::threads`] > 1).
#[derive(Debug)]
enum Engine {
    // Boxed to keep the enum (and Session) small; Portfolio is a Vec of
    // workers, Solver is a large inline struct.
    Single(Box<Solver>),
    Portfolio(Portfolio),
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// An empty session with default solver configuration.
    pub fn new() -> Session {
        Session::with_config(SolverConfig::default())
    }

    /// An empty session with the given solver configuration. When
    /// `config.threads` > 1 the session solves through a [`Portfolio`]
    /// of diversified workers instead of a single [`Solver`]; answers
    /// are unchanged (worker 0 runs `config` verbatim), only wall-clock
    /// behaviour differs.
    pub fn with_config(config: SolverConfig) -> Session {
        let engine = if config.threads > 1 {
            Engine::Portfolio(Portfolio::new(&config))
        } else {
            Engine::Single(Box::new(Solver::with_config(config)))
        };
        Session {
            engine,
            records: Vec::new(),
            clauses_since_solve: 0,
            stats_snapshot: SolverStats::default(),
        }
    }

    /// A session pre-loaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Session {
        Session::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// A configured session pre-loaded with the clauses of `cnf`.
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Session {
        let mut s = Session::with_config(config);
        s.append_cnf(cnf);
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        match &mut self.engine {
            Engine::Single(s) => s.new_var(),
            Engine::Portfolio(p) => p.new_var(),
        }
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        match &mut self.engine {
            Engine::Single(s) => s.reserve_vars(n),
            Engine::Portfolio(p) => p.reserve_vars(n),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        match &self.engine {
            Engine::Single(s) => s.num_vars(),
            Engine::Portfolio(p) => p.num_vars(),
        }
    }

    /// Appends a clause to the live solver (every worker, for a
    /// portfolio). Returns `false` if the formula became trivially
    /// unsatisfiable at the root.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.clauses_since_solve += 1;
        match &mut self.engine {
            Engine::Single(s) => s.add_clause(lits),
            Engine::Portfolio(p) => p.add_clause(lits),
        }
    }

    /// Appends every clause of `cnf` (growing the variable pool to match).
    /// Returns `false` if the formula became trivially unsatisfiable.
    pub fn append_cnf(&mut self, cnf: &Cnf) -> bool {
        self.reserve_vars(cnf.num_vars());
        let mut ok = true;
        for clause in cnf.clauses() {
            ok = self.add_clause(clause.iter().copied());
            if !ok {
                break;
            }
        }
        ok
    }

    /// Solves the current formula with no assumptions, recording a
    /// [`SolveRecord`].
    pub fn solve(&mut self) -> Outcome {
        self.solve_under(&[])
    }

    /// Solves under assumption literals (see the module docs for the
    /// assumption protocol), recording a [`SolveRecord`]. When a
    /// `ril-trace` context is installed on the current thread, the call is
    /// wrapped in a `solve` span carrying this call's [`SolverStats`]
    /// delta (decisions/conflicts/propagations/learned).
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> Outcome {
        let mut span = ril_trace::span("solve", ril_trace::Phase::Solve);
        let start = Instant::now();
        let outcome = match &mut self.engine {
            Engine::Single(s) => s.solve_with_assumptions(assumptions),
            Engine::Portfolio(p) => {
                // Hand the portfolio this span as the parent so every
                // worker's `solve_worker` span nests under it.
                let trace = match (ril_trace::current(), span.is_active()) {
                    (Some(tracer), true) => Some((tracer, span.id())),
                    _ => None,
                };
                p.solve_traced(assumptions, trace)
            }
        };
        let after = self.raw_stats();
        let wall = start.elapsed();
        let delta = after.since(&self.stats_snapshot);
        if span.is_active() {
            span.record_str(
                "outcome",
                match outcome {
                    Outcome::Sat => "sat",
                    Outcome::Unsat => "unsat",
                    Outcome::Unknown => "unknown",
                },
            );
            span.record_u64("decisions", delta.decisions);
            span.record_u64("conflicts", delta.conflicts);
            span.record_u64("propagations", delta.propagations);
            span.record_u64("learned", delta.learned);
            span.record_u64("clauses_added", self.clauses_since_solve as u64);
            span.record_u64("vars", self.num_vars() as u64);
            if let Engine::Portfolio(p) = &self.engine {
                span.record_u64("workers", p.workers() as u64);
                match p.last_winner() {
                    Some(w) => span.record_u64("winner", w as u64),
                    None => span.record_str("winner", "none"),
                }
            }
            ril_trace::counter("sat.solves", 1);
            ril_trace::counter("sat.conflicts", delta.conflicts);
            ril_trace::counter("sat.propagations", delta.propagations);
            ril_trace::timing("sat.solve_wall", wall);
        }
        self.records.push(SolveRecord {
            outcome,
            wall,
            stats: delta,
            clauses_added: self.clauses_since_solve,
        });
        self.stats_snapshot = after;
        self.clauses_since_solve = 0;
        outcome
    }

    fn raw_stats(&self) -> SolverStats {
        match &self.engine {
            Engine::Single(s) => s.stats(),
            Engine::Portfolio(p) => p.stats(),
        }
    }

    /// The most recent satisfying model. Only meaningful directly after a
    /// solve call returned [`Outcome::Sat`].
    pub fn model(&self) -> &[bool] {
        match &self.engine {
            Engine::Single(s) => s.model(),
            Engine::Portfolio(p) => p.model(),
        }
    }

    /// Cumulative statistics over the session's lifetime (summed over
    /// workers for a portfolio session).
    pub fn stats(&self) -> SolverStats {
        self.raw_stats()
    }

    /// Portfolio accounting (races, wins per worker, shared clauses), or
    /// `None` for a single-threaded session.
    pub fn portfolio_stats(&self) -> Option<PortfolioStats> {
        match &self.engine {
            Engine::Single(_) => None,
            Engine::Portfolio(p) => Some(p.portfolio_stats()),
        }
    }

    /// Per-call records, oldest first.
    pub fn records(&self) -> &[SolveRecord] {
        &self.records
    }

    /// The record of the most recent solve call.
    pub fn last_record(&self) -> Option<&SolveRecord> {
        self.records.last()
    }

    /// Number of solve calls so far.
    pub fn solve_count(&self) -> usize {
        self.records.len()
    }

    /// Whether the clause database is still consistent at the root. Once
    /// `false`, every future solve returns [`Outcome::Unsat`].
    pub fn root_consistent(&self) -> bool {
        match &self.engine {
            Engine::Single(s) => s.root_consistent(),
            Engine::Portfolio(p) => p.root_consistent(),
        }
    }

    /// Applies `budget` to subsequent solve calls, replacing any earlier
    /// budget (conflict limits count from now; wall-clock limits are
    /// measured per call). [`Budget::unlimited`] removes both limits.
    pub fn set_budget(&mut self, budget: Budget) {
        match &mut self.engine {
            Engine::Single(s) => s.set_budget(budget),
            Engine::Portfolio(p) => p.set_budget(budget),
        }
    }

    /// Solves under `assumptions` within `budget`, recording a
    /// [`SolveRecord`].
    pub fn solve_within(&mut self, assumptions: &[Lit], budget: Budget) -> Outcome {
        self.set_budget(budget);
        self.solve_under(assumptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(v, neg)
    }

    #[test]
    fn incremental_additions_flip_outcome() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(s.solve(), Outcome::Sat);
        s.add_clause([lit(0, true)]);
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(s.model()[1]);
        s.add_clause([lit(1, true)]);
        assert_eq!(s.solve(), Outcome::Unsat);
        assert!(!s.root_consistent());
        // Root inconsistency is permanent.
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn records_track_each_call() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        s.add_clause([lit(0, true), lit(1, false)]);
        s.solve();
        s.add_clause([lit(1, true), lit(2, false)]);
        s.solve();
        assert_eq!(s.solve_count(), 2);
        assert_eq!(s.records()[0].clauses_added, 2);
        assert_eq!(s.records()[1].clauses_added, 1);
        assert_eq!(s.records()[1].outcome, Outcome::Sat);
        // Deltas sum to the cumulative stats.
        let sum = s.records()[0].stats.plus(&s.records()[1].stats);
        assert_eq!(sum, s.stats());
    }

    #[test]
    fn assumptions_do_not_poison_the_session() {
        let mut s = Session::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(s.solve_under(&[lit(0, true), lit(1, true)]), Outcome::Unsat);
        assert!(s.root_consistent());
        assert_eq!(s.solve(), Outcome::Sat);
    }

    #[test]
    fn activation_literal_protocol_retracts_clauses() {
        let mut s = Session::new();
        let x = s.new_var();
        let act = s.new_var();
        // Guarded unit clause: x ∨ ¬act.
        s.add_clause([x.positive(), act.negative()]);
        // A hard clause contradicting x.
        s.add_clause([x.negative()]);
        // With the guard asserted the formula is UNSAT…
        assert_eq!(s.solve_under(&[act.positive()]), Outcome::Unsat);
        // …but the session survives and the clause is retracted without it.
        assert!(s.root_consistent());
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(!s.model()[x.index()]);
    }

    #[test]
    fn append_cnf_matches_from_scratch() {
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(3);
        cnf.add_clause([v[0].positive(), v[1].positive()]);
        cnf.add_clause([v[1].negative(), v[2].positive()]);
        cnf.add_clause([v[2].negative()]);
        let mut scratch = Solver::from_cnf(&cnf);
        let mut session = Session::from_cnf(&cnf);
        assert_eq!(session.solve(), scratch.solve());
        assert!(cnf.is_satisfied_by(session.model()));
    }

    fn pigeonhole_into(s: &mut Session, holes: usize) {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_is_per_call() {
        // A formula hard enough to need conflicts (pigeonhole 5→4).
        let mut s = Session::new();
        pigeonhole_into(&mut s, 4);
        s.set_budget(Budget::conflicts(2).unwrap());
        assert_eq!(s.solve(), Outcome::Unknown);
        // A fresh per-call budget counts from the current total, so the
        // second call gets real work done rather than dying instantly.
        s.set_budget(Budget::conflicts(1_000_000).unwrap());
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn portfolio_session_matches_single_thread() {
        let cfg = SolverConfig::default().with_threads(3).unwrap();
        let mut single = Session::new();
        let mut multi = Session::with_config(cfg);
        assert!(multi.portfolio_stats().is_some());
        assert!(single.portfolio_stats().is_none());
        for s in [&mut single, &mut multi] {
            pigeonhole_into(s, 4);
        }
        assert_eq!(multi.solve(), single.solve());
        assert_eq!(multi.solve_count(), 1);
        let delta = multi.records()[0].stats;
        assert!(delta.decisions > 0);
        let pstats = multi.portfolio_stats().unwrap();
        assert_eq!(pstats.races, 1);
        assert_eq!(pstats.wins.iter().sum::<u64>(), 1);
    }

    #[test]
    fn portfolio_session_records_stay_consistent() {
        let cfg = SolverConfig::default().with_threads(2).unwrap();
        let mut s = Session::with_config(cfg);
        s.add_clause([lit(0, false), lit(1, false)]);
        s.solve();
        s.add_clause([lit(0, true)]);
        s.solve();
        assert!(s.model()[1]);
        // Per-call deltas still sum to the cumulative (summed) stats.
        let sum = s.records()[0].stats.plus(&s.records()[1].stats);
        assert_eq!(sum, s.stats());
    }
}
