//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! A MiniSat-style architecture: two-watched-literal propagation, first-UIP
//! conflict analysis with non-chronological backjumping, VSIDS decision
//! ordering with phase saving, Luby-sequence restarts and LBD/activity-based
//! learnt-clause database reduction — the same algorithm family as the
//! CaDiCaL solver the paper uses (Section IV, \[18\]). Feature toggles in
//! [`SolverConfig`] support the solver-ablation bench.

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit, Var};
use crate::portfolio::ExchangeHandle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NO_REASON: u32 = u32::MAX;

/// Upper bound on portfolio workers (and therefore on
/// [`SolverConfig::threads`]); keeps per-worker counter names static.
pub const MAX_SOLVER_THREADS: usize = 16;

/// Result of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A satisfying assignment was found (read it with [`Solver::model`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource budget (time or conflicts) expired first. This is how the
    /// paper's tables report `∞`.
    Unknown,
}

/// Tunable solver behaviour. The toggles exist for the ablation study; the
/// defaults are the full-strength configuration. The builder-style
/// `with_*` setters validate their arguments at construction time (a
/// malformed decay or thread count is a caller bug, not something to
/// discover mid-solve).
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Multiplicative VSIDS activity decay (applied per conflict).
    pub vsids_decay: f64,
    /// Enable VSIDS ordering; when false, decisions pick the lowest-index
    /// unassigned variable (DPLL-style static order).
    pub vsids: bool,
    /// Enable Luby restarts.
    pub restarts: bool,
    /// Base Luby restart interval in conflicts (the sequence is scaled by
    /// this); a portfolio diversification lever.
    pub restart_interval: u64,
    /// Enable phase saving.
    pub phase_saving: bool,
    /// Polarity decided for a variable that has no saved phase yet (and,
    /// with phase saving off, for every decision). The historical default
    /// is `false`; flipping it is a portfolio diversification lever.
    pub default_phase: bool,
    /// Enable learnt-clause minimization.
    pub clause_minimization: bool,
    /// Enable learnt-database reduction.
    pub reduce_db: bool,
    /// Abort with [`Outcome::Unknown`] after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Abort with [`Outcome::Unknown`] after this wall-clock budget.
    pub timeout: Option<Duration>,
    /// Number of diversified portfolio workers a [`crate::Session`] built
    /// from this config races per solve call (1 = plain single-thread
    /// solver; a bare [`Solver`] ignores this field).
    pub threads: usize,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            vsids_decay: 0.95,
            vsids: true,
            restarts: true,
            restart_interval: 100,
            phase_saving: true,
            default_phase: false,
            clause_minimization: true,
            reduce_db: true,
            max_conflicts: None,
            timeout: None,
            threads: 1,
        }
    }
}

impl SolverConfig {
    /// A deliberately weakened configuration resembling older DPLL-era
    /// solvers (static order, no restarts/phase saving/minimization) —
    /// the "lingeling-class vs CaDiCaL-class" ablation baseline.
    pub fn weakened() -> SolverConfig {
        SolverConfig {
            vsids: false,
            restarts: false,
            phase_saving: false,
            clause_minimization: false,
            reduce_db: false,
            ..SolverConfig::default()
        }
    }

    /// Sets the VSIDS decay factor; must lie strictly between 0 and 1.
    pub fn with_decay(mut self, vsids_decay: f64) -> Result<SolverConfig, SolverConfigError> {
        if !(vsids_decay > 0.0 && vsids_decay < 1.0) {
            return Err(SolverConfigError {
                field: "vsids_decay",
                value: format!("{vsids_decay}"),
                reason: "must lie strictly between 0 and 1",
            });
        }
        self.vsids_decay = vsids_decay;
        Ok(self)
    }

    /// Sets the base Luby restart interval (in conflicts); must be ≥ 1.
    pub fn with_restart_interval(
        mut self,
        interval: u64,
    ) -> Result<SolverConfig, SolverConfigError> {
        if interval == 0 {
            return Err(SolverConfigError {
                field: "restart_interval",
                value: "0".to_string(),
                reason: "must be at least 1 conflict",
            });
        }
        self.restart_interval = interval;
        Ok(self)
    }

    /// Sets the portfolio width; must lie in `1..=MAX_SOLVER_THREADS`.
    pub fn with_threads(mut self, threads: usize) -> Result<SolverConfig, SolverConfigError> {
        if threads == 0 || threads > MAX_SOLVER_THREADS {
            return Err(SolverConfigError {
                field: "threads",
                value: format!("{threads}"),
                reason: "must lie in 1..=MAX_SOLVER_THREADS",
            });
        }
        self.threads = threads;
        Ok(self)
    }

    /// Sets the polarity used for unseen variables (infallible).
    pub fn with_default_phase(mut self, phase: bool) -> SolverConfig {
        self.default_phase = phase;
        self
    }

    /// Applies a [`Budget`]'s limits to the config (the budget was already
    /// validated at its own construction, so this is infallible). The
    /// conflict limit is absolute here — prefer [`Solver::set_budget`] for
    /// the per-call form.
    pub fn with_budget(mut self, budget: Budget) -> SolverConfig {
        self.max_conflicts = budget.max_conflicts();
        self.timeout = budget.timeout();
        self
    }
}

/// A rejected [`SolverConfig`] builder argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfigError {
    /// The offending field.
    pub field: &'static str,
    /// The rejected value, rendered.
    pub value: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for SolverConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid SolverConfig.{}={}: {}",
            self.field, self.value, self.reason
        )
    }
}

impl std::error::Error for SolverConfigError {}

/// A validated resource budget for solve calls: optional conflict and
/// wall-clock limits. Zero limits are rejected at construction (a zero
/// budget is always a caller bug — it would silently turn every solve
/// into [`Outcome::Unknown`]).
///
/// # Examples
///
/// ```
/// use ril_sat::Budget;
/// use std::time::Duration;
///
/// let b = Budget::wall(Duration::from_secs(5)).unwrap().and_conflicts(10_000).unwrap();
/// assert_eq!(b.max_conflicts(), Some(10_000));
/// assert!(Budget::conflicts(0).is_err());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    conflicts: Option<u64>,
    wall: Option<Duration>,
}

/// A rejected [`Budget`] limit (zero conflicts or zero duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetError {
    /// Which limit was rejected (`"conflicts"` or `"wall"`).
    pub limit: &'static str,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "zero {} budget rejected (use Budget::unlimited to remove a limit)",
            self.limit
        )
    }
}

impl std::error::Error for BudgetError {}

impl Budget {
    /// No limits: solves run to completion.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A conflict-count budget; `n` must be ≥ 1.
    pub fn conflicts(n: u64) -> Result<Budget, BudgetError> {
        Budget::unlimited().and_conflicts(n)
    }

    /// A wall-clock budget; `d` must be non-zero.
    pub fn wall(d: Duration) -> Result<Budget, BudgetError> {
        Budget::unlimited().and_wall(d)
    }

    /// Adds a conflict limit to an existing budget; `n` must be ≥ 1.
    pub fn and_conflicts(mut self, n: u64) -> Result<Budget, BudgetError> {
        if n == 0 {
            return Err(BudgetError { limit: "conflicts" });
        }
        self.conflicts = Some(n);
        Ok(self)
    }

    /// Adds a wall-clock limit to an existing budget; `d` must be non-zero.
    pub fn and_wall(mut self, d: Duration) -> Result<Budget, BudgetError> {
        if d.is_zero() {
            return Err(BudgetError { limit: "wall" });
        }
        self.wall = Some(d);
        Ok(self)
    }

    /// Adapts the `Option<Duration>` timeout shape the attack configs
    /// carry. `None` means unlimited; a zero duration (an already-spent
    /// budget) is clamped up to 1 ms, preserving its "no time left"
    /// meaning instead of silently becoming unlimited.
    pub fn from_timeout(timeout: Option<Duration>) -> Budget {
        Budget {
            conflicts: None,
            wall: timeout.map(|t| t.max(Duration::from_millis(1))),
        }
    }

    /// The conflict limit, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.conflicts
    }

    /// The wall-clock limit, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.wall
    }
}

/// Search statistics.
///
/// Statistics are cumulative over a solver's lifetime; use
/// [`SolverStats::since`] to express one solve call as a delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Decision count.
    pub decisions: u64,
    /// Conflict count (≈ DPLL backtracks; the quantity the paper's
    /// SAT-hardness argument is about).
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learned: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted: u64,
}

impl SolverStats {
    /// The per-field difference `self - earlier` (saturating): the work
    /// done between two cumulative snapshots.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learned: self.learned.saturating_sub(earlier.learned),
            deleted: self.deleted.saturating_sub(earlier.deleted),
        }
    }

    /// The per-field sum `self + other` (saturating): aggregate work of
    /// two solvers, e.g. a miter and its key finder.
    pub fn plus(&self, other: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_add(other.decisions),
            conflicts: self.conflicts.saturating_add(other.conflicts),
            propagations: self.propagations.saturating_add(other.propagations),
            restarts: self.restarts.saturating_add(other.restarts),
            learned: self.learned.saturating_add(other.learned),
            deleted: self.deleted.saturating_add(other.deleted),
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Indexed binary max-heap ordered by external activity scores.
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    pos: Vec<Option<u32>>,
}

impl VarHeap {
    fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, None);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).copied().flatten().is_some()
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v.index() + 1);
        self.pos[v.index()] = Some(self.heap.len() as u32);
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = Some(0);
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if let Some(i) = self.pos.get(v.index()).copied().flatten() {
            self.sift_up(i as usize, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = Some(i as u32);
        self.pos[self.heap[j].index()] = Some(j as u32);
    }
}

/// A CDCL SAT solver instance.
///
/// # Examples
///
/// ```
/// use ril_sat::{Cnf, Solver, Outcome};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([a.positive(), b.positive()]);
/// cnf.add_clause([a.negative()]);
/// let mut solver = Solver::from_cnf(&cnf);
/// assert_eq!(solver.solve(), Outcome::Sat);
/// assert_eq!(solver.model()[b.index()], true);
/// ```
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: VarHeap,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    start: Option<Instant>,
    learnt_limit: f64,
    /// Cooperative cancellation: when set and raised, the next budget
    /// check aborts the solve with [`Outcome::Unknown`]. This is how a
    /// portfolio stops losing workers.
    stop: Option<Arc<AtomicBool>>,
    /// Portfolio clause exchange: export short learnt clauses, import
    /// peers' at restart boundaries. `None` outside a portfolio race.
    exchange: Option<ExchangeHandle>,
    imported: u64,
    exported: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: VarHeap::default(),
            saved_phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            start: None,
            learnt_limit: 2000.0,
            stop: None,
            exchange: None,
            imported: 0,
            exported: 0,
        }
    }

    /// Creates a solver loaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        Solver::from_cnf_with_config(cnf, SolverConfig::default())
    }

    /// Creates a configured solver loaded with the clauses of `cnf`.
    pub fn from_cnf_with_config(cnf: &Cnf, config: SolverConfig) -> Solver {
        let mut s = Solver::with_config(config);
        s.reserve_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.saved_phase.push(self.config.default_phase);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.assigns.len());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the clause database is still consistent at the root level.
    /// Once `false` (an empty clause was derived), every future solve
    /// returns [`Outcome::Unsat`] regardless of assumptions.
    pub fn root_consistent(&self) -> bool {
        self.ok
    }

    /// Applies `budget` to subsequent solve calls, replacing any earlier
    /// budget entirely: the conflict limit counts *from now* (on top of
    /// the cumulative statistics) and the wall-clock limit is measured
    /// from the start of each call. [`Budget::unlimited`] removes both
    /// limits.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.max_conflicts = budget
            .max_conflicts()
            .map(|b| self.stats.conflicts.saturating_add(b));
        self.config.timeout = budget.timeout();
    }

    /// Solves under `assumptions` within `budget` (see
    /// [`Solver::set_budget`] for the budget semantics).
    pub fn solve_within(&mut self, assumptions: &[Lit], budget: Budget) -> Outcome {
        self.set_budget(budget);
        self.solve_with_assumptions(assumptions)
    }

    /// Installs (or clears) a cooperative stop flag: once the flag is
    /// raised by another thread, the solve aborts with
    /// [`Outcome::Unknown`] at the next budget check. The flag is how a
    /// [`crate::Portfolio`] race stops its losing workers; it is *not*
    /// cleared automatically between solve calls.
    pub fn set_stop_flag(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.stop = flag;
    }

    /// Attaches (or detaches) a portfolio clause-exchange endpoint: short
    /// learnt clauses are published to it, and peers' clauses are imported
    /// at restart boundaries.
    pub(crate) fn set_exchange(&mut self, exchange: Option<ExchangeHandle>) {
        self.exchange = exchange;
    }

    /// `(imported, exported)` shared-clause counts over this solver's
    /// lifetime (only nonzero when it has raced in a portfolio).
    pub fn shared_clause_counts(&self) -> (u64, u64) {
        (self.imported, self.exported)
    }

    fn stopped(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// Adds a clause. Tautologies are dropped, duplicate literals removed,
    /// and literals already false at the top level deleted. Returns `false`
    /// if the formula became trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0, "add_clause at root only");
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.reserve_vars(l.var().index() + 1);
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology / root-level simplification.
        let mut simplified = Vec::with_capacity(clause.len());
        for &l in &clause {
            if clause.binary_search(&!l).is_ok() {
                return true; // tautology: l and !l both present
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at root
                LBool::False => continue,
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        let idx = self.clauses.len() as u32;
        let w0 = Watcher {
            clause: idx,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: idx,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        idx
    }

    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.target()),
            LBool::False => LBool::from_bool(!l.target()),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.target());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Watchers are filed under the *negation* of the watched
            // literal, so `watches[p]` holds clauses whose watched literal
            // `!p` was just falsified.
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let ci = w.clause as usize;
                if self.clauses[ci].deleted {
                    continue; // drop watcher of deleted clause
                }
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                let w_new = Watcher {
                    clause: w.clause,
                    blocker: first,
                };
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = w_new;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        let nw = !self.clauses[ci].lits[1];
                        self.watches[nw.index()].push(w_new);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = w_new;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    ws.truncate(j);
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.clause);
                }
                self.enqueue(first, w.clause);
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, ci: usize) {
        self.clauses[ci].activity += self.cla_inc;
        if self.clauses[ci].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backjump level,
    /// LBD).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(0, false)]; // slot 0 = UIP
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();
        let mut to_clear: Vec<Var> = Vec::new();
        loop {
            debug_assert_ne!(confl, NO_REASON);
            let ci = confl as usize;
            if self.clauses[ci].learnt {
                self.bump_clause(ci);
            }
            let start = if p.is_none() { 0 } else { 1 };
            let len = self.clauses[ci].lits.len();
            for j in start..len {
                let q = self.clauses[ci].lits[j];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next trail literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()];
        }
        learnt[0] = !p.expect("UIP found");

        // Optional clause minimization (basic self-subsumption).
        if self.config.clause_minimization {
            let mut keep = vec![true; learnt.len()];
            for (i, &l) in learnt.iter().enumerate().skip(1) {
                let r = self.reason[l.var().index()];
                if r == NO_REASON {
                    continue;
                }
                let redundant = self.clauses[r as usize].lits.iter().all(|&q| {
                    q.var() == l.var()
                        || self.seen[q.var().index()]
                        || self.level[q.var().index()] == 0
                });
                if redundant {
                    keep[i] = false;
                }
            }
            let mut idx = 0;
            learnt.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
        }

        // LBD = distinct decision levels among learnt literals.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        // Clear seen flags (everything set during this analysis).
        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backjump level: highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt, lbd)
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if self.config.phase_saving {
                self.saved_phase[v.index()] = l.target();
            }
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = NO_REASON;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if self.config.vsids {
            while let Some(v) = self.heap.pop_max(&self.activity) {
                if self.value_var(v) == LBool::Undef {
                    return Some(v);
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(Var::new)
                .find(|&v| self.value_var(v) == LBool::Undef)
        }
    }

    fn reduce_db(&mut self) {
        let mut learnt_idx: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, c)| c.learnt && !c.deleted && c.lits.len() > 2 && !self.is_locked(*i))
            .map(|(i, _)| i)
            .collect();
        // Worst first: high LBD, then low activity.
        learnt_idx.sort_by(|&a, &b| {
            let ca = &self.clauses[a];
            let cb = &self.clauses[b];
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).expect("finite"))
        });
        let to_delete = learnt_idx.len() / 2;
        for &i in learnt_idx.iter().take(to_delete) {
            self.clauses[i].deleted = true;
            self.stats.deleted += 1;
        }
        // Deleted clauses' watchers are dropped lazily during propagation.
        self.learnt_limit *= 1.5;
    }

    fn is_locked(&self, ci: usize) -> bool {
        let first = self.clauses[ci].lits[0];
        self.value_lit(first) == LBool::True && self.reason[first.var().index()] == ci as u32
    }

    fn luby(mut x: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    fn budget_exhausted(&self) -> bool {
        if self.stopped() {
            return true;
        }
        if let Some(max_c) = self.config.max_conflicts {
            if self.stats.conflicts >= max_c {
                return true;
            }
        }
        if let Some(timeout) = self.config.timeout {
            if let Some(start) = self.start {
                // Cheap check: only probe the clock periodically.
                if self.stats.conflicts.is_multiple_of(256) && start.elapsed() >= timeout {
                    return true;
                }
            }
        }
        false
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> Outcome {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`Outcome::Sat`] the model (including assumptions) is available
    /// via [`Solver::model`]. Assumptions do not persist between calls.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> Outcome {
        if !self.ok {
            return Outcome::Unsat;
        }
        for l in assumptions {
            self.reserve_vars(l.var().index() + 1);
        }
        self.start = Some(Instant::now());
        self.backtrack_to(0);
        // Scale the learnt-clause budget to the instance (MiniSat keeps
        // roughly a third of the problem size; undersizing makes the solver
        // throw away everything it learns and thrash).
        let live_problem = self
            .clauses
            .iter()
            .filter(|c| !c.deleted && !c.learnt)
            .count();
        self.learnt_limit = self.learnt_limit.max(live_problem as f64 / 3.0).max(2000.0);
        // (Re)seed the decision heap.
        for i in 0..self.num_vars() {
            let v = Var::new(i);
            if self.value_var(v) == LBool::Undef && !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }

        let mut restart_count = 0u64;
        let mut conflicts_until_restart = Self::luby(restart_count) * self.config.restart_interval;
        let mut conflicts_this_restart = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Outcome::Unsat;
                }
                // Analyze and backjump normally; assumptions cancelled by a
                // deep backjump are re-decided on the way back up, and an
                // assumption found false at its decision point reports
                // UNSAT-under-assumptions (MiniSat semantics).
                let (learnt, bt, lbd) = self.analyze(confl);
                self.learn_and_jump(learnt, bt, lbd);
                self.var_inc /= self.config.vsids_decay;
                self.cla_inc /= 0.999;
                if self.budget_exhausted() {
                    self.backtrack_to(0);
                    return Outcome::Unknown;
                }
                if self.config.reduce_db {
                    let learnt_live = self.stats.learned - self.stats.deleted;
                    if learnt_live as f64 > self.learnt_limit {
                        self.reduce_db();
                    }
                }
            } else {
                if self.config.restarts && conflicts_this_restart >= conflicts_until_restart {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_this_restart = 0;
                    conflicts_until_restart =
                        Self::luby(restart_count) * self.config.restart_interval;
                    let keep = (assumptions.len() as u32).min(self.decision_level());
                    self.backtrack_to(keep);
                    // Restart boundary: fold in clauses shared by portfolio
                    // peers (requires the root level; cancelled assumption
                    // levels are simply re-decided below).
                    if self.exchange.is_some() {
                        self.import_shared();
                        if !self.ok {
                            return Outcome::Unsat;
                        }
                    }
                }
                if self.stopped() {
                    // Conflict-light instances never reach the per-conflict
                    // budget check; honour cancellation per decision too.
                    self.backtrack_to(0);
                    return Outcome::Unknown;
                }
                // Assumption decisions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied: open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.backtrack_to(0);
                            return Outcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Full assignment: record model.
                        self.model = self
                            .assigns
                            .iter()
                            .map(|a| a.to_bool().unwrap_or(false))
                            .collect();
                        self.backtrack_to(0);
                        return Outcome::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let phase = if self.config.phase_saving {
                            self.saved_phase[v.index()]
                        } else {
                            self.config.default_phase
                        };
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(v.lit(!phase), NO_REASON);
                    }
                }
            }
        }
    }

    fn learn_and_jump(&mut self, learnt: Vec<Lit>, bt: u32, lbd: u32) {
        self.backtrack_to(bt);
        if let Some(ex) = &self.exchange {
            // Share only high-quality clauses (short, low LBD): units and
            // binaries always qualify, long clauses never do.
            if ex.accepts(learnt.len(), lbd) {
                ex.publish(&learnt);
                self.exported += 1;
            }
        }
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(asserting, NO_REASON);
        } else {
            let ci = self.attach_clause(learnt, true, lbd);
            self.stats.learned += 1;
            self.enqueue(asserting, ci);
        }
    }

    /// Drains clauses published by portfolio peers into the database.
    /// Backtracks to the root first (clause addition requires it); any
    /// restart-kept assumption levels are re-decided by the solve loop.
    fn import_shared(&mut self) {
        let pending = match &mut self.exchange {
            Some(ex) => ex.take_pending(),
            None => return,
        };
        if pending.is_empty() {
            return;
        }
        self.backtrack_to(0);
        for lits in pending {
            self.imported += 1;
            // Imported clauses are implied by the shared formula, so adding
            // them as permanent clauses is sound; a derived empty clause
            // (`ok` drops) is a genuine UNSAT proof.
            if !self.add_clause(lits) {
                return;
            }
        }
    }

    /// The most recent satisfying model (`model()[v]` = value of variable
    /// index `v`). Only meaningful after [`Outcome::Sat`].
    pub fn model(&self) -> &[bool] {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(v, neg)
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false)]);
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(s.model()[0]);
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false)]);
        assert!(!s.add_clause([lit(0, true)]));
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), Outcome::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn xor_chain_sat_and_model_valid() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x2 ^ x0 = 0 — consistent.
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(3);
        let xor_true = |cnf: &mut Cnf, a: Var, b: Var| {
            cnf.add_clause([a.positive(), b.positive()]);
            cnf.add_clause([a.negative(), b.negative()]);
        };
        let xor_false = |cnf: &mut Cnf, a: Var, b: Var| {
            cnf.add_clause([a.positive(), b.negative()]);
            cnf.add_clause([a.negative(), b.positive()]);
        };
        xor_true(&mut cnf, v[0], v[1]);
        xor_true(&mut cnf, v[1], v[2]);
        xor_false(&mut cnf, v[2], v[0]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(cnf.is_satisfied_by(s.model()));
    }

    fn pigeonhole(holes: usize) -> Cnf {
        // holes+1 pigeons into `holes` holes: UNSAT.
        let pigeons = holes + 1;
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for _ in 0..pigeons * holes {
            cnf.new_var();
        }
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    cnf.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=5 {
            let cnf = pigeonhole(holes);
            let mut s = Solver::from_cnf(&cnf);
            assert_eq!(s.solve(), Outcome::Unsat, "php({holes})");
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn pigeonhole_unsat_weakened_config() {
        let cnf = pigeonhole(4);
        let mut s = Solver::from_cnf_with_config(&cnf, SolverConfig::weakened());
        assert_eq!(s.solve(), Outcome::Unsat);
    }

    #[test]
    fn exactly_one_hole_per_pigeon_sat() {
        // holes pigeons into holes holes: SAT (a perfect matching exists).
        let holes = 4;
        let mut cnf2 = Cnf::new();
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for _ in 0..holes * holes {
            cnf2.new_var();
        }
        for p in 0..holes {
            cnf2.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in p1 + 1..holes {
                    cnf2.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf2);
        assert_eq!(s.solve(), Outcome::Sat);
        assert!(cnf2.is_satisfied_by(s.model()));
    }

    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars();
        assert!(n <= 20);
        (0u64..(1 << n)).any(|m| {
            let model: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            cnf.is_satisfied_by(&model)
        })
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..60 {
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(2..(n * 5));
            let mut cnf = Cnf::new();
            cnf.new_vars(n);
            for _ in 0..m {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    lits.push(Lit::new(rng.gen_range(0..n), rng.gen()));
                }
                cnf.add_clause(lits);
            }
            let expect = brute_force_sat(&cnf);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve();
            match (expect, got) {
                (true, Outcome::Sat) => assert!(cnf.is_satisfied_by(s.model())),
                (false, Outcome::Unsat) => {}
                other => panic!("trial {trial}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn assumptions_work() {
        let mut s = Solver::new();
        // (a | b) & (!a | c)
        s.add_clause([lit(0, false), lit(1, false)]);
        s.add_clause([lit(0, true), lit(2, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(0, false)]), Outcome::Sat);
        assert!(s.model()[0] && s.model()[2]);
        // Conflicting assumptions.
        s.add_clause([lit(2, true)]); // force c = 0
        assert_eq!(s.solve_with_assumptions(&[lit(0, false)]), Outcome::Unsat);
        // Still SAT without that assumption.
        assert_eq!(s.solve_with_assumptions(&[lit(0, true)]), Outcome::Sat);
        assert!(s.model()[1]);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(s.solve_with_assumptions(&[lit(0, true)]), Outcome::Sat);
        assert_eq!(s.solve_with_assumptions(&[lit(0, false)]), Outcome::Sat);
        assert_eq!(s.solve(), Outcome::Sat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        let cnf = pigeonhole(7); // hard enough to exceed 10 conflicts
        let mut s = Solver::from_cnf_with_config(
            &cnf,
            SolverConfig {
                max_conflicts: Some(10),
                ..SolverConfig::default()
            },
        );
        assert_eq!(s.solve(), Outcome::Unknown);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn stats_are_recorded() {
        let cnf = pigeonhole(5);
        let mut s = Solver::from_cnf(&cnf);
        s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false), lit(0, false), lit(1, false)]);
        s.add_clause([lit(1, false), lit(1, true)]); // tautology dropped
        assert_eq!(s.solve(), Outcome::Sat);
    }

    #[test]
    fn many_solves_reusable() {
        let mut s = Solver::new();
        s.add_clause([lit(0, false), lit(1, false)]);
        for _ in 0..5 {
            assert_eq!(s.solve(), Outcome::Sat);
        }
        // Incremental clause addition after solving.
        s.add_clause([lit(0, true)]);
        s.add_clause([lit(1, true)]);
        assert_eq!(s.solve(), Outcome::Unsat);
    }
}
