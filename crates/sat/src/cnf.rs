//! CNF formulas and DIMACS I/O.

use crate::lit::{Lit, Var};
use std::error::Error;
use std::fmt;

/// A CNF formula: a variable pool plus a list of clauses.
///
/// # Examples
///
/// ```
/// use ril_sat::{Cnf, Lit};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([a.positive(), b.positive()]);
/// cnf.add_clause([a.negative()]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Ensures at least `n` variables exist, so fresh variables continue an
    /// external pool (e.g. a [`crate::Session`]'s) and clauses transfer
    /// verbatim.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Drops all clauses while keeping the variable pool, turning the
    /// formula into a reusable scratch buffer for incremental encoding.
    pub fn clear_clauses(&mut self) {
        self.clauses.clear();
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The clause-to-variable ratio — the SAT-hardness proxy the paper's
    /// Section III-A discusses (FullLock pushes it toward 3–6).
    pub fn clause_to_var_ratio(&self) -> f64 {
        if self.num_vars == 0 {
            return 0.0;
        }
        self.clauses.len() as f64 / self.num_vars as f64
    }

    /// Adds a clause. Grows the variable pool if the clause mentions
    /// variables beyond it.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            if l.var().index() >= self.num_vars {
                self.num_vars = l.var().index() + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Mutable access to the clause list (used by preprocessing passes).
    pub(crate) fn clauses_mut(&mut self) -> &mut Vec<Vec<Lit>> {
        &mut self.clauses
    }

    /// Checks a full assignment (`model[v]` = value of variable `v`).
    /// Returns `true` iff every clause is satisfied.
    ///
    /// # Panics
    ///
    /// Panics if `model.len() < self.num_vars()`.
    pub fn is_satisfied_by(&self, model: &[bool]) -> bool {
        assert!(model.len() >= self.num_vars, "model too short");
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| model[l.var().index()] == l.target()))
    }

    /// Serializes to DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for l in clause {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses DIMACS `cnf` text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed headers or tokens.
    pub fn from_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut cnf = Cnf::new();
        let mut declared_vars = 0usize;
        let mut header_seen = false;
        let mut current: Vec<Lit> = Vec::new();
        for (lineno0, line) in text.lines().enumerate() {
            let lineno = lineno0 + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(ParseDimacsError {
                        line: lineno,
                        msg: "expected `p cnf <vars> <clauses>`".into(),
                    });
                }
                declared_vars = parts[1].parse().map_err(|_| ParseDimacsError {
                    line: lineno,
                    msg: "bad variable count".into(),
                })?;
                header_seen = true;
                continue;
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().map_err(|_| ParseDimacsError {
                    line: lineno,
                    msg: format!("bad literal `{tok}`"),
                })?;
                if v == 0 {
                    cnf.add_clause(std::mem::take(&mut current));
                } else {
                    current.push(Lit::from_dimacs(v));
                }
            }
        }
        if !current.is_empty() {
            cnf.add_clause(current);
        }
        if !header_seen {
            return Err(ParseDimacsError {
                line: 0,
                msg: "missing `p cnf` header".into(),
            });
        }
        if declared_vars > cnf.num_vars {
            cnf.num_vars = declared_vars;
        }
        Ok(cnf)
    }
}

/// Error parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number (0 if global).
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseDimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_check() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.positive()]);
        assert!(cnf.is_satisfied_by(&[false, true]));
        assert!(cnf.is_satisfied_by(&[true, true]));
        assert!(!cnf.is_satisfied_by(&[true, false]));
    }

    #[test]
    fn clause_grows_var_pool() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Lit::new(9, false)]);
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn dimacs_round_trip() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(3);
        cnf.add_clause([vars[0].positive(), vars[1].negative()]);
        cnf.add_clause([vars[2].positive()]);
        cnf.add_clause([]); // empty clause survives
        let text = cnf.to_dimacs();
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn dimacs_parses_comments_and_multiline() {
        let text = "c hello\np cnf 3 2\n1 -2 0 3\n0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[1], vec![Lit::new(2, false)]);
    }

    #[test]
    fn dimacs_errors() {
        assert!(Cnf::from_dimacs("1 2 0\n").is_err()); // no header
        assert!(Cnf::from_dimacs("p cnf x y\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 2 1\n1 foo 0\n").is_err());
    }

    #[test]
    fn ratio_and_counts() {
        let mut cnf = Cnf::new();
        let v = cnf.new_vars(2);
        cnf.add_clause([v[0].positive(), v[1].positive()]);
        cnf.add_clause([v[0].negative()]);
        cnf.add_clause([v[1].negative()]);
        assert_eq!(cnf.num_literals(), 4);
        assert!((cnf.clause_to_var_ratio() - 1.5).abs() < 1e-12);
    }
}
