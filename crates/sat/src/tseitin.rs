//! Tseitin encoding of gate-level netlists into CNF.
//!
//! This is the bridge the SAT attack uses: every net gets a CNF variable and
//! every gate a small clause group asserting output ↔ function(inputs).
//! [`encode_netlist_into`] supports *pinning* chosen nets to existing
//! variables, which is how the attack builds two-copy miters that share data
//! inputs while keeping distinct key variables.

use crate::cnf::Cnf;
use crate::lit::{Lit, Var};
use ril_netlist::{GateKind, NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from circuit encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TseitinError {
    /// The netlist contains a DFF; convert with
    /// [`Netlist::to_combinational`] first.
    Sequential,
    /// A non-input net has no driver.
    Undriven(String),
}

impl fmt::Display for TseitinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TseitinError::Sequential => {
                write!(f, "netlist is sequential; convert to combinational first")
            }
            TseitinError::Undriven(n) => write!(f, "net `{n}` is undriven"),
        }
    }
}

impl Error for TseitinError {}

/// Result of encoding a netlist: the per-net variable map.
#[derive(Debug, Clone)]
pub struct CircuitVars {
    vars: Vec<Var>,
}

impl CircuitVars {
    /// The CNF variable carrying the value of `net`.
    pub fn var(&self, net: NetId) -> Var {
        self.vars[net.index()]
    }

    /// The positive literal of `net`'s variable.
    pub fn lit(&self, net: NetId) -> Lit {
        self.var(net).positive()
    }
}

/// Encodes `nl` into `cnf`. Nets listed in `pinned` reuse the given
/// variables; all other nets get fresh ones. Returns the complete net→var
/// map.
///
/// # Errors
///
/// Returns [`TseitinError::Sequential`] if the netlist contains DFFs and
/// [`TseitinError::Undriven`] if a used net has no driver and is not a
/// primary input.
pub fn encode_netlist_into(
    nl: &Netlist,
    cnf: &mut Cnf,
    pinned: &HashMap<NetId, Var>,
) -> Result<CircuitVars, TseitinError> {
    let mut vars = Vec::with_capacity(nl.net_count());
    for (id, _) in nl.nets() {
        match pinned.get(&id) {
            Some(&v) => vars.push(v),
            None => vars.push(cnf.new_var()),
        }
    }
    for (_, gate) in nl.gates() {
        let out = vars[gate.output().index()].positive();
        let ins: Vec<Lit> = gate
            .inputs()
            .iter()
            .map(|n| vars[n.index()].positive())
            .collect();
        encode_gate(cnf, gate.kind(), out, &ins)?;
    }
    // Sanity: every net consumed by a gate or output must be driven or PI.
    for (_, gate) in nl.gates() {
        for &inp in gate.inputs() {
            if nl.net(inp).driver().is_none() && !nl.is_input(inp) {
                return Err(TseitinError::Undriven(nl.net(inp).name().to_string()));
            }
        }
    }
    Ok(CircuitVars { vars })
}

/// Encodes only the gates accepted by `include`, allocating variables
/// lazily: a net gets a variable only if it is pinned or touched by an
/// included gate. Returns the sparse net→var map.
///
/// This is the workhorse of structure-sharing attack encodings: a second
/// circuit copy pins every key-independent net to the first copy's
/// variables and encodes only the key-dependent cones.
///
/// # Errors
///
/// Returns [`TseitinError::Sequential`] if an included gate is a DFF.
pub fn encode_selected(
    nl: &Netlist,
    cnf: &mut Cnf,
    pinned: &HashMap<NetId, Var>,
    mut include: impl FnMut(ril_netlist::GateId) -> bool,
) -> Result<HashMap<NetId, Var>, TseitinError> {
    let mut map: HashMap<NetId, Var> = pinned.clone();
    let var_of = |cnf: &mut Cnf, map: &mut HashMap<NetId, Var>, net: NetId| {
        *map.entry(net).or_insert_with(|| cnf.new_var())
    };
    for (gid, gate) in nl.gates() {
        if !include(gid) {
            continue;
        }
        let out = var_of(cnf, &mut map, gate.output()).positive();
        let ins: Vec<Lit> = gate
            .inputs()
            .iter()
            .map(|&n| var_of(cnf, &mut map, n).positive())
            .collect();
        encode_gate(cnf, gate.kind(), out, &ins)?;
    }
    Ok(map)
}

/// Encodes a whole netlist into a fresh CNF. Returns the formula and the
/// net→var map.
///
/// # Errors
///
/// See [`encode_netlist_into`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ril_netlist::bench::c17();
/// let (cnf, vars) = ril_sat::encode_netlist(&nl)?;
/// assert!(cnf.num_clauses() > 0);
/// let g22 = nl.net_id("G22").expect("net exists");
/// let _out_var = vars.var(g22);
/// # Ok(())
/// # }
/// ```
pub fn encode_netlist(nl: &Netlist) -> Result<(Cnf, CircuitVars), TseitinError> {
    let mut cnf = Cnf::new();
    let vars = encode_netlist_into(nl, &mut cnf, &HashMap::new())?;
    Ok((cnf, vars))
}

/// Emits the clause group for one gate: `out ↔ kind(ins)`.
fn encode_gate(cnf: &mut Cnf, kind: GateKind, out: Lit, ins: &[Lit]) -> Result<(), TseitinError> {
    match kind {
        GateKind::Buf => {
            cnf.add_clause([!out, ins[0]]);
            cnf.add_clause([out, !ins[0]]);
        }
        GateKind::Not => {
            cnf.add_clause([!out, !ins[0]]);
            cnf.add_clause([out, ins[0]]);
        }
        GateKind::And | GateKind::Nand => {
            let o = if kind == GateKind::And { out } else { !out };
            for &i in ins {
                cnf.add_clause([!o, i]);
            }
            let mut big: Vec<Lit> = ins.iter().map(|&i| !i).collect();
            big.push(o);
            cnf.add_clause(big);
        }
        GateKind::Or | GateKind::Nor => {
            let o = if kind == GateKind::Or { out } else { !out };
            for &i in ins {
                cnf.add_clause([o, !i]);
            }
            let mut big: Vec<Lit> = ins.to_vec();
            big.push(!o);
            cnf.add_clause(big);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain pairwise with auxiliary variables.
            let mut acc = ins[0];
            for &i in &ins[1..] {
                let t = cnf.new_var().positive();
                encode_xor2(cnf, t, acc, i);
                acc = t;
            }
            let o = if kind == GateKind::Xor { out } else { !out };
            cnf.add_clause([!o, acc]);
            cnf.add_clause([o, !acc]);
        }
        GateKind::Mux => {
            let (s, a, b) = (ins[0], ins[1], ins[2]);
            cnf.add_clause([s, !a, out]);
            cnf.add_clause([s, a, !out]);
            cnf.add_clause([!s, !b, out]);
            cnf.add_clause([!s, b, !out]);
            // Redundant but propagation-strengthening clauses.
            cnf.add_clause([!a, !b, out]);
            cnf.add_clause([a, b, !out]);
        }
        GateKind::Const0 => {
            cnf.add_clause([!out]);
        }
        GateKind::Const1 => {
            cnf.add_clause([out]);
        }
        GateKind::Lut2(tt) => {
            let (a, b) = (ins[0], ins[1]);
            for idx in 0..4u8 {
                let av = idx & 1 == 1;
                let bv = idx & 2 == 2;
                let o = if (tt >> idx) & 1 == 1 { out } else { !out };
                // (a = av ∧ b = bv) → o
                let la = if av { !a } else { a };
                let lb = if bv { !b } else { b };
                cnf.add_clause([la, lb, o]);
            }
        }
        GateKind::Dff => return Err(TseitinError::Sequential),
    }
    Ok(())
}

fn encode_xor2(cnf: &mut Cnf, o: Lit, a: Lit, b: Lit) {
    cnf.add_clause([!o, a, b]);
    cnf.add_clause([!o, !a, !b]);
    cnf.add_clause([o, !a, b]);
    cnf.add_clause([o, a, !b]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Outcome, Solver};
    use ril_netlist::{generators, Netlist, Simulator};

    /// Checks CNF/model equivalence: for every input pattern, constrain
    /// inputs in the CNF and verify the implied outputs match simulation.
    fn check_equiv_exhaustive(nl: &Netlist) {
        let (cnf, vars) = encode_netlist(nl).unwrap();
        let mut sim = Simulator::new(nl).unwrap();
        let n = nl.inputs().len();
        assert!(n <= 12, "too many inputs for exhaustive check");
        for pattern in 0u64..(1 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let expect = sim.eval_bits(nl, &bits);
            let mut solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = nl
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&net, &b)| vars.var(net).lit(!b))
                .collect();
            assert_eq!(solver.solve_with_assumptions(&assumptions), Outcome::Sat);
            let model = solver.model();
            for (&out_net, &e) in nl.outputs().iter().zip(&expect) {
                assert_eq!(
                    model[vars.var(out_net).index()],
                    e,
                    "pattern {pattern:b}, output {}",
                    nl.net(out_net).name()
                );
            }
        }
    }

    #[test]
    fn c17_cnf_matches_simulation() {
        check_equiv_exhaustive(&ril_netlist::bench::c17());
    }

    #[test]
    fn every_gate_kind_encodes_correctly() {
        use ril_netlist::GateKind::*;
        // One gate per netlist, exhaustively checked.
        for (kind, arity) in [
            (Buf, 1usize),
            (Not, 1),
            (And, 3),
            (Or, 3),
            (Nand, 2),
            (Nor, 2),
            (Xor, 3),
            (Xnor, 2),
            (Mux, 3),
        ] {
            let mut nl = Netlist::new("g");
            let ins: Vec<_> = (0..arity)
                .map(|i| nl.add_input(format!("i{i}")).unwrap())
                .collect();
            let y = nl.add_net("y").unwrap();
            nl.add_gate(kind, &ins, y).unwrap();
            nl.mark_output(y);
            check_equiv_exhaustive(&nl);
        }
        for tt in 0u8..16 {
            let mut nl = Netlist::new("lut");
            let a = nl.add_input("a").unwrap();
            let b = nl.add_input("b").unwrap();
            let y = nl.add_net("y").unwrap();
            nl.add_gate(Lut2(tt), &[a, b], y).unwrap();
            nl.mark_output(y);
            check_equiv_exhaustive(&nl);
        }
    }

    #[test]
    fn constants_encode_correctly() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a").unwrap();
        let z = nl.add_net("z").unwrap();
        let o = nl.add_net("o").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::Const0, &[], z).unwrap();
        nl.add_gate(GateKind::Const1, &[], o).unwrap();
        nl.add_gate(GateKind::Mux, &[a, z, o], y).unwrap();
        nl.mark_output(y);
        check_equiv_exhaustive(&nl); // y == a
    }

    #[test]
    fn pinning_shares_variables() {
        let nl = ril_netlist::bench::c17();
        let mut cnf = Cnf::new();
        let shared: HashMap<NetId, Var> = nl.inputs().iter().map(|&n| (n, cnf.new_var())).collect();
        let v1 = encode_netlist_into(&nl, &mut cnf, &shared).unwrap();
        let v2 = encode_netlist_into(&nl, &mut cnf, &shared).unwrap();
        for &inp in nl.inputs() {
            assert_eq!(v1.var(inp), v2.var(inp));
        }
        // Internal nets are distinct.
        let g10 = nl.net_id("G10").unwrap();
        assert_ne!(v1.var(g10), v2.var(g10));
        // Two copies of the same circuit with shared inputs: outputs must
        // agree — the miter XOR must be UNSAT.
        let out = nl.outputs()[0];
        let miter = cnf.new_var().positive();
        encode_xor2(&mut cnf, miter, v1.lit(out), v2.lit(out));
        cnf.add_clause([miter]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), Outcome::Unsat);
    }

    #[test]
    fn sequential_rejected() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a").unwrap();
        let q = nl.add_net("q").unwrap();
        nl.add_gate(GateKind::Dff, &[a], q).unwrap();
        nl.mark_output(q);
        assert_eq!(encode_netlist(&nl).unwrap_err(), TseitinError::Sequential);
    }

    #[test]
    fn larger_circuit_spot_check() {
        // 4-bit adder: constrain inputs via assumptions, check sums.
        let nl = generators::adder(4);
        let (cnf, vars) = encode_netlist(&nl).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (a, b) in [(3u64, 9u64), (15, 15), (0, 0), (7, 8)] {
            let bits: Vec<bool> = (0..8)
                .map(|i| {
                    if i < 4 {
                        (a >> i) & 1 == 1
                    } else {
                        (b >> (i - 4)) & 1 == 1
                    }
                })
                .collect();
            let expect = sim.eval_bits(&nl, &bits);
            let mut solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = nl
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&net, &bit)| vars.var(net).lit(!bit))
                .collect();
            assert_eq!(solver.solve_with_assumptions(&assumptions), Outcome::Sat);
            for (&o, &e) in nl.outputs().iter().zip(&expect) {
                assert_eq!(solver.model()[vars.var(o).index()], e);
            }
        }
    }
}
