//! Power-trace synthesis for LUT read operations.
//!
//! The attacker watches the chip's power rail while the circuit evaluates
//! known inputs, hoping the per-read energy leaks the secret LUT contents.
//! The MRAM LUT's complementary-cell divider draws (almost) the same
//! current for a stored 0 and a stored 1 (paper Fig. 6), while a standard
//! SRAM LUT discharges its bitline only when reading a 1 — a classic
//! Hamming leak. Traces here use the *measured* energies of the
//! `ril-mram` circuit models plus Gaussian measurement noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_mram::lut::{MramLut2, SramLut2};

/// Which LUT implementation the victim uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LutTechnology {
    /// The paper's complementary-cell MRAM LUT.
    Mram,
    /// A conventional 6T-SRAM LUT.
    Sram,
}

/// A side-channel acquisition: known inputs and the measured per-read
/// energy samples (fJ).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    /// The victim technology.
    pub technology: LutTechnology,
    /// Applied `(a, b)` input pairs.
    pub inputs: Vec<(bool, bool)>,
    /// Measured energy per read (fJ), aligned with `inputs`.
    pub samples: Vec<f64>,
}

impl PowerTrace {
    /// Number of acquisitions.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Collects `n` noisy read-energy samples from a victim LUT programmed
/// with the secret truth table `tt`, under uniformly random known inputs.
/// `noise_sigma_fj` is the rail-measurement noise (1 σ, fJ).
pub fn collect_traces(
    technology: LutTechnology,
    tt: u8,
    n: usize,
    noise_sigma_fj: f64,
    seed: u64,
) -> PowerTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::with_capacity(n);
    let mut samples = Vec::with_capacity(n);
    match technology {
        LutTechnology::Mram => {
            let mut lut = MramLut2::with_defaults();
            lut.program(tt);
            for _ in 0..n {
                let (a, b) = (rng.gen(), rng.gen());
                let r = lut.read(a, b, false);
                inputs.push((a, b));
                samples.push(r.energy_fj + noise_sigma_fj * gauss(&mut rng));
            }
        }
        LutTechnology::Sram => {
            let mut lut = SramLut2::new();
            lut.program(tt);
            for _ in 0..n {
                let (a, b) = (rng.gen(), rng.gen());
                let (_, e) = lut.read(a, b);
                inputs.push((a, b));
                samples.push(e + noise_sigma_fj * gauss(&mut rng));
            }
        }
    }
    PowerTrace {
        technology,
        inputs,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_requested_length() {
        let t = collect_traces(LutTechnology::Mram, 0b0110, 100, 0.1, 1);
        assert_eq!(t.len(), 100);
        assert!(!t.is_empty());
        assert_eq!(t.inputs.len(), 100);
    }

    #[test]
    fn noiseless_sram_samples_are_bimodal() {
        let t = collect_traces(LutTechnology::Sram, 0b0110, 400, 0.0, 2);
        let mut distinct: Vec<u64> = t.samples.iter().map(|&x| x.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2, "SRAM XOR read: exactly 2 energy levels");
    }

    #[test]
    fn noiseless_mram_samples_nearly_flat() {
        let t = collect_traces(LutTechnology::Mram, 0b0110, 400, 0.0, 3);
        let max = t.samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.samples.iter().cloned().fold(f64::MAX, f64::min);
        let mid = (max + min) / 2.0;
        assert!((max - min) / mid < 0.01, "spread {}", (max - min) / mid);
    }

    #[test]
    fn determinism_by_seed() {
        let a = collect_traces(LutTechnology::Sram, 0b1000, 50, 0.3, 7);
        let b = collect_traces(LutTechnology::Sram, 0b1000, 50, 0.3, 7);
        assert_eq!(a, b);
        let c = collect_traces(LutTechnology::Sram, 0b1000, 50, 0.3, 8);
        assert_ne!(a, c);
    }
}
