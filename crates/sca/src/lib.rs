//! # ril-sca — power side-channel substrate
//!
//! The non-invasive adversary the paper's MRAM LUT is designed to defeat:
//! power-trace synthesis from the circuit-level LUT models ([`trace`]),
//! difference-of-means DPA and Pearson CPA key-hypothesis attacks
//! ([`dpa`]), and SNR / TVLA leakage assessment ([`metrics`]).
//!
//! ## Quickstart
//!
//! ```
//! use ril_sca::{collect_traces, cpa_attack, LutTechnology};
//!
//! // An SRAM LUT leaks its truth table through read energies …
//! let trace = collect_traces(LutTechnology::Sram, 0b0110, 500, 0.4, 1);
//! assert_eq!(cpa_attack(&trace).best_tt, 0b0110);
//!
//! // … the MRAM LUT's symmetric footprint does not cooperate.
//! let trace = collect_traces(LutTechnology::Mram, 0b0110, 500, 0.4, 1);
//! let margin = cpa_attack(&trace).margin();
//! assert!(margin < 0.2);
//! ```

#![warn(missing_docs)]

pub mod dpa;
pub mod metrics;
pub mod trace;

pub use dpa::{cpa_attack, dpa_attack, key_recovery_rate, HypothesisResult};
pub use metrics::{assess, leakage_snr, welch_t, LeakageReport, TVLA_THRESHOLD};
pub use trace::{collect_traces, LutTechnology, PowerTrace};
