//! Leakage-assessment metrics: SNR and Welch's t-test (TVLA).

use crate::trace::{LutTechnology, PowerTrace};
use ril_mram::lut::{MramLut2, SramLut2};

/// Splits a trace's samples into (read-0, read-1) populations using the
/// *true* stored table (assessment is a white-box activity).
pub fn split_by_value(trace: &PowerTrace, tt: u8) -> (Vec<f64>, Vec<f64>) {
    let mut zeros = Vec::new();
    let mut ones = Vec::new();
    for (&(a, b), &p) in trace.inputs.iter().zip(&trace.samples) {
        let v = (tt >> ((a as u8) | ((b as u8) << 1))) & 1 == 1;
        if v {
            ones.push(p);
        } else {
            zeros.push(p);
        }
    }
    (zeros, ones)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn var(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Welch's t statistic between the read-0 and read-1 populations. TVLA
/// convention: |t| > 4.5 ⇒ exploitable first-order leakage.
pub fn welch_t(zeros: &[f64], ones: &[f64]) -> f64 {
    let (m0, m1) = (mean(zeros), mean(ones));
    let (v0, v1) = (var(zeros), var(ones));
    let denom = (v0 / zeros.len().max(1) as f64 + v1 / ones.len().max(1) as f64).sqrt();
    if denom < 1e-30 {
        return 0.0;
    }
    (m1 - m0) / denom
}

/// The TVLA leakage threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Signal-to-noise ratio of the value leak: variance of the per-value mean
/// energies over the measurement-noise variance.
pub fn leakage_snr(technology: LutTechnology, noise_sigma_fj: f64) -> f64 {
    let (e0, e1) = match technology {
        LutTechnology::Mram => {
            let mut lut = MramLut2::with_defaults();
            lut.program(0b0110);
            (
                lut.read(false, false, false).energy_fj,
                lut.read(true, false, false).energy_fj,
            )
        }
        LutTechnology::Sram => {
            let mut lut = SramLut2::new();
            lut.program(0b0110);
            (lut.read(false, false).1, lut.read(true, false).1)
        }
    };
    let signal_mean = (e0 + e1) / 2.0;
    let signal_var = ((e0 - signal_mean).powi(2) + (e1 - signal_mean).powi(2)) / 2.0;
    signal_var / (noise_sigma_fj * noise_sigma_fj).max(1e-30)
}

/// One-stop leakage assessment of a technology at a noise level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageReport {
    /// Welch t statistic between read-0/read-1 energy populations.
    pub t_statistic: f64,
    /// Whether |t| exceeds the TVLA threshold.
    pub leaks: bool,
    /// Signal-to-noise ratio.
    pub snr: f64,
}

/// Assesses a technology with `samples` traces at the given noise.
pub fn assess(
    technology: LutTechnology,
    samples: usize,
    noise_sigma_fj: f64,
    seed: u64,
) -> LeakageReport {
    let tt = 0b0110;
    let trace = crate::trace::collect_traces(technology, tt, samples, noise_sigma_fj, seed);
    let (zeros, ones) = split_by_value(&trace, tt);
    let t = welch_t(&zeros, &ones);
    LeakageReport {
        t_statistic: t,
        leaks: t.abs() > TVLA_THRESHOLD,
        snr: leakage_snr(technology, noise_sigma_fj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_leaks_mram_does_not() {
        let sram = assess(LutTechnology::Sram, 1000, 0.5, 3);
        let mram = assess(LutTechnology::Mram, 1000, 0.5, 3);
        assert!(sram.leaks, "SRAM t = {}", sram.t_statistic);
        assert!(!mram.leaks, "MRAM t = {}", mram.t_statistic);
        assert!(sram.snr > 100.0 * mram.snr);
    }

    #[test]
    fn welch_t_basics() {
        let zeros = vec![1.0, 1.1, 0.9, 1.0];
        let ones = vec![2.0, 2.1, 1.9, 2.0];
        assert!(welch_t(&zeros, &ones) > TVLA_THRESHOLD);
        let same = vec![1.0, 1.1, 0.9, 1.0];
        assert!(welch_t(&same, &same).abs() < 1e-9);
    }

    #[test]
    fn split_respects_truth_table() {
        let trace = crate::trace::collect_traces(LutTechnology::Sram, 0b1000, 200, 0.0, 5);
        let (zeros, ones) = split_by_value(&trace, 0b1000);
        assert_eq!(zeros.len() + ones.len(), 200);
        // AND: roughly 1/4 of random inputs read 1.
        assert!(ones.len() < zeros.len());
    }

    #[test]
    fn snr_decreases_with_noise() {
        let low = leakage_snr(LutTechnology::Sram, 0.1);
        let high = leakage_snr(LutTechnology::Sram, 1.0);
        assert!(low > high);
    }
}
