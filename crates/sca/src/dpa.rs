//! Differential and correlation power analysis on LUT read traces.
//!
//! The attacker hypothesizes each of the 16 possible truth tables, predicts
//! the read value for every known input pair, and checks which hypothesis
//! best explains the measured energies — difference-of-means (DPA) or
//! Pearson correlation (CPA). A data-dependent read (SRAM) surrenders its
//! contents within a few hundred traces; the MRAM LUT's near-symmetric
//! footprint keeps every hypothesis equally (im)plausible.

use crate::trace::{LutTechnology, PowerTrace};

/// Outcome of a key-hypothesis attack.
#[derive(Debug, Clone, PartialEq)]
pub struct HypothesisResult {
    /// The winning truth table.
    pub best_tt: u8,
    /// Per-hypothesis score (index = truth table).
    pub scores: [f64; 16],
}

impl HypothesisResult {
    /// Margin of the winner over the runner-up (higher = more confident).
    pub fn margin(&self) -> f64 {
        let mut sorted = self.scores;
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        sorted[0] - sorted[1]
    }
}

fn predict(tt: u8, a: bool, b: bool) -> bool {
    (tt >> ((a as u8) | ((b as u8) << 1))) & 1 == 1
}

/// Difference-of-means DPA: score(tt) = mean(power | predict=1) −
/// mean(power | predict=0). The correct hypothesis (for a read-1-heavy
/// leak) maximizes the signed difference; its complement minimizes it.
pub fn dpa_attack(trace: &PowerTrace) -> HypothesisResult {
    let mut scores = [0.0f64; 16];
    for (tt, score) in scores.iter_mut().enumerate() {
        let mut s1 = 0.0;
        let mut n1 = 0usize;
        let mut s0 = 0.0;
        let mut n0 = 0usize;
        for (&(a, b), &p) in trace.inputs.iter().zip(&trace.samples) {
            if predict(tt as u8, a, b) {
                s1 += p;
                n1 += 1;
            } else {
                s0 += p;
                n0 += 1;
            }
        }
        *score = if n1 == 0 || n0 == 0 {
            0.0
        } else {
            s1 / n1 as f64 - s0 / n0 as f64
        };
    }
    let best_tt = (0..16)
        .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite"))
        .expect("non-empty") as u8;
    HypothesisResult { best_tt, scores }
}

/// Pearson-correlation CPA: score(tt) = corr(predicted value, power).
pub fn cpa_attack(trace: &PowerTrace) -> HypothesisResult {
    let n = trace.len() as f64;
    let mean_p: f64 = trace.samples.iter().sum::<f64>() / n.max(1.0);
    let var_p: f64 = trace
        .samples
        .iter()
        .map(|&p| (p - mean_p).powi(2))
        .sum::<f64>()
        / n.max(1.0);
    let mut scores = [0.0f64; 16];
    for (tt, score) in scores.iter_mut().enumerate() {
        let preds: Vec<f64> = trace
            .inputs
            .iter()
            .map(|&(a, b)| predict(tt as u8, a, b) as u8 as f64)
            .collect();
        let mean_h = preds.iter().sum::<f64>() / n.max(1.0);
        let var_h = preds.iter().map(|&h| (h - mean_h).powi(2)).sum::<f64>() / n.max(1.0);
        if var_h < 1e-12 || var_p < 1e-30 {
            *score = 0.0;
            continue;
        }
        let cov = preds
            .iter()
            .zip(&trace.samples)
            .map(|(&h, &p)| (h - mean_h) * (p - mean_p))
            .sum::<f64>()
            / n;
        *score = cov / (var_h.sqrt() * var_p.sqrt());
    }
    let best_tt = (0..16)
        .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite"))
        .expect("non-empty") as u8;
    HypothesisResult { best_tt, scores }
}

/// Measures the end-to-end key-recovery success rate: `trials` independent
/// victims with random non-constant truth tables, `samples` traces each.
/// Returns the fraction of trials where CPA recovers the exact table.
pub fn key_recovery_rate(
    technology: LutTechnology,
    trials: usize,
    samples: usize,
    noise_sigma_fj: f64,
    seed: u64,
) -> f64 {
    let mut hits = 0usize;
    for t in 0..trials {
        // Cycle through the 14 non-constant tables deterministically.
        let tt = [
            0b0001u8, 0b0010, 0b0011, 0b0100, 0b0101, 0b0110, 0b0111, 0b1000, 0b1001, 0b1010,
            0b1011, 0b1100, 0b1101, 0b1110,
        ][t % 14];
        let trace = crate::trace::collect_traces(
            technology,
            tt,
            samples,
            noise_sigma_fj,
            seed.wrapping_add(t as u64),
        );
        if cpa_attack(&trace).best_tt == tt {
            hits += 1;
        }
    }
    hits as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::collect_traces;

    #[test]
    fn cpa_recovers_sram_contents() {
        for tt in [0b0110u8, 0b1000, 0b0001, 0b1101] {
            let trace = collect_traces(LutTechnology::Sram, tt, 500, 0.4, 42);
            let result = cpa_attack(&trace);
            assert_eq!(result.best_tt, tt, "tt={tt:04b}");
        }
    }

    #[test]
    fn dpa_recovers_sram_contents() {
        for tt in [0b0110u8, 0b1110] {
            let trace = collect_traces(LutTechnology::Sram, tt, 800, 0.4, 43);
            let result = dpa_attack(&trace);
            assert_eq!(result.best_tt, tt, "tt={tt:04b}");
        }
    }

    #[test]
    fn mram_defeats_cpa_at_realistic_noise() {
        // The ~0.2 % energy asymmetry hides under 0.5 fJ of rail noise.
        let rate = key_recovery_rate(LutTechnology::Mram, 28, 500, 0.5, 7);
        assert!(rate < 0.3, "MRAM recovery rate {rate} too high");
    }

    #[test]
    fn sram_falls_to_cpa_at_the_same_noise() {
        let rate = key_recovery_rate(LutTechnology::Sram, 28, 500, 0.5, 7);
        assert!(rate > 0.8, "SRAM recovery rate {rate} too low");
    }

    #[test]
    fn margin_reflects_confidence() {
        let sram = collect_traces(LutTechnology::Sram, 0b0110, 500, 0.2, 9);
        let mram = collect_traces(LutTechnology::Mram, 0b0110, 500, 0.2, 9);
        let ms = cpa_attack(&sram).margin();
        let mm = cpa_attack(&mram).margin();
        assert!(ms > mm, "sram margin {ms} vs mram {mm}");
    }

    #[test]
    fn constant_tables_score_zero() {
        let trace = collect_traces(LutTechnology::Sram, 0b0110, 100, 0.1, 11);
        let result = cpa_attack(&trace);
        assert_eq!(result.scores[0b0000], 0.0);
        assert_eq!(result.scores[0b1111], 0.0);
    }
}
