//! Behavioural STT-MTJ device model.
//!
//! A Magnetic Tunnel Junction is two ferromagnetic layers around a thin
//! oxide barrier; the relative magnetization angle sets its resistance:
//! Parallel (P, low resistance) or Anti-Parallel (AP, high resistance).
//! Spin-Transfer-Torque switching flips the free layer when a bidirectional
//! charge current exceeds the critical current for long enough.
//!
//! Device parameters are adopted from the technology-agnostic STT-MRAM
//! model of Kim et al. (CICC 2015) that the paper uses (\[20\]); see
//! DESIGN.md §2 for the HSPICE → behavioural-model substitution note.

use std::fmt;

/// Magnetization state of an MTJ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MtjState {
    /// Parallel: low resistance, logic convention `0` resistance state.
    #[default]
    Parallel,
    /// Anti-parallel: high resistance.
    AntiParallel,
}

impl MtjState {
    /// The opposite state.
    pub fn flipped(self) -> MtjState {
        match self {
            MtjState::Parallel => MtjState::AntiParallel,
            MtjState::AntiParallel => MtjState::Parallel,
        }
    }
}

impl fmt::Display for MtjState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtjState::Parallel => f.write_str("P"),
            MtjState::AntiParallel => f.write_str("AP"),
        }
    }
}

/// Physical/electrical MTJ parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MtjParams {
    /// Free-layer diameter in nm (circular junction).
    pub diameter_nm: f64,
    /// Resistance-area product in Ω·µm².
    pub ra_ohm_um2: f64,
    /// Tunnel magneto-resistance ratio (1.5 = 150 %).
    pub tmr: f64,
    /// Critical switching current in µA (AP→P magnitude; P→AP scaled by
    /// the usual ~1.3 asymmetry factor internally).
    pub critical_current_ua: f64,
    /// Minimum switching pulse width in ns at the critical current.
    pub switch_time_ns: f64,
}

impl Default for MtjParams {
    fn default() -> MtjParams {
        MtjParams {
            diameter_nm: 40.0,
            ra_ohm_um2: 4.0,
            tmr: 1.5,
            critical_current_ua: 5.0,
            switch_time_ns: 0.45,
        }
    }
}

impl MtjParams {
    /// Parameters of a Spin-Hall-Effect-assisted (SHE/SOT) device — the
    /// three-terminal alternative the paper's Section IV-E points to as a
    /// lower-write-energy successor to conventional STT cells: the write
    /// current flows through a low-resistance heavy-metal strap instead of
    /// the tunnel barrier, cutting the critical current and the switching
    /// time while read-path characteristics stay unchanged.
    pub fn she_assisted() -> MtjParams {
        MtjParams {
            critical_current_ua: 2.0,
            switch_time_ns: 0.2,
            ..MtjParams::default()
        }
    }

    /// Junction area in µm².
    pub fn area_um2(&self) -> f64 {
        let r_um = self.diameter_nm / 2000.0;
        std::f64::consts::PI * r_um * r_um
    }

    /// Parallel-state resistance in Ω.
    pub fn r_parallel(&self) -> f64 {
        self.ra_ohm_um2 / self.area_um2()
    }

    /// Anti-parallel-state resistance in Ω.
    pub fn r_antiparallel(&self) -> f64 {
        self.r_parallel() * (1.0 + self.tmr)
    }
}

/// An STT-MTJ instance: parameters plus current magnetization state.
///
/// # Examples
///
/// ```
/// use ril_mram::mtj::{Mtj, MtjParams, MtjState};
///
/// let mut mtj = Mtj::new(MtjParams::default());
/// assert_eq!(mtj.state(), MtjState::Parallel);
/// let r_p = mtj.resistance();
/// // A strong, long-enough pulse switches it.
/// assert!(mtj.write(MtjState::AntiParallel, 90.0, 1.0));
/// assert!(mtj.resistance() > r_p);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mtj {
    params: MtjParams,
    state: MtjState,
}

impl Mtj {
    /// Creates an MTJ in the parallel state.
    pub fn new(params: MtjParams) -> Mtj {
        Mtj {
            params,
            state: MtjState::Parallel,
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &MtjParams {
        &self.params
    }

    /// Current magnetization state.
    pub fn state(&self) -> MtjState {
        self.state
    }

    /// Forces the state (test/configuration helper; physical switching goes
    /// through [`Mtj::write`]).
    pub fn set_state(&mut self, state: MtjState) {
        self.state = state;
    }

    /// Present resistance in Ω.
    pub fn resistance(&self) -> f64 {
        match self.state {
            MtjState::Parallel => self.params.r_parallel(),
            MtjState::AntiParallel => self.params.r_antiparallel(),
        }
    }

    /// The critical current (µA) required to switch *into* `target`.
    /// P→AP switching needs ~1.3× the AP→P current (spin-torque
    /// asymmetry).
    pub fn critical_current_into(&self, target: MtjState) -> f64 {
        match target {
            MtjState::Parallel => self.params.critical_current_ua,
            MtjState::AntiParallel => self.params.critical_current_ua * 1.3,
        }
    }

    /// Attempts an STT write toward `target` with the given pulse
    /// (`current_ua` magnitude in µA, `duration_ns` in ns). Returns `true`
    /// if the device ends in `target`.
    ///
    /// The pulse succeeds when the current exceeds the critical current for
    /// `target` and the duration covers the (current-dependent) switching
    /// time `t_sw = t0 · Ic / (I − Ic) + t0` capped below by `t0`.
    pub fn write(&mut self, target: MtjState, current_ua: f64, duration_ns: f64) -> bool {
        if self.state == target {
            return true; // already there; redundant pulses are harmless
        }
        let ic = self.critical_current_into(target);
        if current_ua <= ic {
            return false;
        }
        let t0 = self.params.switch_time_ns;
        let overdrive = current_ua / ic - 1.0;
        let t_switch = t0 * (1.0 + 1.0 / overdrive).min(10.0);
        if duration_ns >= t_switch {
            self.state = target;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resistances_are_sane() {
        let p = MtjParams::default();
        let rp = p.r_parallel();
        let rap = p.r_antiparallel();
        assert!(rp > 1000.0 && rp < 10_000.0, "R_P = {rp}");
        assert!((rap / rp - (1.0 + p.tmr)).abs() < 1e-9);
    }

    #[test]
    fn state_tracks_resistance() {
        let mut mtj = Mtj::new(MtjParams::default());
        let rp = mtj.resistance();
        mtj.set_state(MtjState::AntiParallel);
        let rap = mtj.resistance();
        assert!(rap > rp);
        assert_eq!(mtj.state().flipped(), MtjState::Parallel);
    }

    #[test]
    fn weak_pulse_fails_to_switch() {
        let mut mtj = Mtj::new(MtjParams::default());
        assert!(!mtj.write(MtjState::AntiParallel, 4.0, 5.0));
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn short_pulse_fails_to_switch() {
        let mut mtj = Mtj::new(MtjParams::default());
        assert!(!mtj.write(MtjState::AntiParallel, 90.0, 0.05));
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn strong_long_pulse_switches_both_ways() {
        let mut mtj = Mtj::new(MtjParams::default());
        assert!(mtj.write(MtjState::AntiParallel, 120.0, 2.0));
        assert_eq!(mtj.state(), MtjState::AntiParallel);
        assert!(mtj.write(MtjState::Parallel, 120.0, 2.0));
        assert_eq!(mtj.state(), MtjState::Parallel);
    }

    #[test]
    fn p_to_ap_needs_more_current() {
        let mtj = Mtj::new(MtjParams::default());
        assert!(
            mtj.critical_current_into(MtjState::AntiParallel)
                > mtj.critical_current_into(MtjState::Parallel)
        );
    }

    #[test]
    fn redundant_write_succeeds_without_current() {
        let mut mtj = Mtj::new(MtjParams::default());
        assert!(mtj.write(MtjState::Parallel, 0.0, 0.0));
    }

    #[test]
    fn she_preset_switches_faster_at_lower_current() {
        let stt = MtjParams::default();
        let she = MtjParams::she_assisted();
        assert!(she.critical_current_ua < stt.critical_current_ua);
        assert!(she.switch_time_ns < stt.switch_time_ns);
        // Read path identical: same resistances.
        assert_eq!(she.r_parallel(), stt.r_parallel());
        // And a pulse too weak for STT switches the SHE device.
        let mut dev = Mtj::new(she);
        assert!(dev.write(MtjState::AntiParallel, 4.0, 2.0));
        assert_eq!(dev.state(), MtjState::AntiParallel);
    }

    #[test]
    fn display_states() {
        assert_eq!(MtjState::Parallel.to_string(), "P");
        assert_eq!(MtjState::AntiParallel.to_string(), "AP");
    }
}
