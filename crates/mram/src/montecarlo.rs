//! Monte-Carlo process-variation analysis — regenerates the paper's Fig. 6.
//!
//! Each MC instance draws per-device Gaussian perturbations with the
//! paper's Section IV-D spreads: 1 % on MTJ dimensions, 10 % on transistor
//! threshold voltage and 1 % on transistor dimensions. The instance's LUT
//! is programmed (AND by default), read at every minterm, and the read
//! currents, read powers and device resistances are collected into
//! distributions; write and read errors are counted.

use crate::cell::{CellCircuit, ComplementaryCell};
use crate::lut::MramLut2;
use crate::mtj::MtjParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Process-variation spreads (1 σ, relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// MTJ dimension σ (paper: 1 %).
    pub mtj_dimension: f64,
    /// Transistor threshold-voltage σ (paper: 10 %) — affects access/driver
    /// resistances.
    pub vth: f64,
    /// Transistor dimension σ (paper: 1 %).
    pub mos_dimension: f64,
}

impl Default for VariationModel {
    fn default() -> VariationModel {
        VariationModel {
            mtj_dimension: 0.01,
            vth: 0.10,
            mos_dimension: 0.01,
        }
    }
}

/// Summary of a sampled distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Raw samples.
    pub samples: Vec<f64>,
}

impl Distribution {
    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (population).
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        if self.samples.len() < 2 {
            return 0.0;
        }
        (self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.samples.len() as f64)
            .sqrt()
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Histogram over `bins` equal-width buckets spanning [min, max].
    pub fn histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        let (lo, hi) = (self.min(), self.max());
        let width = ((hi - lo) / bins as f64).max(1e-30);
        let mut counts = vec![0usize; bins];
        for &x in &self.samples {
            let b = (((x - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

/// Results of a Monte-Carlo campaign (paper Fig. 6 data).
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Instances simulated.
    pub instances: usize,
    /// Read currents when sensing logic 0 (µA).
    pub read0_current_ua: Distribution,
    /// Read currents when sensing logic 1 (µA).
    pub read1_current_ua: Distribution,
    /// Read powers when sensing logic 0 (µW).
    pub read0_power_uw: Distribution,
    /// Read powers when sensing logic 1 (µW).
    pub read1_power_uw: Distribution,
    /// Parallel-state resistances across all sampled MTJs (Ω).
    pub r_parallel: Distribution,
    /// Anti-parallel-state resistances across all sampled MTJs (Ω).
    pub r_antiparallel: Distribution,
    /// Write failures observed.
    pub write_errors: usize,
    /// Read failures observed (wrong value or insufficient margin).
    pub read_errors: usize,
    /// Total write operations.
    pub writes: usize,
    /// Total read operations.
    pub reads: usize,
}

impl MonteCarloReport {
    /// Write-error rate.
    pub fn write_error_rate(&self) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        self.write_errors as f64 / self.writes as f64
    }

    /// Read-error rate.
    pub fn read_error_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.read_errors as f64 / self.reads as f64
    }

    /// Relative difference of mean read-0 vs read-1 power — the P-SCA
    /// leakage figure (paper: "almost identical").
    pub fn power_symmetry_gap(&self) -> f64 {
        let p0 = self.read0_power_uw.mean();
        let p1 = self.read1_power_uw.mean();
        (p1 - p0).abs() / p0.max(1e-30)
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one process-varied MTJ parameter set.
pub fn varied_mtj<R: Rng>(nominal: &MtjParams, var: &VariationModel, rng: &mut R) -> MtjParams {
    MtjParams {
        diameter_nm: nominal.diameter_nm * (1.0 + var.mtj_dimension * gauss(rng)),
        // Oxide-thickness variation folds into the RA product.
        ra_ohm_um2: nominal.ra_ohm_um2 * (1.0 + var.mtj_dimension * gauss(rng)),
        tmr: nominal.tmr,
        critical_current_ua: nominal.critical_current_ua * (1.0 + var.mtj_dimension * gauss(rng)),
        switch_time_ns: nominal.switch_time_ns,
    }
}

/// Draws one process-varied peripheral-circuit operating point: Vth
/// variation shifts the access/driver resistances, W/L variation scales
/// them.
pub fn varied_circuit<R: Rng>(
    nominal: &CellCircuit,
    var: &VariationModel,
    rng: &mut R,
) -> CellCircuit {
    // ΔVth = 10 % σ translates to a drive-resistance shift of roughly
    // ΔVth / (Vgs − Vth) ≈ 0.25 × the relative Vth spread at our operating
    // point; dimension spread enters linearly.
    let vth_effect = 0.25 * var.vth * gauss(rng);
    let dim_effect = var.mos_dimension * gauss(rng);
    let scale = (1.0 + vth_effect + dim_effect).max(0.2);
    CellCircuit {
        r_access: nominal.r_access * scale,
        r_driver: nominal.r_driver * (1.0 + 0.25 * var.vth * gauss(rng)).max(0.2),
        ..nominal.clone()
    }
}

/// Builds one fully process-varied LUT instance.
pub fn varied_lut<R: Rng>(
    nominal_mtj: &MtjParams,
    nominal_circuit: &CellCircuit,
    var: &VariationModel,
    rng: &mut R,
) -> MramLut2 {
    let mut cell = || {
        ComplementaryCell::new(
            varied_mtj(nominal_mtj, var, rng),
            varied_mtj(nominal_mtj, var, rng),
            varied_circuit(nominal_circuit, var, rng),
        )
    };
    let cells = [cell(), cell(), cell(), cell()];
    let se = cell();
    MramLut2::with_cells(cells, se)
}

/// Runs the paper's Fig. 6 campaign: `instances` process-varied 2-input
/// LUTs programmed to `truth_table` (AND in the paper), each read at all
/// four minterms.
pub fn run_monte_carlo(instances: usize, truth_table: u8, seed: u64) -> MonteCarloReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let nominal_mtj = MtjParams::default();
    let nominal_circuit = CellCircuit::default();
    let var = VariationModel::default();

    let mut report = MonteCarloReport {
        instances,
        read0_current_ua: Distribution { samples: vec![] },
        read1_current_ua: Distribution { samples: vec![] },
        read0_power_uw: Distribution { samples: vec![] },
        read1_power_uw: Distribution { samples: vec![] },
        r_parallel: Distribution { samples: vec![] },
        r_antiparallel: Distribution { samples: vec![] },
        write_errors: 0,
        read_errors: 0,
        writes: 0,
        reads: 0,
    };

    for _ in 0..instances {
        let mut lut = varied_lut(&nominal_mtj, &nominal_circuit, &var, &mut rng);
        let ok = lut.program(truth_table);
        report.writes += 4;
        if !ok {
            report.write_errors += 1;
            continue;
        }
        for a in [false, true] {
            for b in [false, true] {
                let idx = (a as u8) | ((b as u8) << 1);
                let expect = (truth_table >> idx) & 1 == 1;
                let r = lut.read(a, b, false);
                report.reads += 1;
                if r.out != expect || !r.reliable {
                    report.read_errors += 1;
                }
                if expect {
                    report.read1_current_ua.samples.push(r.current_ua);
                    report.read1_power_uw.samples.push(r.power_uw);
                } else {
                    report.read0_current_ua.samples.push(r.current_ua);
                    report.read0_power_uw.samples.push(r.power_uw);
                }
            }
        }
        // Collect device resistances from all five cells.
        for cell in lut_cells(&lut) {
            let (p, ap) = cell;
            report.r_parallel.samples.push(p);
            report.r_antiparallel.samples.push(ap);
        }
    }
    report
}

/// Extracts the (R_P, R_AP) state-resistance pair of every MTJ in the LUT.
fn lut_cells(lut: &MramLut2) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for cell in lut.cells_for_analysis() {
        out.push((
            cell.main().params().r_parallel(),
            cell.main().params().r_antiparallel(),
        ));
        out.push((
            cell.complement().params().r_parallel(),
            cell.complement().params().r_antiparallel(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_instances_match_paper_error_rates() {
        // Paper: 100 error-free MC instances, < 0.01 % read/write errors.
        let report = run_monte_carlo(100, 0b1000, 7);
        assert_eq!(report.instances, 100);
        assert_eq!(report.write_errors, 0, "write errors under nominal PV");
        assert_eq!(report.read_errors, 0, "read errors under nominal PV");
        assert_eq!(report.reads, 400);
    }

    #[test]
    fn read_power_is_symmetric_across_values() {
        let report = run_monte_carlo(100, 0b1000, 11);
        // Fig. 6: read-0 and read-1 power almost identical.
        assert!(
            report.power_symmetry_gap() < 0.01,
            "gap {}",
            report.power_symmetry_gap()
        );
    }

    #[test]
    fn resistance_distributions_are_separated() {
        let report = run_monte_carlo(100, 0b1000, 13);
        // R_AP and R_P clusters must not overlap (wide read margin).
        assert!(report.r_antiparallel.min() > report.r_parallel.max());
        // Spread reflects the 1 % dimension sigma (few % of the mean).
        let rel = report.r_parallel.std_dev() / report.r_parallel.mean();
        assert!(rel > 0.001 && rel < 0.1, "relative spread {rel}");
    }

    #[test]
    fn distribution_statistics() {
        let d = Distribution {
            samples: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert!((d.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 4.0);
        let h = d.histogram(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1 + h[1].1, 4);
    }

    #[test]
    fn determinism_by_seed() {
        let a = run_monte_carlo(20, 0b0110, 5);
        let b = run_monte_carlo(20, 0b0110, 5);
        assert_eq!(a.read0_power_uw.samples, b.read0_power_uw.samples);
        let c = run_monte_carlo(20, 0b0110, 6);
        assert_ne!(a.read0_power_uw.samples, c.read0_power_uw.samples);
    }

    #[test]
    fn extreme_variation_produces_errors() {
        // Sanity: the error-detection machinery does fire under absurd PV.
        let mut rng = StdRng::seed_from_u64(3);
        let var = VariationModel {
            mtj_dimension: 0.6,
            vth: 2.0,
            mos_dimension: 0.6,
        };
        let nominal_mtj = MtjParams::default();
        let nominal_circuit = CellCircuit::default();
        let mut any_error = false;
        for _ in 0..50 {
            let mut lut = varied_lut(&nominal_mtj, &nominal_circuit, &var, &mut rng);
            let ok = lut.program(0b1000);
            if !ok {
                any_error = true;
                continue;
            }
            for a in [false, true] {
                for b in [false, true] {
                    let idx = (a as u8) | ((b as u8) << 1);
                    let expect = (0b1000 >> idx) & 1 == 1;
                    let r = lut.read(a, b, false);
                    if r.out != expect || !r.reliable {
                        any_error = true;
                    }
                }
            }
        }
        assert!(any_error, "600 % Vth sigma should break something");
    }
}
