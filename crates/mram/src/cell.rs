//! Complementary two-MTJ memory cell with voltage-divider sensing.
//!
//! Each RIL-Block LUT memory cell stores its bit in a *pair* of MTJs held in
//! opposite states (paper Section III-B): `MTJ_i` and `!MTJ_i`. The read
//! path stacks the two devices between `V+` and `V−`; the midpoint voltage
//! swings far above or below `V/2` depending on which device is AP, giving
//! a wide sense margin without a reference cell — and, because the series
//! resistance `R_P + R_AP` is the same for both stored values, a
//! data-independent read current (the P-SCA symmetry the paper exploits).

use crate::mtj::{Mtj, MtjParams, MtjState};

/// Electrical operating point of the cell's peripheral circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCircuit {
    /// Read supply across the divider (V).
    pub v_read: f64,
    /// Write driver supply (V).
    pub v_write: f64,
    /// Read pulse width (ns).
    pub t_read_ns: f64,
    /// Write pulse width (ns).
    pub t_write_ns: f64,
    /// Series resistance of the read-enable pass gates (Ω) on the `O` path.
    pub r_access: f64,
    /// Mobility mismatch of the complementary pull path: the `O` path is
    /// this factor times `r_access` when the cell reads logic 1 (the tiny
    /// 0-vs-1 asymmetry seen in Table IV).
    pub pull_asymmetry: f64,
    /// Write-driver series resistance (Ω).
    pub r_driver: f64,
    /// Midpoint sense threshold margin (V): a read is reliable only if the
    /// divider midpoint deviates from `V/2` by at least this much.
    pub sense_threshold: f64,
    /// Standby (non-volatile retention) power in nW.
    pub standby_nw: f64,
}

impl Default for CellCircuit {
    fn default() -> CellCircuit {
        CellCircuit {
            v_read: 0.8,
            v_write: 1.2,
            t_read_ns: 0.2300,
            t_write_ns: 0.94,
            r_access: 1000.0,
            pull_asymmetry: 0.976,
            r_driver: 73_000.0,
            sense_threshold: 0.05,
            standby_nw: 0.00738,
        }
    }
}

/// Result of one read operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSample {
    /// Sensed logic value.
    pub value: bool,
    /// Divider midpoint voltage (V).
    pub v_mid: f64,
    /// Read current through the divider (µA).
    pub current_ua: f64,
    /// Instantaneous read power (µW).
    pub power_uw: f64,
    /// Energy of the read pulse (fJ).
    pub energy_fj: f64,
    /// Whether the sense margin was wide enough for a reliable read.
    pub reliable: bool,
}

/// Result of one write operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteSample {
    /// Whether both MTJs reached their target states.
    pub success: bool,
    /// Write current (µA).
    pub current_ua: f64,
    /// Energy of the write pulse (fJ), both complementary devices.
    pub energy_fj: f64,
}

/// A complementary 2-MTJ memory cell.
///
/// # Examples
///
/// ```
/// use ril_mram::cell::ComplementaryCell;
///
/// let mut cell = ComplementaryCell::with_defaults();
/// let w = cell.write(true);
/// assert!(w.success);
/// let r = cell.read();
/// assert!(r.value && r.reliable);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComplementaryCell {
    main: Mtj,
    complement: Mtj,
    circuit: CellCircuit,
}

impl ComplementaryCell {
    /// Creates a cell storing logic 0 with the given device/circuit
    /// parameters. The two MTJs may carry distinct (process-varied)
    /// parameters.
    pub fn new(main_params: MtjParams, comp_params: MtjParams, circuit: CellCircuit) -> Self {
        let mut cell = ComplementaryCell {
            main: Mtj::new(main_params),
            complement: Mtj::new(comp_params),
            circuit,
        };
        // Initialize complementary: stored 0 ⇒ main = P, complement = AP.
        cell.main.set_state(MtjState::Parallel);
        cell.complement.set_state(MtjState::AntiParallel);
        cell
    }

    /// Creates a cell with default parameters.
    pub fn with_defaults() -> Self {
        ComplementaryCell::new(
            MtjParams::default(),
            MtjParams::default(),
            CellCircuit::default(),
        )
    }

    /// The circuit operating point.
    pub fn circuit(&self) -> &CellCircuit {
        &self.circuit
    }

    /// The main MTJ (for inspection).
    pub fn main(&self) -> &Mtj {
        &self.main
    }

    /// The complement MTJ (for inspection).
    pub fn complement(&self) -> &Mtj {
        &self.complement
    }

    /// The logically stored bit according to device states (`main` = AP
    /// means 1). If the devices are *not* complementary (after a failed
    /// write), the main device defines the bit.
    pub fn stored(&self) -> bool {
        self.main.state() == MtjState::AntiParallel
    }

    /// Whether the two devices hold opposite states (cell invariant).
    pub fn is_complementary(&self) -> bool {
        self.main.state() != self.complement.state()
    }

    /// Writes `value` into the cell: both MTJs receive anti-phase STT
    /// pulses driven from `BL`/`SL` (paper Fig. 4).
    pub fn write(&mut self, value: bool) -> WriteSample {
        let main_target = if value {
            MtjState::AntiParallel
        } else {
            MtjState::Parallel
        };
        // Drive current: supply over driver + device resistance (worst of
        // the two states during switching — use the mean).
        let r_main = (self.main.params().r_parallel() + self.main.params().r_antiparallel()) / 2.0;
        let r_comp = (self.complement.params().r_parallel()
            + self.complement.params().r_antiparallel())
            / 2.0;
        let i_main = self.circuit.v_write / (self.circuit.r_driver + r_main) * 1e6; // µA
        let i_comp = self.circuit.v_write / (self.circuit.r_driver + r_comp) * 1e6;
        let ok_main = self
            .main
            .write(main_target, i_main, self.circuit.t_write_ns);
        let ok_comp = self
            .complement
            .write(main_target.flipped(), i_comp, self.circuit.t_write_ns);
        // Energy: V·I·t for both pulses; AP-target pulses burn slightly more
        // (higher critical current sustained longer).
        // µW · ns = fJ, so V (V) × I (µA) × t (ns) is already femtojoules.
        let asym = if value { 1.014 } else { 1.0 };
        let energy_fj = self.circuit.v_write * (i_main + i_comp) * self.circuit.t_write_ns * asym;
        WriteSample {
            success: ok_main && ok_comp,
            current_ua: i_main.max(i_comp),
            energy_fj,
        }
    }

    /// Reads the cell through the complementary voltage divider.
    pub fn read(&self) -> ReadSample {
        let r_top = self.main.resistance();
        let r_bot = self.complement.resistance();
        let value_guess = self.stored();
        let r_pull = self.circuit.r_access
            * if value_guess {
                self.circuit.pull_asymmetry
            } else {
                1.0
            };
        let r_total = r_top + r_bot + r_pull;
        let current_a = self.circuit.v_read / r_total;
        // Midpoint between the two MTJs.
        let v_mid = self.circuit.v_read * (r_bot + r_pull / 2.0) / r_total;
        let margin = v_mid - self.circuit.v_read / 2.0;
        // main = AP (stored 1) ⇒ more resistance on top ⇒ midpoint low?
        // v_mid uses bottom share: stored 1 ⇒ r_top = R_AP ⇒ midpoint
        // pulled low ⇒ sense amp outputs 1 on the inverted rail. Map sign
        // to the stored convention:
        let value = margin < 0.0;
        let reliable = margin.abs() >= self.circuit.sense_threshold;
        let power_uw = self.circuit.v_read * current_a * 1e6;
        let energy_fj = power_uw * self.circuit.t_read_ns; // µW·ns = fJ
        ReadSample {
            value,
            v_mid,
            current_ua: current_a * 1e6,
            power_uw,
            energy_fj,
            reliable,
        }
    }

    /// Standby energy over `duration_ns` (aJ) — near zero thanks to
    /// non-volatility.
    pub fn standby_energy_aj(&self, duration_ns: f64) -> f64 {
        self.circuit.standby_nw * duration_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut cell = ComplementaryCell::with_defaults();
        for v in [true, false, true, true, false] {
            let w = cell.write(v);
            assert!(w.success, "write {v}");
            assert!(cell.is_complementary());
            let r = cell.read();
            assert_eq!(r.value, v);
            assert!(r.reliable);
        }
    }

    #[test]
    fn read_current_is_data_independent() {
        // The series R_P + R_AP is identical for 0 and 1 — the paper's
        // P-SCA symmetry. Only the tiny pull-path asymmetry remains.
        let mut cell = ComplementaryCell::with_defaults();
        cell.write(false);
        let r0 = cell.read();
        cell.write(true);
        let r1 = cell.read();
        let rel = (r0.current_ua - r1.current_ua).abs() / r0.current_ua;
        assert!(rel < 0.005, "relative current asymmetry {rel}");
    }

    #[test]
    fn read_energy_near_paper_values() {
        // Table IV: read ≈ 12.5 fJ per LUT read. One cell divider carries
        // that read; allow a loose band (the LUT adds the select tree).
        let mut cell = ComplementaryCell::with_defaults();
        cell.write(false);
        let r = cell.read();
        assert!(
            r.energy_fj > 5.0 && r.energy_fj < 25.0,
            "read {} fJ",
            r.energy_fj
        );
    }

    #[test]
    fn write_energy_exceeds_read_energy() {
        let mut cell = ComplementaryCell::with_defaults();
        let w = cell.write(true);
        let r = cell.read();
        assert!(w.energy_fj > r.energy_fj);
    }

    #[test]
    fn standby_energy_is_attojoule_scale() {
        let cell = ComplementaryCell::with_defaults();
        let aj = cell.standby_energy_aj(1.0);
        assert!(aj > 0.001 && aj < 1000.0, "standby {aj} aJ");
    }

    #[test]
    fn sense_margin_is_wide() {
        let mut cell = ComplementaryCell::with_defaults();
        cell.write(true);
        let r = cell.read();
        // With TMR = 150 % the midpoint swings far from V/2.
        assert!((r.v_mid - cell.circuit().v_read / 2.0).abs() > 0.1);
    }

    #[test]
    fn degraded_device_reports_unreliable() {
        // Nearly-equal resistances (TMR collapse) ⇒ unreliable read.
        let weak = MtjParams {
            tmr: 0.001,
            ..MtjParams::default()
        };
        let cell = ComplementaryCell::new(weak.clone(), weak, CellCircuit::default());
        let r = cell.read();
        assert!(!r.reliable);
    }
}
