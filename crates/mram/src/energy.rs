//! Energy accounting — regenerates the paper's Table IV.

use crate::lut::{MramLut2, SramLut2};

/// The Table IV quantities for one LUT technology: read/write energy split
/// by the logic value involved, plus standby energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyProfile {
    /// Read energy when the accessed bit is 0 (fJ).
    pub read0_fj: f64,
    /// Read energy when the accessed bit is 1 (fJ).
    pub read1_fj: f64,
    /// Write energy storing a 0 (fJ).
    pub write0_fj: f64,
    /// Write energy storing a 1 (fJ).
    pub write1_fj: f64,
    /// Standby energy over the reference 1 µs window (aJ).
    pub standby_aj: f64,
}

impl EnergyProfile {
    /// Mean read energy (fJ).
    pub fn read_avg_fj(&self) -> f64 {
        (self.read0_fj + self.read1_fj) / 2.0
    }

    /// Mean write energy (fJ).
    pub fn write_avg_fj(&self) -> f64 {
        (self.write0_fj + self.write1_fj) / 2.0
    }

    /// Relative read-energy asymmetry |E1 − E0| / mean — the power
    /// side-channel leakage proxy (near zero for the MRAM LUT).
    pub fn read_asymmetry(&self) -> f64 {
        (self.read1_fj - self.read0_fj).abs() / self.read_avg_fj()
    }
}

/// Measures the MRAM LUT energy profile by exercising a fresh device:
/// program patterns that store 0s and 1s, then read cells of both values.
pub fn measure_mram_profile() -> EnergyProfile {
    let mut lut = MramLut2::with_defaults();
    // Write all-ones then all-zeros; split the write log by value.
    lut.program(0b1111);
    let w1: Vec<f64> = lut.write_log().iter().map(|w| w.energy_fj).collect();
    let mut lut0 = MramLut2::with_defaults();
    // Cells start at 0; force a 1→0 transition so a real write happens.
    lut0.program(0b1111);
    let skip = lut0.write_log().len();
    lut0.program(0b0000);
    let w0: Vec<f64> = lut0.write_log()[skip..]
        .iter()
        .map(|w| w.energy_fj)
        .collect();

    let mut rlut = MramLut2::with_defaults();
    rlut.program(0b0110); // XOR: both values present
    let r0 = rlut.read(false, false, false);
    let r1 = rlut.read(true, false, false);
    debug_assert!(!r0.out && r1.out);
    EnergyProfile {
        read0_fj: r0.energy_fj,
        read1_fj: r1.energy_fj,
        write0_fj: mean(&w0),
        write1_fj: mean(&w1),
        standby_aj: rlut.standby_energy_aj(1000.0),
    }
}

/// Measures the SRAM-LUT baseline profile.
pub fn measure_sram_profile() -> EnergyProfile {
    let mut sram = SramLut2::new();
    let w = sram.program(0b0110) / 4.0;
    let (v0, e0) = sram.read(false, false);
    let (v1, e1) = sram.read(true, false);
    debug_assert!(!v0 && v1);
    EnergyProfile {
        read0_fj: e0,
        read1_fj: e1,
        write0_fj: w,
        write1_fj: w,
        standby_aj: sram.standby_energy_aj(1000.0),
    }
}

/// The values the paper reports in Table IV, for side-by-side printing.
pub const PAPER_TABLE_IV: EnergyProfile = EnergyProfile {
    read0_fj: 12.47,
    read1_fj: 12.50,
    write0_fj: 34.45,
    write1_fj: 34.94,
    standby_aj: 36.90,
};

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mram_profile_tracks_paper_table_iv() {
        let p = measure_mram_profile();
        let paper = PAPER_TABLE_IV;
        assert!((p.read0_fj - paper.read0_fj).abs() / paper.read0_fj < 0.05);
        assert!((p.read1_fj - paper.read1_fj).abs() / paper.read1_fj < 0.05);
        assert!((p.write0_fj - paper.write0_fj).abs() / paper.write0_fj < 0.08);
        assert!((p.write1_fj - paper.write1_fj).abs() / paper.write1_fj < 0.08);
        assert!((p.standby_aj - paper.standby_aj).abs() / paper.standby_aj < 0.05);
    }

    #[test]
    fn mram_read_asymmetry_is_near_zero() {
        let p = measure_mram_profile();
        assert!(
            p.read_asymmetry() < 0.01,
            "asymmetry {}",
            p.read_asymmetry()
        );
    }

    #[test]
    fn sram_leaks_more_and_is_asymmetric() {
        let m = measure_mram_profile();
        let s = measure_sram_profile();
        assert!(s.standby_aj > 50.0 * m.standby_aj);
        assert!(s.read_asymmetry() > 10.0 * m.read_asymmetry());
    }

    #[test]
    fn averages_are_between_extremes() {
        let p = PAPER_TABLE_IV;
        assert!(p.read_avg_fj() >= p.read0_fj && p.read_avg_fj() <= p.read1_fj);
        assert!((p.write_avg_fj() - 34.695).abs() < 1e-9);
    }
}
