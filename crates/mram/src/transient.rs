//! Transient waveform simulation — regenerates the paper's Fig. 5.
//!
//! An event-based engine: a schedule of LUT operations (write a function,
//! read all minterms, reprogram, update the SE cell) is executed against a
//! circuit-level [`MramLut2`], and every control/data signal is sampled on
//! a fixed time grid with RC-style exponential edges. The result is a
//! multi-signal [`WaveformTrace`] that can be printed as CSV or rendered as
//! ASCII art — the behavioural equivalent of the paper's HSPICE plots.

use crate::lut::{truth_table_to_keys, MramLut2};

/// A named analog-ish waveform sampled on a shared time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformTrace {
    /// Time stamps (ns).
    pub time_ns: Vec<f64>,
    /// Signal name → sample vector, in insertion order.
    pub signals: Vec<(String, Vec<f64>)>,
}

impl WaveformTrace {
    /// Looks up a signal by name.
    pub fn signal(&self, name: &str) -> Option<&[f64]> {
        self.signals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Serializes the trace as CSV (`time_ns` first column).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns");
        for (name, _) in &self.signals {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for (i, t) in self.time_ns.iter().enumerate() {
            out.push_str(&format!("{t:.3}"));
            for (_, samples) in &self.signals {
                out.push_str(&format!(",{:.4}", samples[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a compact ASCII view (one row per signal, `▁`/`█` digital
    /// levels) for terminal inspection.
    pub fn to_ascii(&self, columns: usize) -> String {
        let mut out = String::new();
        let n = self.time_ns.len();
        if n == 0 {
            return out;
        }
        let step = (n / columns.max(1)).max(1);
        for (name, samples) in &self.signals {
            let vmax = samples.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
            out.push_str(&format!("{name:>8} "));
            for i in (0..n).step_by(step) {
                let frac = samples[i] / vmax;
                out.push(match frac {
                    f if f > 0.75 => '█',
                    f if f > 0.5 => '▆',
                    f if f > 0.25 => '▃',
                    _ => '▁',
                });
            }
            out.push('\n');
        }
        out
    }
}

/// One step of the Fig. 5 schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LutOp {
    /// Program the LUT truth table (shifts 4 key bits through `BL`).
    Write(u8),
    /// Program the SE key cell.
    WriteSe(bool),
    /// Read with inputs `(a, b)` and scan-enable level.
    Read {
        /// Input A.
        a: bool,
        /// Input B.
        b: bool,
        /// Scan-enable signal level during the read.
        se: bool,
    },
    /// Idle (standby) gap.
    Idle,
}

/// Builder/engine for transient simulations.
#[derive(Debug, Clone)]
pub struct TransientSim {
    /// Sampling step (ns).
    pub dt_ns: f64,
    /// Duration of each schedule slot (ns).
    pub slot_ns: f64,
    /// Edge time constant (ns) for the exponential transitions.
    pub tau_ns: f64,
    /// Logic-high level (V).
    pub vdd: f64,
}

impl Default for TransientSim {
    fn default() -> TransientSim {
        TransientSim {
            dt_ns: 0.1,
            slot_ns: 2.0,
            tau_ns: 0.15,
            vdd: 0.8,
        }
    }
}

impl TransientSim {
    /// Runs `ops` against `lut`, returning the sampled waveforms for
    /// `WE`, `RE`, `SE`, `KWE`, `A`, `B`, `BL`, `O`, `OUT`, the two
    /// MTJ-state rails of cell 3 (`MTJ3`, `MTJ3b`), and the supply-power
    /// rail `PWR_uW` (µW — what a P-SCA adversary probes).
    pub fn run(&self, lut: &mut MramLut2, ops: &[LutOp]) -> WaveformTrace {
        let names = [
            "WE", "RE", "SE", "KWE", "A", "B", "BL", "O", "OUT", "MTJ3", "MTJ3b", "PWR_uW",
        ];
        let mut levels: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        let push_slot = |targets: [f64; 12], levels: &mut Vec<Vec<f64>>| {
            for (sig, &target) in levels.iter_mut().zip(targets.iter()) {
                sig.push(target);
            }
        };
        for &op in ops {
            let mtj3 = lut.stored_truth_table() >> 3 & 1;
            match op {
                LutOp::Write(tt) => {
                    // 4 sub-slots, one per key bit, in Table II order.
                    let keys = truth_table_to_keys(tt);
                    let wlog_before = lut.write_log().len();
                    for (k, &key) in keys.iter().enumerate() {
                        // Address AB = 11, 10, 01, 00.
                        let (a, b) = [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (0.0, 0.0)][k];
                        push_slot(
                            [
                                self.vdd,
                                0.0,
                                0.0,
                                0.0,
                                a * self.vdd,
                                b * self.vdd,
                                if key { self.vdd } else { 0.0 },
                                0.0,
                                0.0,
                                mtj3 as f64 * self.vdd,
                                (1 - mtj3) as f64 * self.vdd,
                                0.0, // patched below from the write log
                            ],
                            &mut levels,
                        );
                    }
                    lut.program(tt);
                    // Back-fill the power rail from the actual write pulses.
                    let pwr = levels.len() - 1;
                    let slots = levels[pwr].len();
                    for (i, w) in lut.write_log()[wlog_before..].iter().enumerate() {
                        let power_uw = w.energy_fj / 0.94; // fJ / ns = µW
                        levels[pwr][slots - 4 + i] = power_uw;
                    }
                }
                LutOp::WriteSe(key) => {
                    let wlog_before = lut.write_log().len();
                    push_slot(
                        [
                            0.0,
                            0.0,
                            0.0,
                            self.vdd,
                            0.0,
                            0.0,
                            if key { self.vdd } else { 0.0 },
                            0.0,
                            0.0,
                            mtj3 as f64 * self.vdd,
                            (1 - mtj3) as f64 * self.vdd,
                            0.0, // patched below
                        ],
                        &mut levels,
                    );
                    lut.program_se(key);
                    let pwr = levels.len() - 1;
                    let slots = levels[pwr].len();
                    if let Some(w) = lut.write_log()[wlog_before..].first() {
                        levels[pwr][slots - 1] = w.energy_fj / 0.94;
                    }
                }
                LutOp::Read { a, b, se } => {
                    let r = lut.read(a, b, se);
                    push_slot(
                        [
                            0.0,
                            self.vdd,
                            if se { self.vdd } else { 0.0 },
                            0.0,
                            if a { self.vdd } else { 0.0 },
                            if b { self.vdd } else { 0.0 },
                            0.0,
                            if r.o_internal { self.vdd } else { 0.0 },
                            if r.out { self.vdd } else { 0.0 },
                            mtj3 as f64 * self.vdd,
                            (1 - mtj3) as f64 * self.vdd,
                            r.power_uw,
                        ],
                        &mut levels,
                    );
                }
                LutOp::Idle => {
                    // Standby: attojoule-scale retention power only.
                    let standby_uw = lut.standby_energy_aj(1.0) * 1e-3;
                    push_slot(
                        [
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            0.0,
                            mtj3 as f64 * self.vdd,
                            (1 - mtj3) as f64 * self.vdd,
                            standby_uw,
                        ],
                        &mut levels,
                    );
                }
            }
        }
        // Expand slot targets into exponentially-edged samples.
        let samples_per_slot = (self.slot_ns / self.dt_ns).round() as usize;
        let total_slots = levels[0].len();
        let mut time_ns = Vec::with_capacity(total_slots * samples_per_slot);
        let mut sampled: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for slot in 0..total_slots {
            for s in 0..samples_per_slot {
                let t_in_slot = s as f64 * self.dt_ns;
                time_ns.push(slot as f64 * self.slot_ns + t_in_slot);
                for (sig_idx, sig_levels) in levels.iter().enumerate() {
                    let target = sig_levels[slot];
                    let prev = if slot == 0 { 0.0 } else { sig_levels[slot - 1] };
                    let v = target + (prev - target) * (-t_in_slot / self.tau_ns).exp();
                    sampled[sig_idx].push(v);
                }
            }
        }
        WaveformTrace {
            time_ns,
            signals: names.iter().map(|s| s.to_string()).zip(sampled).collect(),
        }
    }

    /// The paper's Fig. 5 schedule: program AND, read all four minterms,
    /// reprogram to NOR, read again, then set the SE key and read under
    /// scan-enable (showing the inverted `OUT`).
    pub fn figure5_schedule() -> Vec<LutOp> {
        let mut ops = vec![LutOp::Write(0b1000)]; // AND
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            ops.push(LutOp::Read { a, b, se: false });
        }
        ops.push(LutOp::Idle);
        ops.push(LutOp::Write(0b0001)); // NOR
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            ops.push(LutOp::Read { a, b, se: false });
        }
        ops.push(LutOp::Idle);
        ops.push(LutOp::WriteSe(true));
        for (a, b) in [(false, false), (true, true)] {
            ops.push(LutOp::Read { a, b, se: true });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_waveforms_show_and_then_nor() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let trace = sim.run(&mut lut, &TransientSim::figure5_schedule());
        let out = trace.signal("OUT").unwrap();
        let re = trace.signal("RE").unwrap();
        let spb = (sim.slot_ns / sim.dt_ns) as usize;
        // Sample each read slot near its end (settled value).
        let slot_val = |slot: usize| out[slot * spb + spb - 1] > sim.vdd / 2.0;
        let slot_re = |slot: usize| re[slot * spb + spb - 1] > sim.vdd / 2.0;
        // Slots 0..4 = write AND (4 sub-slots), 4..8 = reads 00,10,01,11.
        assert!(!slot_re(0));
        assert!(slot_re(4));
        assert!(!slot_val(4)); // AND(0,0)
        assert!(!slot_val(5)); // AND(1,0)
        assert!(!slot_val(6)); // AND(0,1)
        assert!(slot_val(7)); // AND(1,1)
                              // Slot 8 idle; 9..13 write NOR; reads at 13..17.
        assert!(slot_val(13)); // NOR(0,0)
        assert!(!slot_val(14));
        assert!(!slot_val(15));
        assert!(!slot_val(16)); // NOR(1,1)
                                // Slot 17 idle, 18 = write SE, 19..21 scan reads (inverted NOR).
        assert!(!slot_val(19)); // !NOR(0,0)
        assert!(slot_val(20)); // !NOR(1,1)
    }

    #[test]
    fn edges_are_exponential_not_instant() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let trace = sim.run(
            &mut lut,
            &[
                LutOp::Idle,
                LutOp::Read {
                    a: false,
                    b: false,
                    se: false,
                },
            ],
        );
        let re = trace.signal("RE").unwrap();
        let spb = (sim.slot_ns / sim.dt_ns) as usize;
        // First sample of the read slot is mid-transition, settles later.
        // (sample 0 of the slot is exactly at the old level.)
        assert!(re[spb + 1] > 0.0 && re[spb + 1] < sim.vdd);
        assert!(re[2 * spb - 1] > 0.95 * sim.vdd);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let trace = sim.run(&mut lut, &[LutOp::Idle, LutOp::Idle]);
        let csv = trace.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_ns,WE,RE,SE"));
        assert_eq!(lines.count(), trace.time_ns.len());
    }

    #[test]
    fn ascii_render_one_row_per_signal() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let trace = sim.run(&mut lut, &TransientSim::figure5_schedule());
        let art = trace.to_ascii(60);
        assert_eq!(art.lines().count(), trace.signals.len());
    }

    #[test]
    fn power_rail_distinguishes_write_read_and_standby() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let trace = sim.run(&mut lut, &TransientSim::figure5_schedule());
        let pwr = trace.signal("PWR_uW").unwrap();
        let spb = (sim.slot_ns / sim.dt_ns) as usize;
        let settle = |slot: usize| pwr[slot * spb + spb - 1];
        // Slot 0 = write pulse, slot 4 = read, slot 8 = idle.
        let write_p = settle(0);
        let read_p = settle(4);
        let idle_p = settle(8);
        assert!(write_p < read_p * 10.0 && write_p > 0.0, "write {write_p}");
        assert!(read_p > 10.0 * idle_p, "read {read_p} vs idle {idle_p}");
        // P-SCA symmetry: reads of 0 and 1 draw nearly the same power
        // (slot 13 = NOR(0,0) reads 1, slot 16 = NOR(1,1) reads 0).
        let p1 = settle(13);
        let p0 = settle(16);
        assert!((p1 - p0).abs() / p0 < 0.01, "asymmetry {p1} vs {p0}");
    }

    #[test]
    fn mtj_state_rails_flip_on_reprogram() {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        // Cell 3 is 1 under AND (tt bit 3), 0 under NOR.
        let trace = sim.run(
            &mut lut,
            &[
                LutOp::Write(0b1000),
                LutOp::Idle,
                LutOp::Write(0b0001),
                LutOp::Idle,
            ],
        );
        let mtj3 = trace.signal("MTJ3").unwrap();
        let spb = (sim.slot_ns / sim.dt_ns) as usize;
        // After the AND write (slots 0-3), idle slot 4 shows MTJ3 = 1.
        assert!(mtj3[5 * spb - 1] > 0.4);
        // After the NOR write (slots 5-8), idle slot 9 shows MTJ3 = 0.
        assert!(mtj3[10 * spb - 1] < 0.4);
    }
}
