//! Circuit-level 2-input MRAM LUT (paper Fig. 4) and an SRAM-LUT baseline.
//!
//! The MRAM LUT holds four complementary memory cells (one per input
//! minterm), a transmission-gate select tree steered by inputs `A`/`B`, and
//! the extra **Scan-Enable cell** (`MTJ_SE`): when the scan-enable signal is
//! asserted during a read, a stored SE key of `1` swaps `O` and `!O` on the
//! way to `OUT`, corrupting every response an attacker collects through the
//! scan interface (paper Section III-C).

use crate::cell::{CellCircuit, ComplementaryCell, ReadSample, WriteSample};
use crate::mtj::MtjParams;

/// Key-bit order convention for the 4 configuration bits, matching the
/// paper's Table II: `K1` configures minterm `AB = 11`, `K2` → `10`,
/// `K3` → `01`, `K4` → `00`.
pub fn truth_table_to_keys(tt: u8) -> [bool; 4] {
    // Internal cell index i stores output for (a, b) with i = a + 2b.
    // K1 = cell 3 (11), K2 = cell 2? Table II: order AB = 11, 10, 01, 00.
    // "10" means A=1,B=0 ⇒ cell index 1. "01" ⇒ cell 2.
    [
        (tt >> 3) & 1 == 1, // K1: AB = 11
        (tt >> 1) & 1 == 1, // K2: AB = 10
        (tt >> 2) & 1 == 1, // K3: AB = 01
        (tt & 1) == 1,      // K4: AB = 00
    ]
}

/// Inverse of [`truth_table_to_keys`].
pub fn keys_to_truth_table(keys: [bool; 4]) -> u8 {
    ((keys[0] as u8) << 3) | ((keys[1] as u8) << 1) | ((keys[2] as u8) << 2) | keys[3] as u8
}

/// One read through the full LUT, including the select tree and SE stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutReadSample {
    /// Value at `OUT` (after the SE stage).
    pub out: bool,
    /// Value at internal node `O` (before the SE stage).
    pub o_internal: bool,
    /// Total read energy (fJ): selected cell divider + select tree.
    pub energy_fj: f64,
    /// Total read power (µW).
    pub power_uw: f64,
    /// Read current (µA).
    pub current_ua: f64,
    /// Whether the sensed margin was reliable.
    pub reliable: bool,
}

/// A circuit-level 2-input MRAM-based LUT.
///
/// # Examples
///
/// Program an AND gate, then dynamically morph it into NOR — the Fig. 5
/// experiment:
///
/// ```
/// use ril_mram::lut::MramLut2;
///
/// let mut lut = MramLut2::with_defaults();
/// lut.program(0b1000); // AND (Table II: K1..K4 = 1,0,0,0)
/// assert!(lut.read(true, true, false).out);
/// assert!(!lut.read(true, false, false).out);
/// lut.program(0b0001); // NOR
/// assert!(lut.read(false, false, false).out);
/// assert!(!lut.read(true, true, false).out);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MramLut2 {
    cells: [ComplementaryCell; 4],
    se_cell: ComplementaryCell,
    /// Select-tree (3 transmission-gate MUXes) energy overhead per read, fJ.
    tree_energy_fj: f64,
    write_log: Vec<WriteSample>,
}

impl MramLut2 {
    /// Creates a LUT with the given device/circuit parameters (all cells
    /// identical). Initial content is all-zero (constant-0 function),
    /// SE key 0.
    pub fn new(params: MtjParams, circuit: CellCircuit) -> MramLut2 {
        let mk = || ComplementaryCell::new(params.clone(), params.clone(), circuit.clone());
        MramLut2 {
            cells: [mk(), mk(), mk(), mk()],
            se_cell: mk(),
            tree_energy_fj: 0.35,
            write_log: Vec::new(),
        }
    }

    /// Creates a LUT with nominal (default) parameters.
    pub fn with_defaults() -> MramLut2 {
        MramLut2::new(MtjParams::default(), CellCircuit::default())
    }

    /// Creates a LUT whose five cells carry individually process-varied
    /// parameters (used by Monte-Carlo analysis).
    pub fn with_cells(cells: [ComplementaryCell; 4], se_cell: ComplementaryCell) -> MramLut2 {
        MramLut2 {
            cells,
            se_cell,
            tree_energy_fj: 0.35,
            write_log: Vec::new(),
        }
    }

    /// Programs the 4-bit truth table (bit `a + 2b` = output for `(a, b)`),
    /// shifting the keys in through `BL` as in the paper. Returns `true` if
    /// every cell write succeeded.
    pub fn program(&mut self, tt: u8) -> bool {
        let mut ok = true;
        for i in 0..4 {
            let w = self.cells[i].write((tt >> i) & 1 == 1);
            self.write_log.push(w);
            ok &= w.success;
        }
        ok
    }

    /// Programs the Scan-Enable key cell (`MTJ_SE`).
    pub fn program_se(&mut self, key: bool) -> bool {
        let w = self.se_cell.write(key);
        self.write_log.push(w);
        w.success
    }

    /// The currently stored truth table according to device states.
    pub fn stored_truth_table(&self) -> u8 {
        let mut tt = 0u8;
        for i in 0..4 {
            tt |= (self.cells[i].stored() as u8) << i;
        }
        tt
    }

    /// The stored SE key bit.
    pub fn stored_se_key(&self) -> bool {
        self.se_cell.stored()
    }

    /// Reads the LUT for inputs `(a, b)` with the scan-enable signal at
    /// `se`. When `se` is asserted and the SE key is 1, `OUT` is the
    /// complement rail `!O`.
    pub fn read(&self, a: bool, b: bool, se: bool) -> LutReadSample {
        let idx = (a as usize) | ((b as usize) << 1);
        let cell: &ComplementaryCell = &self.cells[idx];
        let r: ReadSample = cell.read();
        // The SE stage: a 2:1 MUX between O and !O steered by MTJ_SE & SE.
        let invert = se && self.se_cell.stored();
        let se_read_energy = if se {
            self.se_cell.read().energy_fj * 0.1
        } else {
            0.0
        };
        LutReadSample {
            out: r.value ^ invert,
            o_internal: r.value,
            energy_fj: r.energy_fj + self.tree_energy_fj + se_read_energy,
            power_uw: r.power_uw,
            current_ua: r.current_ua,
            reliable: r.reliable,
        }
    }

    /// Standby energy of the whole LUT (5 complementary cells) over
    /// `duration_ns`, in aJ.
    pub fn standby_energy_aj(&self, duration_ns: f64) -> f64 {
        self.cells
            .iter()
            .chain(std::iter::once(&self.se_cell))
            .map(|c| c.standby_energy_aj(duration_ns))
            .sum()
    }

    /// All write samples since construction (energy audit trail).
    pub fn write_log(&self) -> &[WriteSample] {
        &self.write_log
    }

    /// Read-only access to all five complementary cells (the four data
    /// cells followed by the SE cell) for device-level analysis such as the
    /// Monte-Carlo resistance distributions.
    pub fn cells_for_analysis(&self) -> impl Iterator<Item = &ComplementaryCell> + '_ {
        self.cells.iter().chain(std::iter::once(&self.se_cell))
    }

    /// Transistor + MTJ inventory: the paper counts 32 MOS + 4 MTJs per
    /// memory cell column vs. 24 MOS for SRAM. Returns `(mos, mtj)` for the
    /// whole 2-input LUT including the SE cell.
    pub fn device_counts(&self) -> (usize, usize) {
        // 5 cells × (write access 4T + read enable 2T) + select tree 3 MUX
        // × 2T + SE mux 2T = 30 + 6 + 2; round to the paper's 32-per-cell
        // accounting: report the paper's numbers scaled to 5 cells.
        (32, 10)
    }
}

/// A conventional SRAM-based 2-input LUT baseline.
///
/// Functionally identical, but: volatile, leaky in standby, and its read
/// power depends on the stored/read value (discharge only on reading 1) —
/// the data-dependent footprint P-SCA exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct SramLut2 {
    bits: [bool; 4],
    /// Read energy when the sensed value is 0 (fJ).
    pub read0_fj: f64,
    /// Read energy when the sensed value is 1 (fJ) — bitline discharge.
    pub read1_fj: f64,
    /// Write energy per cell (fJ).
    pub write_fj: f64,
    /// Standby leakage power (nW) of the 4 × 6T cells.
    pub leakage_nw: f64,
}

impl Default for SramLut2 {
    fn default() -> SramLut2 {
        SramLut2 {
            bits: [false; 4],
            // Typical 45 nm low-power SRAM numbers.
            read0_fj: 7.9,
            read1_fj: 11.8,
            write_fj: 9.2,
            leakage_nw: 18.5,
        }
    }
}

impl SramLut2 {
    /// Creates an SRAM LUT holding constant-0.
    pub fn new() -> SramLut2 {
        SramLut2::default()
    }

    /// Writes the truth table; returns the energy spent (fJ).
    pub fn program(&mut self, tt: u8) -> f64 {
        for i in 0..4 {
            self.bits[i] = (tt >> i) & 1 == 1;
        }
        4.0 * self.write_fj
    }

    /// Reads for `(a, b)`; returns `(value, energy_fj)`.
    pub fn read(&self, a: bool, b: bool) -> (bool, f64) {
        let idx = (a as usize) | ((b as usize) << 1);
        let v = self.bits[idx];
        (v, if v { self.read1_fj } else { self.read0_fj })
    }

    /// Standby energy over `duration_ns` in aJ (leakage × time).
    pub fn standby_energy_aj(&self, duration_ns: f64) -> f64 {
        self.leakage_nw * duration_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_key_encoding_round_trips() {
        for tt in 0u8..16 {
            assert_eq!(keys_to_truth_table(truth_table_to_keys(tt)), tt);
        }
        // Spot checks against Table II rows.
        assert_eq!(truth_table_to_keys(0b1000), [true, false, false, false]); // AND
        assert_eq!(truth_table_to_keys(0b1110), [true, true, true, false]); // OR
        assert_eq!(truth_table_to_keys(0b0001), [false, false, false, true]); // NOR
        assert_eq!(truth_table_to_keys(0b0110), [false, true, true, false]); // XOR
    }

    #[test]
    fn lut_implements_all_sixteen_functions() {
        let mut lut = MramLut2::with_defaults();
        for tt in 0u8..16 {
            assert!(lut.program(tt));
            assert_eq!(lut.stored_truth_table(), tt);
            for a in [false, true] {
                for b in [false, true] {
                    let idx = (a as u8) | ((b as u8) << 1);
                    let expect = (tt >> idx) & 1 == 1;
                    let r = lut.read(a, b, false);
                    assert_eq!(r.out, expect, "tt={tt:04b} a={a} b={b}");
                    assert!(r.reliable);
                }
            }
        }
    }

    #[test]
    fn se_key_inverts_only_under_scan_enable() {
        let mut lut = MramLut2::with_defaults();
        lut.program(0b1110); // OR
        lut.program_se(true);
        assert!(lut.stored_se_key());
        // Functional mode: unaffected.
        assert!(lut.read(true, false, false).out);
        // Scan mode: inverted — the OR answers like a NOR.
        assert!(!lut.read(true, false, true).out);
        assert!(lut.read(false, false, true).out);
        // SE key 0: scan mode is transparent.
        lut.program_se(false);
        assert!(lut.read(true, false, true).out);
    }

    #[test]
    fn read_energy_matches_table_iv_band() {
        let mut lut = MramLut2::with_defaults();
        lut.program(0b1000);
        let r0 = lut.read(true, false, false); // reads 0
        let r1 = lut.read(true, true, false); // reads 1
        assert!(!r0.out && r1.out);
        // Table IV: 12.47 / 12.50 fJ (±5 %).
        assert!((r0.energy_fj - 12.47).abs() < 0.7, "read0 {}", r0.energy_fj);
        assert!((r1.energy_fj - 12.50).abs() < 0.7, "read1 {}", r1.energy_fj);
        assert!(r1.energy_fj > r0.energy_fj);
    }

    #[test]
    fn write_energy_matches_table_iv_band() {
        let mut lut = MramLut2::with_defaults();
        lut.program(0b0110);
        let log = lut.write_log();
        // Per-cell writes ≈ 34.45 (0) / 34.94 (1) fJ (±8 %).
        for w in log {
            assert!(w.success);
            assert!((w.energy_fj - 34.7).abs() < 3.0, "write {}", w.energy_fj);
        }
    }

    #[test]
    fn standby_is_attojoules_vs_sram_femtojoules() {
        let lut = MramLut2::with_defaults();
        let sram = SramLut2::default();
        let mram_aj = lut.standby_energy_aj(1000.0);
        let sram_aj = sram.standby_energy_aj(1000.0);
        // Table IV: 36.90 aJ for the MRAM LUT (per µs here).
        assert!((mram_aj - 36.9).abs() < 1.0, "mram standby {mram_aj}");
        assert!(sram_aj / mram_aj > 100.0, "sram should leak ≫ mram");
    }

    #[test]
    fn sram_lut_functions_and_leaks_data_dependence() {
        let mut sram = SramLut2::new();
        sram.program(0b0110);
        let (v00, e00) = sram.read(false, false);
        let (v10, e10) = sram.read(true, false);
        assert!(!v00 && v10);
        assert!(e10 > e00, "SRAM read energy must be data-dependent");
    }

    #[test]
    fn device_counts_reported() {
        let lut = MramLut2::with_defaults();
        let (mos, mtj) = lut.device_counts();
        assert!(mos >= 24);
        assert_eq!(mtj, 10);
    }
}
