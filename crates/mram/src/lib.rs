//! # ril-mram — behavioural STT-MRAM circuit substrate
//!
//! The HSPICE replacement of this reproduction (see DESIGN.md §2): a
//! behavioural device model of STT Magnetic Tunnel Junctions ([`mtj`]),
//! complementary 2-MTJ memory cells with voltage-divider sensing
//! ([`cell`]), the paper's 2-input MRAM LUT with Scan-Enable cell and an
//! SRAM baseline ([`lut`]), a transient waveform engine for the Fig. 5
//! schedule ([`transient`]), Monte-Carlo process-variation analysis for
//! Fig. 6 ([`montecarlo`]), and Table IV energy accounting ([`energy`]).
//!
//! ## Quickstart
//!
//! ```
//! use ril_mram::lut::MramLut2;
//!
//! let mut lut = MramLut2::with_defaults();
//! lut.program(0b1000); // AND
//! assert!(lut.read(true, true, false).out);
//! // Dynamic morphing: the same hardware becomes a NOR.
//! lut.program(0b0001);
//! assert!(lut.read(false, false, false).out);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod energy;
pub mod lut;
pub mod montecarlo;
pub mod mtj;
pub mod transient;

pub use cell::{CellCircuit, ComplementaryCell};
pub use energy::{measure_mram_profile, measure_sram_profile, EnergyProfile, PAPER_TABLE_IV};
pub use lut::{MramLut2, SramLut2};
pub use montecarlo::{run_monte_carlo, MonteCarloReport, VariationModel};
pub use mtj::{Mtj, MtjParams, MtjState};
pub use transient::{LutOp, TransientSim, WaveformTrace};
