//! ISCAS `.bench` format reader and writer.
//!
//! The classic format:
//!
//! ```text
//! # c17
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Two extensions are supported, both used by the RIL-Blocks flow:
//!
//! * `KEYINPUT(k0)` — declares a primary input that is an obfuscation key
//!   bit (the de-facto convention of published logic-locking tools is a key
//!   name prefix; the explicit directive is unambiguous and round-trips).
//! * `y = LUT2(0x8, a, b)` — a configured 2-input LUT carrying its 4-bit
//!   truth table, the materialized form of a programmed MRAM LUT
//!   (paper Fig. 1 uses the equivalent 3-MUX expansion for SAT simulation).

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};
use std::error::Error;
use std::fmt;

/// Errors produced while parsing `.bench` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// Malformed line (with 1-based line number).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
    /// The netlist being assembled violated a structural invariant.
    Netlist(NetlistError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseBenchError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for ParseBenchError {}

impl From<NetlistError> for ParseBenchError {
    fn from(e: NetlistError) -> Self {
        ParseBenchError::Netlist(e)
    }
}

fn syntax(line: usize, msg: impl Into<String>) -> ParseBenchError {
    ParseBenchError::Syntax {
        line,
        msg: msg.into(),
    }
}

/// Parses `.bench` text into a [`Netlist`].
///
/// Net names may appear before they are declared/driven; all names are
/// resolved in a single pass with lazy net creation. Signals listed in
/// `OUTPUT(...)` become primary outputs; `INPUT(...)` primary inputs;
/// `KEYINPUT(...)` key inputs.
///
/// # Errors
///
/// Returns [`ParseBenchError::Syntax`] for malformed lines and
/// [`ParseBenchError::Netlist`] for structural violations (duplicate
/// drivers, bad arity).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ril_netlist::parse_bench("and2", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// assert_eq!(nl.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, text: &str) -> Result<Netlist, ParseBenchError> {
    let mut nl = Netlist::new(name);
    let mut outputs: Vec<(usize, String)> = Vec::new();

    let get_net = |nl: &mut Netlist, name: &str| match nl.net_id(name) {
        Some(id) => id,
        None => nl.add_net(name).expect("checked absent"),
    };

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = strip_directive(line, "INPUT") {
            let sig = rest.trim();
            ensure_name(sig, lineno)?;
            match nl.net_id(sig) {
                Some(_) => return Err(syntax(lineno, format!("input `{sig}` redeclared"))),
                None => {
                    nl.add_input(sig)?;
                }
            }
            continue;
        }
        if let Some(rest) = strip_directive(line, "KEYINPUT") {
            let sig = rest.trim();
            ensure_name(sig, lineno)?;
            match nl.net_id(sig) {
                Some(_) => return Err(syntax(lineno, format!("key input `{sig}` redeclared"))),
                None => {
                    nl.add_key_input(sig)?;
                }
            }
            continue;
        }
        if let Some(rest) = strip_directive(line, "OUTPUT") {
            let sig = rest.trim();
            ensure_name(sig, lineno)?;
            outputs.push((lineno, sig.to_string()));
            continue;
        }

        // `lhs = KIND(args...)`
        let (lhs, rhs) = line
            .split_once('=')
            .ok_or_else(|| syntax(lineno, "expected `signal = GATE(...)`"))?;
        let lhs = lhs.trim();
        ensure_name(lhs, lineno)?;
        let rhs = rhs.trim();
        let open = rhs
            .find('(')
            .ok_or_else(|| syntax(lineno, "missing `(` in gate expression"))?;
        if !rhs.ends_with(')') {
            return Err(syntax(lineno, "missing `)` in gate expression"));
        }
        let kind_str = rhs[..open].trim();
        let args_str = &rhs[open + 1..rhs.len() - 1];
        let mut args: Vec<&str> = args_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();

        let kind = if kind_str.eq_ignore_ascii_case("LUT2") {
            if args.is_empty() {
                return Err(syntax(lineno, "LUT2 requires a truth-table literal"));
            }
            let lit = args.remove(0);
            let tt = parse_tt_literal(lit)
                .ok_or_else(|| syntax(lineno, format!("bad LUT2 truth table `{lit}`")))?;
            GateKind::Lut2(tt)
        } else {
            GateKind::from_mnemonic(kind_str)
                .ok_or_else(|| syntax(lineno, format!("unknown gate `{kind_str}`")))?
        };

        let out = get_net(&mut nl, lhs);
        let input_ids: Vec<_> = args.iter().map(|a| get_net(&mut nl, a)).collect();
        nl.add_gate(kind, &input_ids, out)?;
    }

    for (lineno, sig) in outputs {
        let id = nl
            .net_id(&sig)
            .ok_or_else(|| syntax(lineno, format!("output `{sig}` never defined")))?;
        nl.mark_output(id);
    }
    Ok(nl)
}

fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

fn ensure_name(name: &str, lineno: usize) -> Result<(), ParseBenchError> {
    if name.is_empty() {
        return Err(syntax(lineno, "empty signal name"));
    }
    if name
        .chars()
        .any(|c| !(c.is_ascii_alphanumeric() || "_.[]$".contains(c)))
    {
        return Err(syntax(lineno, format!("illegal signal name `{name}`")));
    }
    Ok(())
}

fn parse_tt_literal(lit: &str) -> Option<u8> {
    let v = if let Some(hex) = lit.strip_prefix("0x").or_else(|| lit.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = lit.strip_prefix("0b").or_else(|| lit.strip_prefix("0B")) {
        u8::from_str_radix(bin, 2).ok()?
    } else {
        lit.parse().ok()?
    };
    (v < 16).then_some(v)
}

/// Serializes a [`Netlist`] to `.bench` text.
///
/// Output is deterministic: inputs, key inputs, and outputs are emitted in
/// declaration order, gates in arena order. Constant gates are emitted as
/// `CONST0()`/`CONST1()`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ril_netlist::parse_bench("and2", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let text = ril_netlist::write_bench(&nl);
/// let again = ril_netlist::parse_bench("and2", &text)?;
/// assert_eq!(again.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn write_bench(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", nl.name()));
    let stats = nl.stats();
    out.push_str(&format!("# {stats}\n"));
    for &inp in nl.inputs() {
        if nl.is_key_input(inp) {
            out.push_str(&format!("KEYINPUT({})\n", nl.net(inp).name()));
        } else {
            out.push_str(&format!("INPUT({})\n", nl.net(inp).name()));
        }
    }
    for &o in nl.outputs() {
        out.push_str(&format!("OUTPUT({})\n", nl.net(o).name()));
    }
    for (_, gate) in nl.gates() {
        let args: Vec<&str> = gate.inputs().iter().map(|&n| nl.net(n).name()).collect();
        let lhs = nl.net(gate.output()).name();
        match gate.kind() {
            GateKind::Lut2(tt) => {
                out.push_str(&format!(
                    "{lhs} = LUT2(0x{:x}, {})\n",
                    tt & 0xf,
                    args.join(", ")
                ));
            }
            kind => {
                out.push_str(&format!(
                    "{lhs} = {}({})\n",
                    kind.mnemonic(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

/// The ISCAS-85 `c17` benchmark (public-domain, 6 NAND gates) — handy for
/// tests and examples.
pub const C17_BENCH: &str = "\
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

/// Parses the bundled `c17` benchmark.
///
/// # Examples
///
/// ```
/// let c17 = ril_netlist::bench::c17();
/// assert_eq!(c17.gate_count(), 6);
/// ```
pub fn c17() -> Netlist {
    parse_bench("c17", C17_BENCH).expect("bundled c17 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_c17() {
        let nl = c17();
        nl.validate().unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert_eq!(nl.stats().depth, 3);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = c17();
        let text = write_bench(&nl);
        let back = parse_bench("c17", &text).unwrap();
        assert_eq!(back.gate_count(), nl.gate_count());
        assert_eq!(back.inputs().len(), nl.inputs().len());
        assert_eq!(back.outputs().len(), nl.outputs().len());
        // Same names, same gate kinds per output net.
        for (_, g) in nl.gates() {
            let name = nl.net(g.output()).name();
            let id2 = back.net_id(name).unwrap();
            let d2 = back.net(id2).driver().unwrap();
            assert_eq!(back.gate(d2).kind(), g.kind());
        }
    }

    #[test]
    fn key_inputs_round_trip() {
        let text = "KEYINPUT(k0)\nINPUT(a)\nOUTPUT(y)\ny = XOR(a, k0)\n";
        let nl = parse_bench("locked", text).unwrap();
        assert_eq!(nl.key_inputs().len(), 1);
        assert_eq!(nl.data_inputs().len(), 1);
        let back = parse_bench("locked", &write_bench(&nl)).unwrap();
        assert_eq!(back.key_inputs().len(), 1);
    }

    #[test]
    fn lut2_literal_forms() {
        for lit in ["0x8", "0b1000", "8"] {
            let text = format!("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT2({lit}, a, b)\n");
            let nl = parse_bench("lut", &text).unwrap();
            let y = nl.net_id("y").unwrap();
            let g = nl.net(y).driver().unwrap();
            assert_eq!(nl.gate(g).kind(), GateKind::Lut2(0x8));
        }
    }

    #[test]
    fn lut2_round_trip() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT2(0xe, a, b)\n";
        let nl = parse_bench("lut", text).unwrap();
        let back = parse_bench("lut", &write_bench(&nl)).unwrap();
        let y = back.net_id("y").unwrap();
        let g = back.net(y).driver().unwrap();
        assert_eq!(back.gate(g).kind(), GateKind::Lut2(0xe));
    }

    #[test]
    fn mux_and_dff_parse() {
        let text = "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(q)\nm = MUX(s, a, b)\nq = DFF(m)\n";
        let nl = parse_bench("seq", text).unwrap();
        assert_eq!(nl.stats().dffs, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n";
        let nl = parse_bench("c", text).unwrap();
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn syntax_errors_are_located() {
        let err = parse_bench("bad", "INPUT(a)\ny == NOT(a)\n").unwrap_err();
        match err {
            ParseBenchError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = parse_bench("bad", "INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn undefined_output_rejected() {
        let err = parse_bench("bad", "INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn duplicate_driver_rejected() {
        let err = parse_bench("bad", "INPUT(a)\ny = NOT(a)\ny = BUF(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Netlist(_)));
    }

    #[test]
    fn case_insensitive_directives() {
        let nl = parse_bench("c", "input(a)\noutput(y)\ny = not(a)\n").unwrap();
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn bad_tt_literal_rejected() {
        let err = parse_bench(
            "bad",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT2(0x99, a, b)\n",
        )
        .unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { .. }));
    }
}
