//! # ril-netlist — gate-level EDA substrate
//!
//! The netlist foundation of the RIL-Blocks reproduction: an arena-based
//! gate-level [`Netlist`] with structural editing, ISCAS `.bench` I/O
//! ([`parse_bench`]/[`write_bench`]), a 64-way bit-parallel [`Simulator`],
//! logic-cone analysis ([`cone`]), and deterministic synthetic benchmark
//! [`generators`] standing in for the ISCAS-85/89, ITC-99 and CEP circuits
//! the paper evaluates on.
//!
//! ## Quickstart
//!
//! ```
//! use ril_netlist::{generators, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A synthetic c7552-class host circuit.
//! let nl = generators::benchmark("c7552").expect("known benchmark");
//! let stats = nl.stats();
//! assert!(stats.gates > 1000);
//!
//! // Simulate 64 random patterns in one call.
//! let mut sim = Simulator::new(&nl)?;
//! let data = vec![0u64; nl.data_inputs().len()];
//! let outputs = sim.eval_words(&nl, &data, &[]);
//! assert_eq!(outputs.len(), nl.outputs().len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bench;
pub mod cone;
pub mod gate;
pub mod generators;
pub mod netlist;
pub mod opt;
pub mod sim;
pub mod verilog;

pub use analysis::{AnalysisCache, FanoutTable, KeyAnalysis, LevelMap};
pub use bench::{parse_bench, write_bench, ParseBenchError};
pub use gate::GateKind;
pub use netlist::{Gate, GateId, Net, NetId, Netlist, NetlistError, NetlistStats};
pub use opt::{optimize, OptStats};
pub use sim::{CompiledSim, Simulator};
pub use verilog::{parse_verilog, write_verilog, ParseVerilogError};
