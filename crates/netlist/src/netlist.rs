//! Arena-based gate-level netlist with structural editing.
//!
//! A [`Netlist`] owns a set of named nets and a set of gates. Each net has at
//! most one driver (a gate or a primary input); gates reference nets by
//! [`NetId`]. Key inputs (the obfuscation key bits of a locked circuit) are
//! ordinary primary inputs carrying an extra flag, kept in a stable order so
//! attack code can index key bits deterministically.

#![deny(clippy::iter_over_hash_type)]

use crate::analysis::{AnalysisCache, FanoutTable, KeyAnalysis, LevelMap};
use crate::gate::GateKind;
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Identifier of a net within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate within one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// The raw index of this net in the netlist arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The raw index of this gate in the netlist arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A named wire.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<GateId>,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate driving this net, if any. Primary inputs and dangling nets
    /// have no driver.
    pub fn driver(&self) -> Option<GateId> {
        self.driver
    }
}

/// A logic gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's input nets, in positional order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this gate.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// Errors produced by netlist construction and editing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net with this name already exists.
    DuplicateNet(String),
    /// No net with this name exists.
    UnknownNet(String),
    /// The gate kind does not accept the given number of inputs.
    BadArity {
        /// Offending gate kind.
        kind: GateKind,
        /// Number of inputs supplied.
        got: usize,
    },
    /// The target net already has a driver.
    MultipleDrivers(String),
    /// The netlist contains a combinational cycle through the named net.
    CombinationalCycle(String),
    /// A non-input net has no driver.
    UndrivenNet(String),
    /// A referenced id is out of range or removed.
    InvalidId(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNet(n) => write!(f, "duplicate net name `{n}`"),
            NetlistError::UnknownNet(n) => write!(f, "unknown net `{n}`"),
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate {kind} does not accept {got} inputs")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net `{n}` already has a driver"),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net `{n}`")
            }
            NetlistError::UndrivenNet(n) => {
                write!(f, "net `{n}` has no driver and is not an input")
            }
            NetlistError::InvalidId(s) => write!(f, "invalid id: {s}"),
        }
    }
}

impl Error for NetlistError {}

/// Summary statistics of a netlist (see [`Netlist::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Live gate count.
    pub gates: usize,
    /// Net count (including dangling nets).
    pub nets: usize,
    /// Primary input count (including key inputs).
    pub inputs: usize,
    /// Key input count.
    pub key_inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Number of DFF gates.
    pub dffs: usize,
    /// Longest combinational path in gate levels (0 for an empty netlist).
    pub depth: usize,
    /// Gate count per mnemonic.
    pub by_kind: Vec<(String, usize)>,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} nets, {} PI ({} key), {} PO, {} DFF, depth {}",
            self.gates,
            self.nets,
            self.inputs,
            self.key_inputs,
            self.outputs,
            self.dffs,
            self.depth
        )
    }
}

/// A gate-level netlist.
///
/// # Examples
///
/// Build a tiny circuit `y = (a AND b) XOR c` and evaluate it:
///
/// ```
/// use ril_netlist::{Netlist, GateKind};
///
/// # fn main() -> Result<(), ril_netlist::NetlistError> {
/// let mut nl = Netlist::new("tiny");
/// let a = nl.add_input("a")?;
/// let b = nl.add_input("b")?;
/// let c = nl.add_input("c")?;
/// let t = nl.add_net("t")?;
/// let y = nl.add_net("y")?;
/// nl.add_gate(GateKind::And, &[a, b], t)?;
/// nl.add_gate(GateKind::Xor, &[t, c], y)?;
/// nl.mark_output(y);
/// assert_eq!(nl.stats().gates, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Option<Gate>>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    key_inputs: Vec<NetId>,
    names: HashMap<String, NetId>,
    fresh_counter: u64,
    generation: u64,
    cache: AnalysisCache,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            key_inputs: Vec::new(),
            names: HashMap::new(),
            fresh_counter: 0,
            generation: 0,
            cache: AnalysisCache::default(),
        }
    }

    /// The structural generation counter: bumped by every mutating edit, so
    /// holders of derived artifacts (SAT encodings, compiled simulators,
    /// attack miters) can detect staleness with one integer compare.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The embedded analysis cache (diagnostic / test hook).
    pub fn analysis(&self) -> &AnalysisCache {
        &self.cache
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a new dangling net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if the name is taken.
    pub fn add_net(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateNet(name));
        }
        let id = NetId(self.nets.len() as u32);
        self.names.insert(name.clone(), id);
        self.nets.push(Net { name, driver: None });
        self.generation += 1;
        self.cache.note_net_added();
        Ok(id)
    }

    /// Adds a new net with a guaranteed-unique generated name starting with
    /// `prefix`.
    pub fn fresh_net(&mut self, prefix: &str) -> NetId {
        loop {
            let name = format!("{prefix}_{}", self.fresh_counter);
            self.fresh_counter += 1;
            if !self.names.contains_key(&name) {
                return self.add_net(name).expect("fresh name is unique");
            }
        }
    }

    /// Adds a primary input net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let id = self.add_net(name)?;
        self.inputs.push(id);
        self.generation += 1;
        self.cache.note_input_added();
        Ok(id)
    }

    /// Adds a key input net (a primary input flagged as an obfuscation key
    /// bit). Key bit indices follow insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNet`] if the name is taken.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        let id = self.add_input(name)?;
        self.key_inputs.push(id);
        self.generation += 1;
        self.cache.note_key_input_added();
        Ok(id)
    }

    /// Marks a net as a primary output. A net may be marked more than once;
    /// duplicates are ignored.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.outputs.contains(&net) {
            self.outputs.push(net);
            self.generation += 1;
            self.cache.note_output_marked();
        }
    }

    /// Adds a gate driving the (previously dangling) net `output`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the input count is illegal for
    /// `kind`, or [`NetlistError::MultipleDrivers`] if `output` is already
    /// driven or is a primary input.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if !kind.accepts_arity(inputs.len()) {
            return Err(NetlistError::BadArity {
                kind,
                got: inputs.len(),
            });
        }
        if self.nets[output.index()].driver.is_some() || self.inputs.contains(&output) {
            return Err(NetlistError::MultipleDrivers(
                self.nets[output.index()].name.clone(),
            ));
        }
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Some(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        }));
        self.nets[output.index()].driver = Some(id);
        self.generation += 1;
        self.cache.note_gate_added(id, inputs);
        Ok(id)
    }

    /// Convenience: creates a fresh net and a gate driving it, returning the
    /// output net id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the input count is illegal.
    pub fn add_gate_fresh(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        prefix: &str,
    ) -> Result<NetId, NetlistError> {
        let out = self.fresh_net(prefix);
        self.add_gate(kind, inputs, out)?;
        Ok(out)
    }

    /// Accesses a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a net by name.
    pub fn net_id(&self, name: &str) -> Option<NetId> {
        self.names.get(name).copied()
    }

    /// Accesses a live gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the gate was removed.
    pub fn gate(&self, id: GateId) -> &Gate {
        self.gates[id.index()].as_ref().expect("gate was removed")
    }

    /// Returns the live gate with the given id, or `None` if removed/out of
    /// range.
    pub fn try_gate(&self, id: GateId) -> Option<&Gate> {
        self.gates.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Iterates over live gates.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (GateId(i as u32), g)))
    }

    /// Iterates over all nets.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> + '_ {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Primary inputs in declaration order (key inputs included).
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Key inputs in declaration order (key bit index order).
    pub fn key_inputs(&self) -> &[NetId] {
        &self.key_inputs
    }

    /// Primary inputs that are not key inputs, in declaration order.
    pub fn data_inputs(&self) -> Vec<NetId> {
        self.inputs
            .iter()
            .copied()
            .filter(|n| !self.key_inputs.contains(n))
            .collect()
    }

    /// Returns `true` if `net` is a primary input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.inputs.contains(&net)
    }

    /// Returns `true` if `net` is a key input.
    pub fn is_key_input(&self, net: NetId) -> bool {
        self.key_inputs.contains(&net)
    }

    /// Number of live gates.
    pub fn gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_some()).count()
    }

    /// Number of nets (including dangling ones).
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Removes a gate, leaving its output net undriven. Returns the removed
    /// gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate is already removed or out of range.
    pub fn remove_gate(&mut self, id: GateId) -> Gate {
        let gate = self.gates[id.index()].take().expect("gate already removed");
        self.nets[gate.output.index()].driver = None;
        self.generation += 1;
        self.cache.note_gate_removed(id, &gate.inputs);
        gate
    }

    /// Replaces occurrences of input net `old` with `new` in one gate's
    /// fan-in list. Returns the number of positions changed.
    ///
    /// # Panics
    ///
    /// Panics if the gate is removed or out of range.
    pub fn replace_fanin(&mut self, id: GateId, old: NetId, new: NetId) -> usize {
        let gate = self.gates[id.index()].as_mut().expect("gate was removed");
        let mut changed = 0;
        for inp in &mut gate.inputs {
            if *inp == old {
                *inp = new;
                changed += 1;
            }
        }
        if changed > 0 {
            self.generation += 1;
            self.cache.note_fanin_moved(id, old, new, changed);
        }
        changed
    }

    /// Redirects every consumer of `old` (gate fan-ins and the primary output
    /// list) to `new`. The driver of `old` is untouched. Returns the number
    /// of redirected references.
    pub fn redirect_consumers(&mut self, old: NetId, new: NetId) -> usize {
        let mut changed = 0;
        for (i, gate) in self.gates.iter_mut().enumerate() {
            let Some(gate) = gate else { continue };
            let mut moved = 0;
            for inp in &mut gate.inputs {
                if *inp == old {
                    *inp = new;
                    moved += 1;
                }
            }
            if moved > 0 {
                self.cache
                    .note_fanin_moved(GateId(i as u32), old, new, moved);
                changed += moved;
            }
        }
        let mut outputs_moved = false;
        for out in &mut self.outputs {
            if *out == old {
                *out = new;
                changed += 1;
                outputs_moved = true;
            }
        }
        if outputs_moved {
            self.cache.note_output_marked();
        }
        if changed > 0 {
            self.generation += 1;
        }
        changed
    }

    /// Changes the kind of a live gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the existing fan-in count is
    /// illegal for the new kind, or [`NetlistError::InvalidId`] if the gate
    /// is removed/out of range.
    pub fn set_gate_kind(&mut self, id: GateId, kind: GateKind) -> Result<(), NetlistError> {
        let gate = self
            .gates
            .get_mut(id.index())
            .and_then(|g| g.as_mut())
            .ok_or_else(|| NetlistError::InvalidId(format!("{id}")))?;
        if !kind.accepts_arity(gate.inputs.len()) {
            return Err(NetlistError::BadArity {
                kind,
                got: gate.inputs.len(),
            });
        }
        gate.kind = kind;
        self.generation += 1;
        self.cache.note_kind_changed();
        Ok(())
    }

    /// The cached net → consuming-gates table, built on first use and
    /// maintained incrementally across edits (cheap `Arc` clone afterwards).
    pub fn fanout(&self) -> Arc<FanoutTable> {
        self.cache.fanout(self)
    }

    /// Builds the net → consuming-gates map as plain vectors (compatibility
    /// view of [`Netlist::fanout`]; prefer the cached table for repeated
    /// queries).
    pub fn fanout_map(&self) -> Vec<Vec<GateId>> {
        let table = self.fanout();
        (0..self.nets.len())
            .map(|i| table.consumers(NetId(i as u32)).to_vec())
            .collect()
    }

    /// Computes a topological order of the live gates (inputs before
    /// consumers). DFF gates are treated as combinational nodes, so a
    /// sequential loop reports a cycle; convert with
    /// [`Netlist::to_combinational`] first for sequential designs.
    ///
    /// The order is cached; repeated calls between edits are O(gates) copies.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] naming a net on a cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        self.cache.topo(self).map(|o| o.as_ref().clone())
    }

    /// Like [`Netlist::topo_order`] but returns the shared cached order
    /// without copying.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] naming a net on a cycle.
    pub fn topo_order_shared(&self) -> Result<Arc<Vec<GateId>>, NetlistError> {
        self.cache.topo(self)
    }

    /// The cached per-net combinational levels (and overall depth).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
    pub fn levels(&self) -> Result<Arc<LevelMap>, NetlistError> {
        self.cache.levels(self)
    }

    /// A name-based structural hash, invariant under gate/arena reordering
    /// but sensitive to connectivity, gate functions, and port order. Cached
    /// between edits. The design name is excluded.
    pub fn structural_hash(&self) -> u64 {
        self.cache.structural_hash(self)
    }

    /// The cached key-bit structural analysis: per-bit fan-out cones and the
    /// output → key-bit support map driving incremental post-morph checks.
    pub fn key_analysis(&self) -> Arc<KeyAnalysis> {
        self.cache.keys(self)
    }

    /// Length of the gate arena including removed slots (for dense
    /// id-indexed scratch tables).
    pub(crate) fn gate_arena_len(&self) -> usize {
        self.gates.len()
    }

    /// Validates structural invariants: legal arities, single drivers, every
    /// net reachable from an output is driven or a primary input, and no
    /// combinational cycles.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (_, gate) in self.gates() {
            if !gate.kind().accepts_arity(gate.inputs().len()) {
                return Err(NetlistError::BadArity {
                    kind: gate.kind(),
                    got: gate.inputs().len(),
                });
            }
            for &inp in gate.inputs() {
                if self.nets[inp.index()].driver.is_none() && !self.inputs.contains(&inp) {
                    return Err(NetlistError::UndrivenNet(
                        self.nets[inp.index()].name.clone(),
                    ));
                }
            }
        }
        for &out in &self.outputs {
            if self.nets[out.index()].driver.is_none() && !self.inputs.contains(&out) {
                return Err(NetlistError::UndrivenNet(
                    self.nets[out.index()].name.clone(),
                ));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Converts a sequential netlist to its combinational view under the
    /// full-scan threat model: each DFF is removed, its output net becomes a
    /// pseudo primary input and its data input becomes a pseudo primary
    /// output. Returns the number of converted flip-flops.
    ///
    /// This mirrors how oracle-guided attacks (and the paper's SAT
    /// experiments) treat scan-accessible state.
    pub fn to_combinational(&mut self) -> usize {
        let dffs: Vec<GateId> = self
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Dff)
            .map(|(id, _)| id)
            .collect();
        for id in &dffs {
            let gate = self.remove_gate(*id);
            let q = gate.output();
            let d = gate.inputs()[0];
            if !self.inputs.contains(&q) {
                self.inputs.push(q);
                self.generation += 1;
                self.cache.note_input_added();
            }
            self.mark_output(d);
        }
        dffs.len()
    }

    /// Longest combinational path length in gate levels.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic.
    pub fn depth(&self) -> Result<usize, NetlistError> {
        Ok(self.levels()?.depth())
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut dffs = 0;
        for (_, gate) in self.gates() {
            *by_kind
                .entry(gate.kind().mnemonic().to_string())
                .or_insert(0) += 1;
            if gate.kind() == GateKind::Dff {
                dffs += 1;
            }
        }
        let by_kind: Vec<(String, usize)> = by_kind.into_iter().collect();
        NetlistStats {
            gates: self.gate_count(),
            nets: self.net_count(),
            inputs: self.inputs.len(),
            key_inputs: self.key_inputs.len(),
            outputs: self.outputs.len(),
            dffs,
            depth: self.depth().unwrap_or(0),
            by_kind,
        }
    }

    /// Total transistor-count estimate of the design (overhead model,
    /// paper Section IV-E).
    pub fn transistor_estimate(&self) -> usize {
        self.gates()
            .map(|(_, g)| g.kind().transistor_count(g.inputs().len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let c = nl.add_input("c").unwrap();
        let t = nl.add_net("t").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::And, &[a, b], t).unwrap();
        nl.add_gate(GateKind::Xor, &[t, c], y).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn build_and_validate() {
        let nl = tiny();
        nl.validate().unwrap();
        let stats = nl.stats();
        assert_eq!(stats.gates, 2);
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.depth, 2);
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut nl = Netlist::new("x");
        nl.add_net("a").unwrap();
        assert_eq!(nl.add_net("a"), Err(NetlistError::DuplicateNet("a".into())));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::Buf, &[a], y).unwrap();
        assert!(matches!(
            nl.add_gate(GateKind::Not, &[a], y),
            Err(NetlistError::MultipleDrivers(_))
        ));
        // Driving a primary input is also rejected.
        assert!(matches!(
            nl.add_gate(GateKind::Not, &[y], a),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a").unwrap();
        let y = nl.add_net("y").unwrap();
        assert_eq!(
            nl.add_gate(GateKind::Mux, &[a, a], y),
            Err(NetlistError::BadArity {
                kind: GateKind::Mux,
                got: 2
            })
        );
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = tiny();
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), 2);
        // The AND gate (driving t) must precede the XOR gate.
        let and_pos = order
            .iter()
            .position(|&g| nl.gate(g).kind() == GateKind::And)
            .unwrap();
        let xor_pos = order
            .iter()
            .position(|&g| nl.gate(g).kind() == GateKind::Xor)
            .unwrap();
        assert!(and_pos < xor_pos);
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a").unwrap();
        let x = nl.add_net("x").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::And, &[a, y], x).unwrap();
        nl.add_gate(GateKind::Buf, &[x], y).unwrap();
        assert!(matches!(
            nl.topo_order(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn remove_gate_leaves_net_undriven() {
        let mut nl = tiny();
        let and_id = nl
            .gates()
            .find(|(_, g)| g.kind() == GateKind::And)
            .map(|(id, _)| id)
            .unwrap();
        let t = nl.gate(and_id).output();
        nl.remove_gate(and_id);
        assert!(nl.net(t).driver().is_none());
        assert!(matches!(nl.validate(), Err(NetlistError::UndrivenNet(_))));
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn redirect_consumers_moves_fanout() {
        let mut nl = tiny();
        let t = nl.net_id("t").unwrap();
        let fresh = nl.add_input("t2").unwrap();
        let moved = nl.redirect_consumers(t, fresh);
        assert_eq!(moved, 1);
        nl.validate().unwrap();
        // The XOR's fan-in now references t2.
        let xor = nl
            .gates()
            .find(|(_, g)| g.kind() == GateKind::Xor)
            .map(|(_, g)| g.inputs().to_vec())
            .unwrap();
        assert!(xor.contains(&fresh));
        assert!(!xor.contains(&t));
    }

    #[test]
    fn key_inputs_are_ordered_and_flagged() {
        let mut nl = Netlist::new("k");
        let k0 = nl.add_key_input("k0").unwrap();
        let a = nl.add_input("a").unwrap();
        let k1 = nl.add_key_input("k1").unwrap();
        assert_eq!(nl.key_inputs(), &[k0, k1]);
        assert_eq!(nl.data_inputs(), vec![a]);
        assert!(nl.is_key_input(k0));
        assert!(!nl.is_key_input(a));
        assert!(nl.is_input(k0));
    }

    #[test]
    fn to_combinational_converts_dffs() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a").unwrap();
        let q = nl.add_net("q").unwrap();
        let d = nl.add_net("d").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::Xor, &[a, q], d).unwrap();
        nl.add_gate(GateKind::Dff, &[d], q).unwrap();
        nl.add_gate(GateKind::Buf, &[d], y).unwrap();
        nl.mark_output(y);
        // Sequential loop: cyclic as-is.
        assert!(nl.topo_order().is_err());
        let converted = nl.to_combinational();
        assert_eq!(converted, 1);
        nl.validate().unwrap();
        assert!(nl.inputs().contains(&q));
        assert!(nl.outputs().contains(&d));
    }

    #[test]
    fn fresh_nets_never_collide() {
        let mut nl = Netlist::new("f");
        nl.add_net("w_0").unwrap();
        let f1 = nl.fresh_net("w");
        let f2 = nl.fresh_net("w");
        assert_ne!(nl.net(f1).name(), "w_0");
        assert_ne!(f1, f2);
    }

    #[test]
    fn set_gate_kind_checks_arity() {
        let mut nl = tiny();
        let and_id = nl
            .gates()
            .find(|(_, g)| g.kind() == GateKind::And)
            .map(|(id, _)| id)
            .unwrap();
        nl.set_gate_kind(and_id, GateKind::Nor).unwrap();
        assert_eq!(nl.gate(and_id).kind(), GateKind::Nor);
        assert!(nl.set_gate_kind(and_id, GateKind::Mux).is_err());
    }

    #[test]
    fn transistor_estimate_positive() {
        assert!(tiny().transistor_estimate() > 0);
    }
}
