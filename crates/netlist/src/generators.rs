//! Synthetic benchmark circuit generators.
//!
//! The paper evaluates on ISCAS-85 (`c7552`), ISCAS-89/ITC-99 (`s35932`,
//! `s38584`, `b15`, `b20`) and MIT-LL CEP cores (`AES`, `SHA-256`, `MD5`,
//! `GPS`). Those netlists are not redistributable here, so this module
//! generates *functionally real* hosts with matching structural profiles:
//! arithmetic (ripple adders, array multipliers, comparators), wide parity
//! planes, SPN cipher rounds (PRESENT-style 4-bit S-boxes + bit
//! permutation), genuine SHA-256 message-schedule/compression steps, MD5
//! rounds and GPS C/A-code LFSRs. SAT-attack hardness of RIL-Blocks is
//! carried by the inserted key logic, so hosts only need realistic size,
//! depth and fan-out — which these provide (see DESIGN.md §2).
//!
//! Every generator is deterministic: the same parameters always produce the
//! same netlist.

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Word-level construction helpers
// ---------------------------------------------------------------------------

/// Returns the constant-`bit` net, creating the CONST gate on first use.
pub fn const_net(nl: &mut Netlist, bit: bool) -> NetId {
    let name = if bit { "const1$" } else { "const0$" };
    if let Some(id) = nl.net_id(name) {
        return id;
    }
    let id = nl.add_net(name).expect("const net name free");
    let kind = if bit {
        GateKind::Const1
    } else {
        GateKind::Const0
    };
    nl.add_gate(kind, &[], id).expect("const gate");
    id
}

fn g2(nl: &mut Netlist, kind: GateKind, a: NetId, b: NetId) -> NetId {
    nl.add_gate_fresh(kind, &[a, b], "w").expect("fresh gate")
}

fn g1(nl: &mut Netlist, kind: GateKind, a: NetId) -> NetId {
    nl.add_gate_fresh(kind, &[a], "w").expect("fresh gate")
}

/// Bitwise XOR of two equal-width words.
pub fn word_xor(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| g2(nl, GateKind::Xor, x, y))
        .collect()
}

/// Bitwise AND of two equal-width words.
pub fn word_and(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| g2(nl, GateKind::And, x, y))
        .collect()
}

/// Bitwise OR of two equal-width words.
pub fn word_or(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| g2(nl, GateKind::Or, x, y))
        .collect()
}

/// Bitwise NOT of a word.
pub fn word_not(nl: &mut Netlist, a: &[NetId]) -> Vec<NetId> {
    a.iter().map(|&x| g1(nl, GateKind::Not, x)).collect()
}

/// One-bit full adder; returns `(sum, carry_out)`.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = g2(nl, GateKind::Xor, a, b);
    let s = g2(nl, GateKind::Xor, axb, cin);
    let c1 = g2(nl, GateKind::And, a, b);
    let c2 = g2(nl, GateKind::And, axb, cin);
    let cout = g2(nl, GateKind::Or, c1, c2);
    (s, cout)
}

/// Ripple-carry addition of two equal-width words (LSB first); returns
/// `(sum, carry_out)`.
pub fn word_add(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len());
    let mut carry = const_net(nl, false);
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(nl, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Right-rotate a word by `k` positions (wiring only). Words are LSB-first,
/// so `rotr` moves bit `k` to position 0.
pub fn rotr(a: &[NetId], k: usize) -> Vec<NetId> {
    let n = a.len();
    (0..n).map(|i| a[(i + k) % n]).collect()
}

/// Logical right shift by `k` (zero-filled MSBs).
pub fn shr(nl: &mut Netlist, a: &[NetId], k: usize) -> Vec<NetId> {
    let zero = const_net(nl, false);
    let n = a.len();
    (0..n)
        .map(|i| if i + k < n { a[i + k] } else { zero })
        .collect()
}

/// Per-bit 2:1 word multiplexer: `s = 0` selects `a`.
pub fn word_mux(nl: &mut Netlist, s: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            nl.add_gate_fresh(GateKind::Mux, &[s, x, y], "m")
                .expect("mux")
        })
        .collect()
}

/// Unsigned less-than comparison (`a < b`), LSB-first words.
pub fn word_lt(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> NetId {
    assert_eq!(a.len(), b.len());
    let mut lt = const_net(nl, false);
    for (&x, &y) in a.iter().zip(b) {
        // lt = (!x & y) | ((x XNOR y) & lt)
        let nx = g1(nl, GateKind::Not, x);
        let strictly = g2(nl, GateKind::And, nx, y);
        let eq = g2(nl, GateKind::Xnor, x, y);
        let keep = g2(nl, GateKind::And, eq, lt);
        lt = g2(nl, GateKind::Or, strictly, keep);
    }
    lt
}

/// XOR-reduction (parity) tree over a slice of nets.
pub fn parity_tree(nl: &mut Netlist, nets: &[NetId]) -> NetId {
    assert!(!nets.is_empty());
    let mut layer: Vec<NetId> = nets.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for chunk in layer.chunks(2) {
            next.push(if chunk.len() == 2 {
                g2(nl, GateKind::Xor, chunk[0], chunk[1])
            } else {
                chunk[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Adds a named input word (`{name}[0]`..`{name}[width-1]`, LSB first).
pub fn input_word(nl: &mut Netlist, name: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| nl.add_input(format!("{name}[{i}]")).expect("unique input"))
        .collect()
}

/// Marks each bit of a word as a primary output, renaming is not performed.
pub fn output_word(nl: &mut Netlist, word: &[NetId]) {
    for &b in word {
        nl.mark_output(b);
    }
}

/// A 4-bit S-box realized as two-level minterm logic from its table.
/// `x` is LSB-first; returns the LSB-first output nibble.
pub fn nibble_sbox(nl: &mut Netlist, x: &[NetId], table: &[u8; 16]) -> Vec<NetId> {
    assert_eq!(x.len(), 4);
    let nots: Vec<NetId> = x.iter().map(|&b| g1(nl, GateKind::Not, b)).collect();
    // Build the 16 minterms once and share them across output bits.
    let minterms: Vec<NetId> = (0..16u8)
        .map(|m| {
            let lits: Vec<NetId> = (0..4)
                .map(|i| if (m >> i) & 1 == 1 { x[i] } else { nots[i] })
                .collect();
            nl.add_gate_fresh(GateKind::And, &lits, "mt")
                .expect("minterm")
        })
        .collect();
    (0..4)
        .map(|bit| {
            let ones: Vec<NetId> = (0..16)
                .filter(|&m| (table[m] >> bit) & 1 == 1)
                .map(|m| minterms[m])
                .collect();
            match ones.len() {
                0 => const_net(nl, false),
                1 => ones[0],
                _ => nl
                    .add_gate_fresh(GateKind::Or, &ones, "sb")
                    .expect("sbox or"),
            }
        })
        .collect()
}

/// The PRESENT cipher S-box.
pub const PRESENT_SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

// ---------------------------------------------------------------------------
// Complete benchmark circuits
// ---------------------------------------------------------------------------

/// An `n`-bit ripple-carry adder benchmark: inputs `a`, `b`, output `s` and
/// carry.
pub fn adder(n: usize) -> Netlist {
    let mut nl = Netlist::new(format!("adder{n}"));
    let a = input_word(&mut nl, "a", n);
    let b = input_word(&mut nl, "b", n);
    let (s, c) = word_add(&mut nl, &a, &b);
    output_word(&mut nl, &s);
    nl.mark_output(c);
    nl
}

/// An `n × n` unsigned array multiplier benchmark.
pub fn multiplier(n: usize) -> Netlist {
    let mut nl = Netlist::new(format!("mult{n}x{n}"));
    let a = input_word(&mut nl, "a", n);
    let b = input_word(&mut nl, "b", n);
    let zero = const_net(&mut nl, false);
    // Partial-product accumulation, row by row.
    let mut acc: Vec<NetId> = vec![zero; 2 * n];
    for (j, &bj) in b.iter().enumerate() {
        let mut row: Vec<NetId> = vec![zero; 2 * n];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = g2(&mut nl, GateKind::And, ai, bj);
        }
        let (sum, _) = word_add(&mut nl, &acc, &row);
        acc = sum;
    }
    output_word(&mut nl, &acc);
    nl
}

/// An `n`-bit magnitude comparator benchmark (`lt`, `eq`, `gt` outputs).
pub fn comparator(n: usize) -> Netlist {
    let mut nl = Netlist::new(format!("cmp{n}"));
    let a = input_word(&mut nl, "a", n);
    let b = input_word(&mut nl, "b", n);
    let lt = word_lt(&mut nl, &a, &b);
    let gt = word_lt(&mut nl, &b, &a);
    let nor = g2(&mut nl, GateKind::Nor, lt, gt);
    nl.mark_output(lt);
    nl.mark_output(nor); // eq
    nl.mark_output(gt);
    nl
}

/// A small ALU slice used by the processor-like hosts: op ∈ {add, and, or,
/// xor} selected by two control bits.
fn alu(nl: &mut Netlist, a: &[NetId], b: &[NetId], op0: NetId, op1: NetId) -> Vec<NetId> {
    let (sum, _) = word_add(nl, a, b);
    let and = word_and(nl, a, b);
    let or = word_or(nl, a, b);
    let xor = word_xor(nl, a, b);
    let lo = word_mux(nl, op0, &sum, &and);
    let hi = word_mux(nl, op0, &or, &xor);
    word_mux(nl, op1, &lo, &hi)
}

/// `c7552`-like host: the real c7552 is a 34-bit adder/magnitude comparator
/// with parity checking (3.5 k gates, 207 PI, 108 PO) — notably it contains
/// **no multiplier**, so its SAT instances sensitize easily. This host is
/// faithful to that profile: a bank of `width`-bit ripple adders, two
/// magnitude comparators, XOR mixing planes, a comparator-steered MUX
/// layer and bus-parity checkers. `c7552_like(32)` lands near 2 k gates
/// with a c7552-like PI/PO profile.
pub fn c7552_like(width: usize) -> Netlist {
    let mut nl = Netlist::new("c7552_like");
    let a = input_word(&mut nl, "a", width);
    let b = input_word(&mut nl, "b", width);
    let c = input_word(&mut nl, "c", width);
    let d = input_word(&mut nl, "d", width);
    // Adder bank (the 34-bit adder core of the real circuit).
    let (s1, c1) = word_add(&mut nl, &a, &b);
    let (s2, c2) = word_add(&mut nl, &c, &d);
    let (s3, c3) = word_add(&mut nl, &s1, &s2);
    // Magnitude comparators.
    let lt_ab = word_lt(&mut nl, &a, &b);
    let lt_s = word_lt(&mut nl, &s1, &s2);
    // XOR mixing planes (bus checksum logic).
    let ra = rotr(&a, 7);
    let rd = rotr(&d, 13);
    let m1 = word_xor(&mut nl, &s3, &ra);
    let mix = word_xor(&mut nl, &m1, &rd);
    let bc = word_xor(&mut nl, &b, &c);
    let (s4, c4) = word_add(&mut nl, &mix, &bc);
    // Comparator-steered MUX layer.
    let sel_out = word_mux(&mut nl, lt_s, &s3, &mix);
    // Parity checkers over every bus.
    let p1 = parity_tree(&mut nl, &s3);
    let p2 = parity_tree(&mut nl, &mix);
    let p3 = parity_tree(&mut nl, &s4);
    let p4 = parity_tree(&mut nl, &sel_out);
    output_word(&mut nl, &s3);
    output_word(&mut nl, &s4);
    output_word(&mut nl, &sel_out);
    for net in [c1, c2, c3, c4, lt_ab, lt_s, p1, p2, p3, p4] {
        nl.mark_output(net);
    }
    nl
}

/// `b15`-like host (ITC-99 b15 is a Viper processor subset): one ALU with an
/// operand-forwarding mux network and flag logic, unrolled `stages` times.
pub fn b15_like(width: usize, stages: usize) -> Netlist {
    let mut nl = Netlist::new("b15_like");
    let mut r0 = input_word(&mut nl, "r0", width);
    let r1 = input_word(&mut nl, "r1", width);
    for s in 0..stages {
        let op0 = nl.add_input(format!("op0_{s}")).expect("unique");
        let op1 = nl.add_input(format!("op1_{s}")).expect("unique");
        let fwd = nl.add_input(format!("fwd_{s}")).expect("unique");
        let operand = word_mux(&mut nl, fwd, &r1, &r0);
        let res = alu(&mut nl, &r0, &operand, op0, op1);
        // Flag logic: zero flag via NOR-reduction, parity flag.
        let z = nl
            .add_gate_fresh(GateKind::Nor, &res, "zf")
            .expect("zero flag");
        let p = parity_tree(&mut nl, &res);
        nl.mark_output(z);
        nl.mark_output(p);
        r0 = res;
    }
    output_word(&mut nl, &r0);
    nl
}

/// `b20`-like host (ITC-99 b20 is two b15-class processors plus glue): two
/// ALU pipelines cross-coupled through a comparator.
pub fn b20_like(width: usize, stages: usize) -> Netlist {
    let mut nl = Netlist::new("b20_like");
    let mut p0 = input_word(&mut nl, "p0", width);
    let mut p1 = input_word(&mut nl, "p1", width);
    for s in 0..stages {
        let op0 = nl.add_input(format!("opa_{s}")).expect("unique");
        let op1 = nl.add_input(format!("opb_{s}")).expect("unique");
        let a = alu(&mut nl, &p0, &p1, op0, op1);
        let b = alu(&mut nl, &p1, &p0, op1, op0);
        let swap = word_lt(&mut nl, &a, &b);
        let n0 = word_mux(&mut nl, swap, &a, &b);
        let n1 = word_mux(&mut nl, swap, &b, &a);
        p0 = n0;
        p1 = n1;
    }
    output_word(&mut nl, &p0);
    output_word(&mut nl, &p1);
    nl
}

/// `s35932`-like host: the real s35932 is a wide, shallow array of identical
/// slices. Generates `slices` parallel slices of AND/XOR/parity logic.
pub fn s35932_like(slices: usize) -> Netlist {
    let mut nl = Netlist::new("s35932_like");
    for s in 0..slices {
        let a = input_word(&mut nl, &format!("a{s}"), 8);
        let b = input_word(&mut nl, &format!("b{s}"), 8);
        let x = word_xor(&mut nl, &a, &b);
        let m = word_and(&mut nl, &a, &x);
        let o = word_or(&mut nl, &m, &b);
        let p = parity_tree(&mut nl, &o);
        output_word(&mut nl, &o);
        nl.mark_output(p);
    }
    nl
}

/// `s38584`-like host: mixed arithmetic/control slices.
pub fn s38584_like(slices: usize) -> Netlist {
    let mut nl = Netlist::new("s38584_like");
    for s in 0..slices {
        let a = input_word(&mut nl, &format!("a{s}"), 8);
        let b = input_word(&mut nl, &format!("b{s}"), 8);
        let sel = nl.add_input(format!("sel{s}")).expect("unique");
        let (sum, c) = word_add(&mut nl, &a, &b);
        let x = word_xor(&mut nl, &a, &b);
        let out = word_mux(&mut nl, sel, &sum, &x);
        output_word(&mut nl, &out);
        nl.mark_output(c);
    }
    nl
}

/// PRESENT-style SPN cipher: 64-bit state, 64-bit cipher key (as data
/// inputs), `rounds` rounds of AddRoundKey → 16 × 4-bit S-box → P-layer.
/// Stands in for the CEP AES core (see DESIGN.md §2).
pub fn spn_cipher(rounds: usize) -> Netlist {
    let mut nl = Netlist::new("aes_like_spn");
    let pt = input_word(&mut nl, "pt", 64);
    let key = input_word(&mut nl, "key", 64);
    let mut state = pt;
    for r in 0..rounds {
        // Round key: the cipher key rotated by 7*r bits (cheap schedule).
        let rk = rotr(&key, (7 * r) % 64);
        state = word_xor(&mut nl, &state, &rk);
        // S-box layer.
        let mut subbed = Vec::with_capacity(64);
        for nib in 0..16 {
            let x = &state[nib * 4..nib * 4 + 4];
            subbed.extend(nibble_sbox(&mut nl, x, &PRESENT_SBOX));
        }
        // PRESENT P-layer: bit i of the new state comes from P^{-1}; the
        // forward map sends bit i to 16*i mod 63 (63 fixed).
        let mut permuted = vec![subbed[63]; 64];
        for (i, &bit) in subbed.iter().enumerate() {
            let dst = if i == 63 { 63 } else { (16 * i) % 63 };
            permuted[dst] = bit;
        }
        state = permuted;
    }
    output_word(&mut nl, &state);
    nl
}

/// Alias for [`spn_cipher`] at the CEP-AES stand-in's default depth.
pub fn aes_like(rounds: usize) -> Netlist {
    let mut nl = spn_cipher(rounds);
    nl.set_name("aes_like");
    nl
}

/// SHA-256-like host: genuine SHA-256 message schedule (σ0/σ1) and
/// compression steps (Ch, Maj, Σ0, Σ1, 32-bit modular adds) for `steps`
/// rounds over a 16-word message block input.
pub fn sha256_like(steps: usize) -> Netlist {
    let mut nl = Netlist::new("sha256_like");
    let mut w: Vec<Vec<NetId>> = (0..16)
        .map(|i| input_word(&mut nl, &format!("w{i}"), 32))
        .collect();
    // Initial working variables from the SHA-256 IV constants.
    let iv: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut vars: Vec<Vec<NetId>> = iv
        .iter()
        .map(|&c| {
            (0..32)
                .map(|i| const_net(&mut nl, (c >> i) & 1 == 1))
                .collect()
        })
        .collect();
    let k: [u32; 8] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x39f56c25, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5,
    ];
    for t in 0..steps {
        if t >= 16 {
            // W[t] = σ1(W[t-2]) + W[t-7] + σ0(W[t-15]) + W[t-16]
            let s1 = {
                let a = rotr(&w[t - 2], 17);
                let b = rotr(&w[t - 2], 19);
                let c = shr(&mut nl, &w[t - 2], 10);
                let ab = word_xor(&mut nl, &a, &b);
                word_xor(&mut nl, &ab, &c)
            };
            let s0 = {
                let a = rotr(&w[t - 15], 7);
                let b = rotr(&w[t - 15], 18);
                let c = shr(&mut nl, &w[t - 15], 3);
                let ab = word_xor(&mut nl, &a, &b);
                word_xor(&mut nl, &ab, &c)
            };
            let (t1, _) = word_add(&mut nl, &s1, &w[t - 7]);
            let (t2, _) = word_add(&mut nl, &t1, &s0);
            let (wt, _) = word_add(&mut nl, &t2, &w[t - 16]);
            w.push(wt);
        }
        let wt = w[t].clone();
        let (a, b, c, d, e, f, g, h) = (
            vars[0].clone(),
            vars[1].clone(),
            vars[2].clone(),
            vars[3].clone(),
            vars[4].clone(),
            vars[5].clone(),
            vars[6].clone(),
            vars[7].clone(),
        );
        let sig1 = {
            let x = rotr(&e, 6);
            let y = rotr(&e, 11);
            let z = rotr(&e, 25);
            let xy = word_xor(&mut nl, &x, &y);
            word_xor(&mut nl, &xy, &z)
        };
        let ch = {
            let ef = word_and(&mut nl, &e, &f);
            let ne = word_not(&mut nl, &e);
            let ng = word_and(&mut nl, &ne, &g);
            word_xor(&mut nl, &ef, &ng)
        };
        let kt: Vec<NetId> = (0..32)
            .map(|i| const_net(&mut nl, (k[t % 8] >> i) & 1 == 1))
            .collect();
        let (t1a, _) = word_add(&mut nl, &h, &sig1);
        let (t1b, _) = word_add(&mut nl, &t1a, &ch);
        let (t1c, _) = word_add(&mut nl, &t1b, &kt);
        let (t1, _) = word_add(&mut nl, &t1c, &wt);
        let sig0 = {
            let x = rotr(&a, 2);
            let y = rotr(&a, 13);
            let z = rotr(&a, 22);
            let xy = word_xor(&mut nl, &x, &y);
            word_xor(&mut nl, &xy, &z)
        };
        let maj = {
            let ab = word_and(&mut nl, &a, &b);
            let ac = word_and(&mut nl, &a, &c);
            let bc = word_and(&mut nl, &b, &c);
            let x = word_xor(&mut nl, &ab, &ac);
            word_xor(&mut nl, &x, &bc)
        };
        let (t2, _) = word_add(&mut nl, &sig0, &maj);
        let (new_e, _) = word_add(&mut nl, &d, &t1);
        let (new_a, _) = word_add(&mut nl, &t1, &t2);
        vars = vec![new_a, a, b, c, new_e, e, f, g];
    }
    // Buffer each state bit: with few rounds some variables are still the
    // shared IV-constant nets, and outputs must be distinct.
    for v in &vars {
        for &bit in v {
            let o = nl.add_gate_fresh(GateKind::Buf, &[bit], "h").expect("buf");
            nl.mark_output(o);
        }
    }
    nl
}

/// MD5-like host: genuine MD5 F-function steps (`F = (b & c) | (!b & d)`,
/// 32-bit adds, fixed rotations) over a 4-word IV input and `steps` message
/// words.
pub fn md5_like(steps: usize) -> Netlist {
    let mut nl = Netlist::new("md5_like");
    let mut a = input_word(&mut nl, "iv_a", 32);
    let mut b = input_word(&mut nl, "iv_b", 32);
    let mut c = input_word(&mut nl, "iv_c", 32);
    let mut d = input_word(&mut nl, "iv_d", 32);
    const S: [usize; 4] = [7, 12, 17, 22];
    for t in 0..steps {
        let m = input_word(&mut nl, &format!("m{t}"), 32);
        let f = {
            let bc = word_and(&mut nl, &b, &c);
            let nb = word_not(&mut nl, &b);
            let nbd = word_and(&mut nl, &nb, &d);
            word_or(&mut nl, &bc, &nbd)
        };
        let (s1, _) = word_add(&mut nl, &a, &f);
        let (s2, _) = word_add(&mut nl, &s1, &m);
        // Left-rotate by S[t % 4] == right-rotate by 32 - S.
        let rot = rotr(&s2, 32 - S[t % 4]);
        let (nb, _) = word_add(&mut nl, &b, &rot);
        let (na, nb2, nc, nd) = (d.clone(), nb, b.clone(), c.clone());
        a = na;
        b = nb2;
        c = nc;
        d = nd;
    }
    output_word(&mut nl, &a);
    output_word(&mut nl, &b);
    output_word(&mut nl, &c);
    output_word(&mut nl, &d);
    nl
}

/// GPS C/A-code-like host: the two 10-bit Gold-code LFSRs (G1:
/// x^10+x^3+1, G2: x^10+x^9+x^8+x^6+x^3+x^2+1) unrolled for `chips` steps,
/// with the C/A chip output `G1[9] ^ G2[t2] ^ G2[t6]` per step.
pub fn gps_ca_like(chips: usize) -> Netlist {
    let mut nl = Netlist::new("gps_like");
    let mut g1 = input_word(&mut nl, "g1", 10);
    let mut g2 = input_word(&mut nl, "g2", 10);
    for _ in 0..chips {
        // C/A chip: G1 output xor a phase-select tap pair of G2.
        let tap = g2_tap(&mut nl, &g2);
        let chip = g2c(&mut nl, g1[9], tap);
        nl.mark_output(chip);
        // G1 feedback: bits 2 and 9 (x^10 + x^3 + 1).
        let f1 = g2c(&mut nl, g1[2], g1[9]);
        // G2 feedback: bits 1,2,5,7,8,9.
        let mut f2 = g2c(&mut nl, g2[1], g2[2]);
        for &i in &[5, 7, 8, 9] {
            f2 = g2c(&mut nl, f2, g2[i]);
        }
        g1 = shift_in(&g1, f1);
        g2 = shift_in(&g2, f2);
    }
    nl
}

fn g2c(nl: &mut Netlist, a: NetId, b: NetId) -> NetId {
    g2(nl, GateKind::Xor, a, b)
}

fn g2_tap(nl: &mut Netlist, g2reg: &[NetId]) -> NetId {
    // PRN 1 phase selection: taps 2 and 6.
    g2c(nl, g2reg[1], g2reg[5])
}

fn shift_in(reg: &[NetId], fb: NetId) -> Vec<NetId> {
    let mut next = Vec::with_capacity(reg.len());
    next.push(fb);
    next.extend_from_slice(&reg[..reg.len() - 1]);
    next
}

/// A sequential benchmark: an `n`-bit Fibonacci LFSR with XOR taps and a
/// parallel `n`-bit accumulator register, as real DFF-based state. Use
/// [`crate::Netlist::to_combinational`] for the full-scan combinational
/// view the locking/attack flows expect.
pub fn sequential_lfsr(n: usize, taps: &[usize]) -> Netlist {
    assert!(n >= 2, "LFSR needs at least 2 bits");
    assert!(taps.iter().all(|&t| t < n), "taps out of range");
    let mut nl = Netlist::new(format!("lfsr{n}"));
    let din = input_word(&mut nl, "din", n);
    // State registers.
    let state: Vec<NetId> = (0..n)
        .map(|i| nl.add_net(format!("q{i}")).expect("unique"))
        .collect();
    // Feedback = XOR of tap bits.
    let tap_nets: Vec<NetId> = taps.iter().map(|&t| state[t]).collect();
    let fb = if tap_nets.len() == 1 {
        nl.add_gate_fresh(GateKind::Buf, &[tap_nets[0]], "fb")
            .expect("buf")
    } else {
        nl.add_gate_fresh(GateKind::Xor, &tap_nets, "fb")
            .expect("xor")
    };
    // Next state: shift in feedback xor external data.
    let mut next = Vec::with_capacity(n);
    let first = g2(&mut nl, GateKind::Xor, fb, din[0]);
    next.push(first);
    for i in 1..n {
        next.push(g2(&mut nl, GateKind::Xor, state[i - 1], din[i]));
    }
    for i in 0..n {
        nl.add_gate(GateKind::Dff, &[next[i]], state[i])
            .expect("dff");
    }
    // Observable outputs: the state and a parity check.
    output_word(&mut nl, &state);
    let p = parity_tree(&mut nl, &state);
    nl.mark_output(p);
    nl
}

/// A random acyclic circuit for fuzzing and property tests: `n_gates`
/// random 1–2 input gates over `n_inputs` PIs, with the last `n_outputs`
/// gate outputs marked as POs. Deterministic in `seed`.
pub fn random_circuit(seed: u64, n_inputs: usize, n_gates: usize, n_outputs: usize) -> Netlist {
    assert!(n_inputs >= 1 && n_gates >= n_outputs && n_outputs >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand_{seed}"));
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| nl.add_input(format!("in{i}")).expect("unique"))
        .collect();
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut outs: Vec<NetId> = Vec::new();
    for _ in 0..n_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let arity = kind.arity().unwrap_or(2);
        let inputs: Vec<NetId> = (0..arity)
            .map(|_| nets[rng.gen_range(0..nets.len())])
            .collect();
        let out = nl.add_gate_fresh(kind, &inputs, "g").expect("gate");
        nets.push(out);
        outs.push(out);
    }
    for &o in &outs[outs.len() - n_outputs..] {
        nl.mark_output(o);
    }
    nl
}

/// Looks up a benchmark by the paper's name at a default (scaled-down, see
/// DESIGN.md §5) size. Names are case-insensitive: `c7552`, `b15`,
/// `s35932`, `s38584`, `b20`, `aes`, `sha256`, `md5`, `gps`, `c17`.
///
/// # Examples
///
/// ```
/// let nl = ril_netlist::generators::benchmark("c7552").expect("known benchmark");
/// assert!(nl.gate_count() > 500);
/// ```
pub fn benchmark(name: &str) -> Option<Netlist> {
    Some(match name.to_ascii_lowercase().as_str() {
        "c17" => crate::bench::c17(),
        "c7552" => c7552_like(32),
        "b15" => b15_like(16, 6),
        "s35932" => s35932_like(48),
        "s38584" => s38584_like(40),
        "b20" => b20_like(16, 5),
        "aes" => aes_like(3),
        "sha256" | "sha-256" => sha256_like(4),
        "md5" => md5_like(6),
        "gps" => gps_ca_like(64),
        _ => return None,
    })
}

/// All benchmark names accepted by [`benchmark`], in the paper's table
/// order.
pub const BENCHMARK_NAMES: [&str; 9] = [
    "c7552", "b15", "s35932", "s38584", "b20", "aes", "sha256", "md5", "gps",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn eval_u64(nl: &Netlist, words: &[(String, u64, usize)]) -> Vec<bool> {
        // Assign each named word's bits to inputs, eval single pattern.
        let mut sim = Simulator::new(nl).unwrap();
        let mut bits = vec![false; nl.inputs().len()];
        for (pos, &inp) in nl.inputs().iter().enumerate() {
            let name = nl.net(inp).name();
            for (prefix, value, width) in words {
                for i in 0..*width {
                    if name == format!("{prefix}[{i}]") {
                        bits[pos] = (value >> i) & 1 == 1;
                    }
                }
            }
        }
        sim.eval_bits(nl, &bits)
    }

    #[test]
    fn adder_adds() {
        let nl = adder(8);
        nl.validate().unwrap();
        for (a, b) in [(3u64, 5u64), (200, 100), (255, 1), (0, 0)] {
            let outs = eval_u64(&nl, &[("a".into(), a, 8), ("b".into(), b, 8)]);
            let mut sum = 0u64;
            for (i, &bit) in outs.iter().take(8).enumerate() {
                sum |= (bit as u64) << i;
            }
            let carry = outs[8] as u64;
            assert_eq!(sum | (carry << 8), a + b, "a={a} b={b}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let nl = multiplier(4);
        nl.validate().unwrap();
        for (a, b) in [(3u64, 5u64), (15, 15), (7, 0), (9, 11)] {
            let outs = eval_u64(&nl, &[("a".into(), a, 4), ("b".into(), b, 4)]);
            let mut prod = 0u64;
            for (i, &bit) in outs.iter().take(8).enumerate() {
                prod |= (bit as u64) << i;
            }
            assert_eq!(prod, a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn comparator_compares() {
        let nl = comparator(6);
        nl.validate().unwrap();
        for (a, b) in [(3u64, 5u64), (5, 3), (9, 9)] {
            let outs = eval_u64(&nl, &[("a".into(), a, 6), ("b".into(), b, 6)]);
            assert_eq!(outs[0], a < b);
            assert_eq!(outs[1], a == b);
            assert_eq!(outs[2], a > b);
        }
    }

    #[test]
    fn sbox_matches_table() {
        let mut nl = Netlist::new("sbox");
        let x = input_word(&mut nl, "x", 4);
        let y = nibble_sbox(&mut nl, &x, &PRESENT_SBOX);
        output_word(&mut nl, &y);
        nl.validate().unwrap();
        for v in 0u64..16 {
            let outs = eval_u64(&nl, &[("x".into(), v, 4)]);
            let mut got = 0u8;
            for (i, &b) in outs.iter().enumerate() {
                got |= (b as u8) << i;
            }
            assert_eq!(got, PRESENT_SBOX[v as usize], "x={v}");
        }
    }

    #[test]
    fn all_benchmarks_validate() {
        for name in BENCHMARK_NAMES {
            let nl = benchmark(name).unwrap();
            nl.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(nl.gate_count() > 100, "{name} too small");
            assert!(!nl.outputs().is_empty(), "{name} has no outputs");
        }
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = crate::bench::write_bench(&benchmark("aes").unwrap());
        let b = crate::bench::write_bench(&benchmark("aes").unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn spn_cipher_diffuses() {
        // Flipping one plaintext bit should change many state bits after
        // 3 rounds (avalanche).
        let nl = spn_cipher(3);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut bits = vec![false; nl.inputs().len()];
        let base = sim.eval_bits(&nl, &bits);
        bits[0] = true;
        let flipped = sim.eval_bits(&nl, &bits);
        let diff = base.iter().zip(&flipped).filter(|(a, b)| a != b).count();
        assert!(diff >= 8, "only {diff} output bits changed");
    }

    #[test]
    fn random_circuit_is_deterministic_and_valid() {
        let a = random_circuit(7, 8, 50, 4);
        let b = random_circuit(7, 8, 50, 4);
        a.validate().unwrap();
        assert_eq!(crate::bench::write_bench(&a), crate::bench::write_bench(&b));
        let c = random_circuit(8, 8, 50, 4);
        assert_ne!(crate::bench::write_bench(&a), crate::bench::write_bench(&c));
    }

    #[test]
    fn sequential_lfsr_unrolls_to_combinational() {
        let mut nl = sequential_lfsr(8, &[1, 2, 3, 7]);
        assert_eq!(nl.stats().dffs, 8);
        // Sequential: cyclic through the DFFs until converted.
        assert!(nl.topo_order().is_err());
        let converted = nl.to_combinational();
        assert_eq!(converted, 8);
        nl.validate().unwrap();
        // State bits became pseudo-PIs, next-state nets pseudo-POs.
        assert_eq!(nl.inputs().len(), 8 + 8);
        assert!(nl.outputs().len() >= 8 + 1 + 8);
    }

    #[test]
    fn gps_like_shifts() {
        let nl = gps_ca_like(16);
        nl.validate().unwrap();
        assert_eq!(nl.outputs().len(), 16);
        assert_eq!(nl.inputs().len(), 20);
    }

    #[test]
    fn sha_and_md5_hosts_validate() {
        let sha = sha256_like(2);
        sha.validate().unwrap();
        assert_eq!(sha.outputs().len(), 256);
        let md5 = md5_like(2);
        md5.validate().unwrap();
        assert_eq!(md5.outputs().len(), 128);
    }

    #[test]
    fn word_helpers_roundtrip() {
        let mut nl = Netlist::new("w");
        let a = input_word(&mut nl, "a", 8);
        let r = rotr(&a, 3);
        assert_eq!(r[0], a[3]);
        assert_eq!(r[7], a[(7 + 3) % 8]);
        let s = shr(&mut nl, &a, 2);
        assert_eq!(s[0], a[2]);
        // Top bits are the constant-0 net.
        assert_eq!(s[6], s[7]);
    }

    #[test]
    fn const_net_is_shared() {
        let mut nl = Netlist::new("c");
        let z1 = const_net(&mut nl, false);
        let z2 = const_net(&mut nl, false);
        let o1 = const_net(&mut nl, true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        assert_eq!(nl.gate_count(), 2);
    }
}
