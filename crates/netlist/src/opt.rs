//! Netlist cleanup passes: constant propagation, dead-logic sweep and
//! buffer collapsing.
//!
//! Obfuscation and attack transformations leave debris behind — tied-off
//! scan logic, decoy banyan outputs, bypassed restore units. These passes
//! normalize such netlists without changing their I/O behaviour (verified
//! by the property tests against random circuits).

use crate::gate::GateKind;
use crate::netlist::{GateId, NetId, Netlist, NetlistError};
use std::collections::{HashMap, HashSet};

/// Per-pass statistics from [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Gates whose output was proven constant and replaced.
    pub constants_folded: usize,
    /// Constant fan-ins dropped from n-ary gates.
    pub inputs_pruned: usize,
    /// Buffers collapsed into their drivers.
    pub buffers_collapsed: usize,
    /// Gates removed because no output depends on them.
    pub dead_gates_removed: usize,
}

impl OptStats {
    /// Total rewrites across all passes.
    pub fn total(&self) -> usize {
        self.constants_folded
            + self.inputs_pruned
            + self.buffers_collapsed
            + self.dead_gates_removed
    }
}

/// Runs constant propagation, buffer collapsing and the dead-logic sweep
/// to a fixpoint. Primary inputs (including key inputs) and primary
/// outputs keep their nets and names.
///
/// # Errors
///
/// Propagates structural errors (cyclic netlists).
pub fn optimize(nl: &mut Netlist) -> Result<OptStats, NetlistError> {
    let mut stats = OptStats::default();
    loop {
        let mut changed = 0;
        let folded = propagate_constants(nl)?;
        stats.constants_folded += folded.0;
        stats.inputs_pruned += folded.1;
        changed += folded.0 + folded.1;
        let buffers = collapse_buffers(nl);
        stats.buffers_collapsed += buffers;
        changed += buffers;
        if changed == 0 {
            break;
        }
    }
    let dead = sweep_dead(nl);
    stats.dead_gates_removed += dead;
    Ok(stats)
}

/// Folds gates with constant inputs. Returns
/// `(outputs replaced by constants, constant fan-ins pruned)`.
///
/// # Errors
///
/// Propagates structural errors (cyclic netlists).
pub fn propagate_constants(nl: &mut Netlist) -> Result<(usize, usize), NetlistError> {
    let order = nl.topo_order()?;
    // Constant value of a net, if proven.
    let mut value: HashMap<NetId, bool> = HashMap::new();
    for (id, net) in nl.nets() {
        if let Some(gid) = net.driver() {
            match nl.gate(gid).kind() {
                GateKind::Const0 => {
                    value.insert(id, false);
                }
                GateKind::Const1 => {
                    value.insert(id, true);
                }
                _ => {}
            }
        }
    }
    let mut folded = 0usize;
    let mut pruned = 0usize;
    for gid in order {
        let gate = nl.gate(gid);
        let kind = gate.kind();
        if matches!(kind, GateKind::Const0 | GateKind::Const1 | GateKind::Dff) {
            continue;
        }
        let out = gate.output();
        let inputs = gate.inputs().to_vec();
        let known: Vec<Option<bool>> = inputs.iter().map(|n| value.get(n).copied()).collect();

        // Fully-constant gate → constant output.
        if known.iter().all(Option::is_some) {
            let bits: Vec<bool> = known.iter().map(|b| b.expect("checked")).collect();
            let v = kind.eval_bits(&bits);
            nl.remove_gate(gid);
            nl.add_gate(
                if v {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                },
                &[],
                out,
            )?;
            value.insert(out, v);
            folded += 1;
            continue;
        }

        match kind {
            GateKind::And | GateKind::Nand => {
                if known.contains(&Some(false)) {
                    let v = kind == GateKind::Nand;
                    nl.remove_gate(gid);
                    nl.add_gate(
                        if v {
                            GateKind::Const1
                        } else {
                            GateKind::Const0
                        },
                        &[],
                        out,
                    )?;
                    value.insert(out, v);
                    folded += 1;
                } else {
                    pruned += prune_nary(nl, gid, &inputs, &known, true)?;
                }
            }
            GateKind::Or | GateKind::Nor => {
                if known.contains(&Some(true)) {
                    let v = kind == GateKind::Or;
                    nl.remove_gate(gid);
                    nl.add_gate(
                        if v {
                            GateKind::Const1
                        } else {
                            GateKind::Const0
                        },
                        &[],
                        out,
                    )?;
                    value.insert(out, v);
                    folded += 1;
                } else {
                    pruned += prune_nary(nl, gid, &inputs, &known, false)?;
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // Drop constant fan-ins, folding their parity into the kind.
                let survivors: Vec<NetId> = inputs
                    .iter()
                    .zip(&known)
                    .filter(|(_, k)| k.is_none())
                    .map(|(&n, _)| n)
                    .collect();
                let dropped = inputs.len() - survivors.len();
                if dropped == 0 {
                    continue;
                }
                let parity = known.iter().flatten().fold(false, |acc, &b| acc ^ b);
                let inverted = (kind == GateKind::Xnor) ^ parity;
                let new_kind = match survivors.len() {
                    0 => unreachable!("all-constant case handled above"),
                    1 => {
                        if inverted {
                            GateKind::Not
                        } else {
                            GateKind::Buf
                        }
                    }
                    _ => {
                        if inverted {
                            GateKind::Xnor
                        } else {
                            GateKind::Xor
                        }
                    }
                };
                nl.remove_gate(gid);
                nl.add_gate(new_kind, &survivors, out)?;
                pruned += dropped;
            }
            GateKind::Mux => {
                if let Some(sel) = known[0] {
                    let chosen = if sel { inputs[2] } else { inputs[1] };
                    nl.remove_gate(gid);
                    nl.add_gate(GateKind::Buf, &[chosen], out)?;
                    if let Some(&v) = value.get(&chosen) {
                        value.insert(out, v);
                    }
                    folded += 1;
                }
            }
            _ => {}
        }
    }
    Ok((folded, pruned))
}

/// Drops identity-element constant fan-ins (`1` for AND-family, `0` for
/// OR/XOR-family) from an n-ary gate, rebuilding it with the survivors.
fn prune_nary(
    nl: &mut Netlist,
    gid: GateId,
    inputs: &[NetId],
    known: &[Option<bool>],
    and_family: bool,
) -> Result<usize, NetlistError> {
    let identity = and_family; // AND: 1 is neutral; OR: 0 is neutral.
    let keep: Vec<NetId> = inputs
        .iter()
        .zip(known)
        .filter(|(_, k)| **k != Some(identity))
        .map(|(&n, _)| n)
        .collect();
    let dropped = inputs.len() - keep.len();
    if dropped == 0 || keep.is_empty() {
        return Ok(0);
    }
    let kind = nl.gate(gid).kind();
    let out = nl.gate(gid).output();
    let new_kind = if keep.len() == 1 {
        match kind {
            GateKind::And | GateKind::Or => GateKind::Buf,
            GateKind::Nand | GateKind::Nor => GateKind::Not,
            other => other,
        }
    } else {
        kind
    };
    nl.remove_gate(gid);
    nl.add_gate(new_kind, &keep, out)?;
    Ok(dropped)
}

/// Collapses `BUF` gates whose output is not a primary output: consumers
/// are redirected to the buffer's input. Returns the number collapsed.
pub fn collapse_buffers(nl: &mut Netlist) -> usize {
    let candidates: Vec<GateId> = nl
        .gates()
        .filter(|(_, g)| g.kind() == GateKind::Buf && !nl.outputs().contains(&g.output()))
        .map(|(id, _)| id)
        .collect();
    let mut collapsed = 0;
    for gid in candidates {
        let gate = nl.gate(gid);
        let (src, out) = (gate.inputs()[0], gate.output());
        if src == out {
            continue;
        }
        nl.remove_gate(gid);
        nl.redirect_consumers(out, src);
        collapsed += 1;
    }
    collapsed
}

/// Removes every gate that no primary output transitively depends on.
/// Returns the number removed.
pub fn sweep_dead(nl: &mut Netlist) -> usize {
    let mut live_nets: HashSet<NetId> = nl.outputs().iter().copied().collect();
    let mut live_gates: HashSet<GateId> = HashSet::new();
    let mut stack: Vec<NetId> = live_nets.iter().copied().collect();
    while let Some(n) = stack.pop() {
        if let Some(gid) = nl.net(n).driver() {
            if live_gates.insert(gid) {
                for &inp in nl.gate(gid).inputs() {
                    if live_nets.insert(inp) {
                        stack.push(inp);
                    }
                }
            }
        }
    }
    let dead: Vec<GateId> = nl
        .gates()
        .filter(|(id, _)| !live_gates.contains(id))
        .map(|(id, _)| id)
        .collect();
    for gid in &dead {
        nl.remove_gate(*gid);
    }
    dead.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::parse_bench;
    use crate::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn equivalent(before: &Netlist, after: &Netlist, patterns: usize) -> bool {
        let mut s1 = Simulator::new(before).expect("sim");
        let mut s2 = Simulator::new(after).expect("sim");
        let mut rng = StdRng::seed_from_u64(404);
        let nd = before.data_inputs().len();
        let nk = before.key_inputs().len();
        for _ in 0..patterns {
            let data: Vec<u64> = (0..nd).map(|_| rng.gen()).collect();
            let keys: Vec<u64> = (0..nk).map(|_| rng.gen()).collect();
            if s1.eval_words(before, &data, &keys) != s2.eval_words(after, &data, &keys) {
                return false;
            }
        }
        true
    }

    #[test]
    fn constants_fold_through_logic() {
        let text = "INPUT(a)\nOUTPUT(y)\nz = CONST0()\no = CONST1()\n\
                    t1 = AND(a, z)\nt2 = OR(t1, o)\ny = XOR(t2, z)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let before = nl.clone();
        let stats = optimize(&mut nl).unwrap();
        assert!(stats.constants_folded >= 2, "{stats:?}");
        assert!(equivalent(&before, &nl, 4));
        // y is constant 1 now: its driver folds to CONST1.
        let y = nl.net_id("y").unwrap();
        let driver = nl.net(y).driver().unwrap();
        assert_eq!(nl.gate(driver).kind(), GateKind::Const1);
    }

    #[test]
    fn neutral_inputs_are_pruned() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\no = CONST1()\ny = AND(a, b, o)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let before = nl.clone();
        let stats = optimize(&mut nl).unwrap();
        assert_eq!(stats.inputs_pruned, 1);
        assert!(equivalent(&before, &nl, 4));
        let y = nl.net_id("y").unwrap();
        let driver = nl.net(y).driver().unwrap();
        assert_eq!(nl.gate(driver).inputs().len(), 2);
    }

    #[test]
    fn mux_with_constant_select_becomes_wire() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nz = CONST0()\ny = MUX(z, a, b)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let before = nl.clone();
        optimize(&mut nl).unwrap();
        assert!(equivalent(&before, &nl, 4));
        // Select 0 picks input `a`; a BUF driving a PO is retained.
        let y = nl.net_id("y").unwrap();
        let driver = nl.net(y).driver().unwrap();
        assert_eq!(nl.gate(driver).kind(), GateKind::Buf);
        assert_eq!(nl.gate(driver).inputs()[0], nl.net_id("a").unwrap());
    }

    #[test]
    fn dead_logic_is_swept() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead1 = AND(a, a)\ndead2 = XOR(dead1, a)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let removed = sweep_dead(&mut nl);
        assert_eq!(removed, 2);
        assert_eq!(nl.gate_count(), 1);
        nl.validate().unwrap();
    }

    #[test]
    fn internal_buffers_collapse_but_po_buffers_stay() {
        let text = "INPUT(a)\nOUTPUT(y)\nt = BUF(a)\nu = BUF(t)\ny = BUF(u)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let before = nl.clone();
        let stats = optimize(&mut nl).unwrap();
        assert_eq!(stats.buffers_collapsed, 2);
        assert!(equivalent(&before, &nl, 2));
        // The PO-driving buffer survives so `y` keeps its name.
        assert_eq!(nl.gate_count(), 1);
    }

    #[test]
    fn tied_off_scan_logic_simplifies_away() {
        // The attacker_view idiom: SE tied to 0 makes SE-XOR stages
        // transparent; optimization should erase them.
        let text = "INPUT(a)\nKEYINPUT(kse)\nOUTPUT(y)\nse = CONST0()\n\
                    g = AND(se, kse)\ncore = NOT(a)\ny = XOR(core, g)\n";
        let mut nl = parse_bench("c", text).unwrap();
        let before = nl.clone();
        let stats = optimize(&mut nl).unwrap();
        assert!(stats.total() > 0);
        assert!(equivalent(&before, &nl, 4));
        // Only the NOT (plus possibly a PO buffer) remains live.
        assert!(nl.gate_count() <= 2, "{}", nl.gate_count());
    }

    #[test]
    fn optimization_preserves_random_circuits() {
        for seed in 0..30 {
            let mut nl = generators::random_circuit(seed, 6, 40, 5);
            let before = nl.clone();
            optimize(&mut nl).unwrap();
            nl.validate().unwrap();
            assert!(equivalent(&before, &nl, 8), "seed {seed}");
        }
    }

    #[test]
    fn benchmarks_shrink_or_stay_without_changing_function() {
        for name in ["c7552", "gps"] {
            let mut nl = generators::benchmark(name).unwrap();
            let before = nl.clone();
            let gates_before = nl.gate_count();
            optimize(&mut nl).unwrap();
            assert!(nl.gate_count() <= gates_before);
            assert!(equivalent(&before, &nl, 8), "{name}");
        }
    }
}
