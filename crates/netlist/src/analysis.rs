//! Generation-stamped cached structural analyses over a [`Netlist`].
//!
//! Every structural query the rest of the workspace leans on — fanout
//! tables, topological order, levelization, structural hashing, key-bit
//! fan-out cones — used to be recomputed from scratch on each call. This
//! module stores them once in an [`AnalysisCache`] embedded in the
//! [`Netlist`]; mutating edits invalidate exactly the entries they can
//! affect (and maintain the fanout table incrementally instead of dropping
//! it), so repeated cone queries after a morph cost a hash-map read, not a
//! full netlist walk.
//!
//! Invalidation matrix (rows: edits, columns: cached entries):
//!
//! | edit                | fanout      | topo  | levels | hash | key cones |
//! |---------------------|-------------|-------|--------|------|-----------|
//! | `add_net`           | extend      | keep  | keep   | keep | keep      |
//! | `add_input`         | extend      | keep  | keep   | drop | keep      |
//! | `add_key_input`     | extend      | keep  | keep   | drop | extend    |
//! | `mark_output`       | keep        | keep  | keep   | drop | drop      |
//! | `add_gate`          | attach      | drop  | drop   | drop | drop      |
//! | `remove_gate`       | detach      | drop  | drop   | drop | drop      |
//! | `replace_fanin`     | move        | drop  | drop   | drop | drop      |
//! | `redirect_consumers`| move        | drop  | drop   | drop | drop      |
//! | `set_gate_kind`     | keep        | keep  | keep   | drop | keep      |
//!
//! The cache lives behind a [`std::sync::RwLock`] so a shared `&Netlist`
//! (the bench sweeps fan netlists across threads) can fill entries lazily;
//! mutators hold `&mut Netlist` and edit the cache lock-free through
//! `get_mut`. All returned collections are sorted so downstream iteration
//! is deterministic regardless of hash-map seeding.

#![deny(clippy::iter_over_hash_type)]

use crate::netlist::{GateId, NetId, Netlist, NetlistError};
use std::sync::{Arc, RwLock};

/// The net → consuming-gates table, maintained incrementally across edits.
///
/// A gate listing the same net twice in its fan-in appears once per
/// occurrence (mirroring the historical `fanout_map` semantics); each
/// per-net list is kept sorted by [`GateId`].
#[derive(Debug, Clone, Default)]
pub struct FanoutTable {
    consumers: Vec<Vec<GateId>>,
}

impl FanoutTable {
    fn build(nl: &Netlist) -> FanoutTable {
        let mut consumers = vec![Vec::new(); nl.net_count()];
        for (id, gate) in nl.gates() {
            for &inp in gate.inputs() {
                consumers[inp.index()].push(id);
            }
        }
        for list in &mut consumers {
            list.sort_unstable();
        }
        FanoutTable { consumers }
    }

    /// Gates consuming `net`, sorted by id (one entry per fan-in position).
    pub fn consumers(&self, net: NetId) -> &[GateId] {
        self.consumers
            .get(net.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of nets the table covers.
    pub fn len(&self) -> usize {
        self.consumers.len()
    }

    /// Whether the table covers no nets.
    pub fn is_empty(&self) -> bool {
        self.consumers.is_empty()
    }

    fn note_net_added(&mut self) {
        self.consumers.push(Vec::new());
    }

    fn attach(&mut self, net: NetId, gate: GateId) {
        let list = &mut self.consumers[net.index()];
        let pos = list.partition_point(|&g| g < gate);
        list.insert(pos, gate);
    }

    fn detach(&mut self, net: NetId, gate: GateId) {
        let list = &mut self.consumers[net.index()];
        if let Ok(pos) = list.binary_search(&gate) {
            list.remove(pos);
        }
    }
}

/// Per-net combinational levels plus the overall depth.
#[derive(Debug, Clone, Default)]
pub struct LevelMap {
    levels: Vec<usize>,
    depth: usize,
}

impl LevelMap {
    /// The combinational level of `net` (0 for primary inputs and dangling
    /// nets; a gate output is one more than its deepest fan-in).
    pub fn level(&self, net: NetId) -> usize {
        self.levels.get(net.index()).copied().unwrap_or(0)
    }

    /// Longest combinational path length in gate levels.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Key-bit structural analyses: per-bit fan-out cones and the inverse map
/// from primary outputs to the key bits in their fan-in support.
///
/// Both directions drive the incremental post-morph machinery: a morph
/// reports which key bits changed, the cones say which gates those bits
/// touch, and the output support says which primary outputs must be
/// re-checked (everything else provably kept its verdict).
#[derive(Debug, Clone, Default)]
pub struct KeyAnalysis {
    cones: Vec<Vec<GateId>>,
    output_support: Vec<Vec<usize>>,
}

impl KeyAnalysis {
    fn build(nl: &Netlist, fanout: &FanoutTable) -> KeyAnalysis {
        let n_nets = nl.net_count();
        let key_inputs = nl.key_inputs();
        let mut cones = Vec::with_capacity(key_inputs.len());
        // reached[bit] marks every net structurally downstream of key bit
        // `bit` (including the key net itself).
        let mut reached: Vec<Vec<bool>> = Vec::with_capacity(key_inputs.len());
        for &k in key_inputs {
            let mut seen = vec![false; n_nets];
            let mut cone: Vec<GateId> = Vec::new();
            let mut in_cone = vec![false; nl.gate_arena_len()];
            let mut stack = vec![k];
            while let Some(n) = stack.pop() {
                if std::mem::replace(&mut seen[n.index()], true) {
                    continue;
                }
                for &gid in fanout.consumers(n) {
                    if !std::mem::replace(&mut in_cone[gid.index()], true) {
                        cone.push(gid);
                        stack.push(nl.gate(gid).output());
                    }
                }
            }
            cone.sort_unstable();
            cones.push(cone);
            reached.push(seen);
        }
        let output_support = nl
            .outputs()
            .iter()
            .map(|&o| {
                (0..key_inputs.len())
                    .filter(|&bit| reached[bit][o.index()])
                    .collect()
            })
            .collect();
        KeyAnalysis {
            cones,
            output_support,
        }
    }

    /// The fan-out cone of key bit `bit` (sorted gate ids). Empty slice for
    /// out-of-range bits.
    pub fn cone(&self, bit: usize) -> &[GateId] {
        self.cones.get(bit).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of key bits covered.
    pub fn key_bits(&self) -> usize {
        self.cones.len()
    }

    /// Sorted key-bit indices in the structural support of output index
    /// `out` (position in [`Netlist::outputs`]).
    pub fn output_support(&self, out: usize) -> &[usize] {
        self.output_support
            .get(out)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Output indices whose support intersects `bits` (sorted, deduped).
    /// `bits` need not be sorted.
    pub fn dirty_outputs(&self, bits: &[usize]) -> Vec<usize> {
        let mut changed = vec![false; self.cones.len()];
        for &b in bits {
            if let Some(slot) = changed.get_mut(b) {
                *slot = true;
            }
        }
        self.output_support
            .iter()
            .enumerate()
            .filter(|(_, support)| support.iter().any(|&b| changed[b]))
            .map(|(i, _)| i)
            .collect()
    }
}

#[derive(Debug, Clone, Default)]
struct CacheInner {
    fanout: Option<Arc<FanoutTable>>,
    topo: Option<Result<Arc<Vec<GateId>>, NetlistError>>,
    levels: Option<Result<Arc<LevelMap>, NetlistError>>,
    structural_hash: Option<u64>,
    keys: Option<Arc<KeyAnalysis>>,
}

/// Lazily-filled, precisely-invalidated analysis store embedded in each
/// [`Netlist`]. See the module docs for the invalidation matrix.
#[derive(Default)]
pub struct AnalysisCache {
    inner: RwLock<CacheInner>,
}

impl Clone for AnalysisCache {
    fn clone(&self) -> AnalysisCache {
        AnalysisCache {
            inner: RwLock::new(self.inner.read().expect("analysis cache lock").clone()),
        }
    }
}

impl std::fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().expect("analysis cache lock");
        f.debug_struct("AnalysisCache")
            .field("fanout", &inner.fanout.is_some())
            .field("topo", &inner.topo.is_some())
            .field("levels", &inner.levels.is_some())
            .field("structural_hash", &inner.structural_hash)
            .field("keys", &inner.keys.is_some())
            .finish()
    }
}

impl AnalysisCache {
    /// The cached fanout table, built on first use and maintained
    /// incrementally afterwards.
    pub(crate) fn fanout(&self, nl: &Netlist) -> Arc<FanoutTable> {
        if let Some(t) = &self.inner.read().expect("analysis cache lock").fanout {
            return Arc::clone(t);
        }
        let built = Arc::new(FanoutTable::build(nl));
        let mut inner = self.inner.write().expect("analysis cache lock");
        inner.fanout.get_or_insert(built).clone()
    }

    pub(crate) fn topo(&self, nl: &Netlist) -> Result<Arc<Vec<GateId>>, NetlistError> {
        if let Some(t) = &self.inner.read().expect("analysis cache lock").topo {
            return t.clone();
        }
        let computed = compute_topo(nl, &self.fanout(nl)).map(Arc::new);
        let mut inner = self.inner.write().expect("analysis cache lock");
        inner.topo.get_or_insert(computed).clone()
    }

    pub(crate) fn levels(&self, nl: &Netlist) -> Result<Arc<LevelMap>, NetlistError> {
        if let Some(l) = &self.inner.read().expect("analysis cache lock").levels {
            return l.clone();
        }
        let computed = self
            .topo(nl)
            .map(|order| Arc::new(compute_levels(nl, &order)));
        let mut inner = self.inner.write().expect("analysis cache lock");
        inner.levels.get_or_insert(computed).clone()
    }

    pub(crate) fn structural_hash(&self, nl: &Netlist) -> u64 {
        if let Some(h) = self
            .inner
            .read()
            .expect("analysis cache lock")
            .structural_hash
        {
            return h;
        }
        let computed = compute_structural_hash(nl);
        let mut inner = self.inner.write().expect("analysis cache lock");
        *inner.structural_hash.get_or_insert(computed)
    }

    pub(crate) fn keys(&self, nl: &Netlist) -> Arc<KeyAnalysis> {
        if let Some(k) = &self.inner.read().expect("analysis cache lock").keys {
            return Arc::clone(k);
        }
        let built = Arc::new(KeyAnalysis::build(nl, &self.fanout(nl)));
        let mut inner = self.inner.write().expect("analysis cache lock");
        inner.keys.get_or_insert(built).clone()
    }

    /// Whether an entry is currently cached (test/diagnostic hook).
    pub fn has_fanout(&self) -> bool {
        self.inner
            .read()
            .expect("analysis cache lock")
            .fanout
            .is_some()
    }

    /// Whether the topological order is currently cached.
    pub fn has_topo(&self) -> bool {
        self.inner
            .read()
            .expect("analysis cache lock")
            .topo
            .is_some()
    }

    // ---- mutation hooks (called with `&mut Netlist` held) ----

    fn inner_mut(&mut self) -> &mut CacheInner {
        self.inner.get_mut().expect("analysis cache lock")
    }

    pub(crate) fn note_net_added(&mut self) {
        if let Some(f) = self.inner_mut().fanout.as_mut() {
            Arc::make_mut(f).note_net_added();
        }
    }

    pub(crate) fn note_input_added(&mut self) {
        self.inner_mut().structural_hash = None;
    }

    pub(crate) fn note_key_input_added(&mut self) {
        let inner = self.inner_mut();
        inner.structural_hash = None;
        if let Some(k) = inner.keys.as_mut() {
            // The new bit drives nothing yet: empty cone, no output support.
            Arc::make_mut(k).cones.push(Vec::new());
        }
    }

    pub(crate) fn note_output_marked(&mut self) {
        let inner = self.inner_mut();
        inner.structural_hash = None;
        inner.keys = None;
    }

    pub(crate) fn note_gate_added(&mut self, id: GateId, inputs: &[NetId]) {
        let inner = self.inner_mut();
        if let Some(f) = inner.fanout.as_mut() {
            let f = Arc::make_mut(f);
            for &inp in inputs {
                f.attach(inp, id);
            }
        }
        inner.topo = None;
        inner.levels = None;
        inner.structural_hash = None;
        inner.keys = None;
    }

    pub(crate) fn note_gate_removed(&mut self, id: GateId, inputs: &[NetId]) {
        let inner = self.inner_mut();
        if let Some(f) = inner.fanout.as_mut() {
            let f = Arc::make_mut(f);
            for &inp in inputs {
                f.detach(inp, id);
            }
        }
        inner.topo = None;
        inner.levels = None;
        inner.structural_hash = None;
        inner.keys = None;
    }

    /// `count` fan-in positions of `id` moved from `old` to `new`.
    pub(crate) fn note_fanin_moved(&mut self, id: GateId, old: NetId, new: NetId, count: usize) {
        let inner = self.inner_mut();
        if let Some(f) = inner.fanout.as_mut() {
            let f = Arc::make_mut(f);
            for _ in 0..count {
                f.detach(old, id);
                f.attach(new, id);
            }
        }
        inner.topo = None;
        inner.levels = None;
        inner.structural_hash = None;
        inner.keys = None;
    }

    pub(crate) fn note_kind_changed(&mut self) {
        self.inner_mut().structural_hash = None;
    }
}

fn compute_topo(nl: &Netlist, fanout: &FanoutTable) -> Result<Vec<GateId>, NetlistError> {
    // Kahn's algorithm over the gate arena; u32::MAX marks dead slots.
    const DEAD: u32 = u32::MAX;
    let mut indegree: Vec<u32> = vec![DEAD; nl.gate_arena_len()];
    let mut ready: Vec<GateId> = Vec::new();
    let mut live = 0usize;
    for (id, gate) in nl.gates() {
        let deps = gate
            .inputs()
            .iter()
            .filter(|&&n| nl.net(n).driver().is_some())
            .count() as u32;
        indegree[id.index()] = deps;
        live += 1;
        if deps == 0 {
            ready.push(id);
        }
    }
    let mut order = Vec::with_capacity(live);
    while let Some(id) = ready.pop() {
        order.push(id);
        let out = nl.gate(id).output();
        for &consumer in fanout.consumers(out) {
            let d = &mut indegree[consumer.index()];
            debug_assert_ne!(*d, DEAD, "consumer is live");
            *d -= 1;
            if *d == 0 {
                ready.push(consumer);
            }
        }
    }
    if order.len() != live {
        let mut placed = vec![false; nl.gate_arena_len()];
        for &id in &order {
            placed[id.index()] = true;
        }
        let stuck = nl
            .gates()
            .find(|(id, _)| !placed[id.index()])
            .map(|(id, _)| nl.net(nl.gate(id).output()).name().to_string())
            .unwrap_or_default();
        return Err(NetlistError::CombinationalCycle(stuck));
    }
    Ok(order)
}

fn compute_levels(nl: &Netlist, order: &[GateId]) -> LevelMap {
    let mut levels = vec![0usize; nl.net_count()];
    let mut depth = 0;
    for &id in order {
        let gate = nl.gate(id);
        let lvl = gate
            .inputs()
            .iter()
            .map(|n| levels[n.index()])
            .max()
            .unwrap_or(0)
            + 1;
        levels[gate.output().index()] = lvl;
        depth = depth.max(lvl);
    }
    LevelMap { levels, depth }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(state: u64, v: u64) -> u64 {
    fnv1a(state, &v.to_le_bytes())
}

/// A name-based structural hash, invariant under arena renumbering and gate
/// declaration order (but sensitive to port order, gate functions, and
/// connectivity). Two netlists that print to the same Verilog modulo gate
/// ordering hash identically; the design *name* is excluded so renamed
/// copies still match.
fn compute_structural_hash(nl: &Netlist) -> u64 {
    // Per-gate fingerprints, combined order-independently by sorting.
    let mut gate_hashes: Vec<u64> = nl
        .gates()
        .map(|(_, gate)| {
            let mut h = fnv1a(FNV_OFFSET, gate.kind().mnemonic().as_bytes());
            h = fnv1a(h, b"(");
            for &inp in gate.inputs() {
                h = fnv1a(h, nl.net(inp).name().as_bytes());
                h = fnv1a(h, b",");
            }
            h = fnv1a(h, b")->");
            fnv1a(h, nl.net(gate.output()).name().as_bytes())
        })
        .collect();
    gate_hashes.sort_unstable();
    let mut h = FNV_OFFSET;
    for gh in gate_hashes {
        h = fnv1a_u64(h, gh);
    }
    // Ports in declaration order: order is semantic (simulation vectors,
    // key bit indices, positional output matching).
    h = fnv1a(h, b"|inputs|");
    for &i in nl.inputs() {
        h = fnv1a(h, nl.net(i).name().as_bytes());
        h = fnv1a(h, b",");
    }
    h = fnv1a(h, b"|keys|");
    for &k in nl.key_inputs() {
        h = fnv1a(h, nl.net(k).name().as_bytes());
        h = fnv1a(h, b",");
    }
    h = fnv1a(h, b"|outputs|");
    for &o in nl.outputs() {
        h = fnv1a(h, nl.net(o).name().as_bytes());
        h = fnv1a(h, b",");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::c17;
    use crate::gate::GateKind;

    #[test]
    fn fanout_table_matches_fresh_build() {
        let nl = c17();
        let cached = nl.fanout();
        let fresh = FanoutTable::build(&nl);
        for (id, _) in nl.nets() {
            assert_eq!(cached.consumers(id), fresh.consumers(id), "net {id}");
        }
    }

    #[test]
    fn fanout_table_maintained_across_edits() {
        let mut nl = c17();
        let _warm = nl.fanout(); // force the cache to exist before editing
        let g10 = nl.net_id("G10").unwrap();
        let driver = nl.net(g10).driver().unwrap();
        let consumers_before = nl.fanout().consumers(g10).to_vec();
        assert!(!consumers_before.is_empty());

        // Remove a consumer of G10 and check the table tracked it.
        let victim = consumers_before[0];
        let victim_inputs = nl.gate(victim).inputs().to_vec();
        nl.remove_gate(victim);
        for &inp in &victim_inputs {
            assert!(
                !nl.fanout().consumers(inp).contains(&victim),
                "detached from {inp}"
            );
        }
        // The maintained table matches a from-scratch rebuild.
        let fresh = FanoutTable::build(&nl);
        for (id, _) in nl.nets() {
            assert_eq!(nl.fanout().consumers(id), fresh.consumers(id));
        }
        let _ = driver;
    }

    #[test]
    fn generation_bumps_on_every_edit() {
        let mut nl = Netlist::new("g");
        let g0 = nl.generation();
        let a = nl.add_input("a").unwrap();
        assert!(nl.generation() > g0);
        let y = nl.add_net("y").unwrap();
        let g1 = nl.generation();
        let gid = nl.add_gate(GateKind::Buf, &[a], y).unwrap();
        assert!(nl.generation() > g1);
        let g2 = nl.generation();
        nl.mark_output(y);
        assert!(nl.generation() > g2);
        let g3 = nl.generation();
        nl.set_gate_kind(gid, GateKind::Not).unwrap();
        assert!(nl.generation() > g3);
    }

    #[test]
    fn levels_match_depth() {
        let nl = c17();
        let levels = nl.levels().unwrap();
        assert_eq!(levels.depth(), nl.depth().unwrap());
        let g22 = nl.net_id("G22").unwrap();
        assert_eq!(levels.level(g22), 3);
        let g1 = nl.net_id("G1").unwrap();
        assert_eq!(levels.level(g1), 0);
    }

    #[test]
    fn structural_hash_ignores_gate_order_and_design_name() {
        let nl = c17();
        // Rebuild the same circuit with gates declared in reverse order.
        let mut rev = Netlist::new("c17_reversed");
        for &i in nl.inputs() {
            rev.add_input(nl.net(i).name().to_string()).unwrap();
        }
        let mut gates: Vec<_> = nl.gates().map(|(_, g)| g.clone()).collect();
        gates.reverse();
        for g in &gates {
            if rev.net_id(nl.net(g.output()).name()).is_none() {
                rev.add_net(nl.net(g.output()).name().to_string()).unwrap();
            }
        }
        for g in &gates {
            let inputs: Vec<NetId> = g
                .inputs()
                .iter()
                .map(|&n| rev.net_id(nl.net(n).name()).unwrap())
                .collect();
            let out = rev.net_id(nl.net(g.output()).name()).unwrap();
            rev.add_gate(g.kind(), &inputs, out).unwrap();
        }
        for &o in nl.outputs() {
            let id = rev.net_id(nl.net(o).name()).unwrap();
            rev.mark_output(id);
        }
        assert_eq!(nl.structural_hash(), rev.structural_hash());
    }

    #[test]
    fn structural_hash_sees_function_changes() {
        let mut nl = c17();
        let before = nl.structural_hash();
        let (gid, _) = nl.gates().next().unwrap();
        let kind = nl.gate(gid).kind();
        let new_kind = if kind == GateKind::Nand {
            GateKind::Nor
        } else {
            GateKind::Nand
        };
        nl.set_gate_kind(gid, new_kind).unwrap();
        assert_ne!(nl.structural_hash(), before);
    }

    #[test]
    fn key_analysis_cones_and_support() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a").unwrap();
        let k0 = nl.add_key_input("k0").unwrap();
        let k1 = nl.add_key_input("k1").unwrap();
        let t = nl.add_net("t").unwrap();
        let y0 = nl.add_net("y0").unwrap();
        let y1 = nl.add_net("y1").unwrap();
        let gt = nl.add_gate(GateKind::Xor, &[a, k0], t).unwrap();
        let gy0 = nl.add_gate(GateKind::And, &[t, a], y0).unwrap();
        let gy1 = nl.add_gate(GateKind::Or, &[a, k1], y1).unwrap();
        nl.mark_output(y0);
        nl.mark_output(y1);
        let keys = nl.key_analysis();
        assert_eq!(keys.key_bits(), 2);
        assert_eq!(keys.cone(0), &[gt, gy0]);
        assert_eq!(keys.cone(1), &[gy1]);
        assert_eq!(keys.output_support(0), &[0]);
        assert_eq!(keys.output_support(1), &[1]);
        assert_eq!(keys.dirty_outputs(&[0]), vec![0]);
        assert_eq!(keys.dirty_outputs(&[1]), vec![1]);
        assert_eq!(keys.dirty_outputs(&[0, 1]), vec![0, 1]);
        assert!(keys.dirty_outputs(&[]).is_empty());
        let _ = k1;
    }

    #[test]
    fn cache_entries_survive_irrelevant_edits() {
        let mut nl = c17();
        let _ = nl.topo_order().unwrap();
        assert!(nl.analysis().has_topo());
        // Adding a dangling net cannot change the gate order.
        nl.add_net("spare").unwrap();
        assert!(nl.analysis().has_topo());
        // Removing a gate can.
        let (gid, _) = nl.gates().next().unwrap();
        nl.remove_gate(gid);
        assert!(!nl.analysis().has_topo());
    }

    #[test]
    fn clone_carries_cache_but_not_aliasing() {
        let mut nl = c17();
        let _ = nl.fanout();
        let clone = nl.clone();
        assert!(clone.analysis().has_fanout());
        // Editing the original must not disturb the clone's view.
        let (gid, _) = nl.gates().next().unwrap();
        nl.remove_gate(gid);
        let fresh = FanoutTable::build(&clone);
        for (id, _) in clone.nets() {
            assert_eq!(clone.fanout().consumers(id), fresh.consumers(id));
        }
    }
}
