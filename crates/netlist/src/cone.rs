//! Logic-cone analysis: transitive fan-in / fan-out extraction.
//!
//! The paper's insertion discussion (Section III-D) contrasts random gate
//! selection with the community habit of targeting large output logic cones;
//! these helpers supply the cone statistics both policies need.
//!
//! All queries route through the netlist's [`AnalysisCache`]: fan-out
//! traversals reuse the incrementally-maintained [`FanoutTable`] instead of
//! rebuilding the net → consumers map per call, and key-bit cones come
//! straight from the cached [`KeyAnalysis`]. Results are sorted `Vec`s so
//! iteration order is deterministic.
//!
//! [`AnalysisCache`]: crate::analysis::AnalysisCache
//! [`FanoutTable`]: crate::analysis::FanoutTable
//! [`KeyAnalysis`]: crate::analysis::KeyAnalysis

#![deny(clippy::iter_over_hash_type)]

use crate::netlist::{GateId, NetId, Netlist};

/// The transitive fan-in cone of a net: every gate whose output can reach
/// `net` going forward (i.e. all gates `net` structurally depends on,
/// including its own driver). Sorted by gate id.
pub fn fanin_cone(nl: &Netlist, net: NetId) -> Vec<GateId> {
    let mut seen_nets = vec![false; nl.net_count()];
    let mut cone: Vec<GateId> = Vec::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut seen_nets[n.index()], true) {
            continue;
        }
        if let Some(gid) = nl.net(n).driver() {
            cone.push(gid);
            stack.extend(nl.gate(gid).inputs().iter().copied());
        }
    }
    cone.sort_unstable();
    cone
}

/// The transitive fan-out cone of a net: every gate whose output
/// structurally depends on `net`. Sorted by gate id.
pub fn fanout_cone(nl: &Netlist, net: NetId) -> Vec<GateId> {
    let fanout = nl.fanout();
    let mut seen_nets = vec![false; nl.net_count()];
    let mut in_cone = vec![false; nl.gate_arena_len()];
    let mut cone: Vec<GateId> = Vec::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut seen_nets[n.index()], true) {
            continue;
        }
        for &gid in fanout.consumers(n) {
            if !std::mem::replace(&mut in_cone[gid.index()], true) {
                cone.push(gid);
                stack.push(nl.gate(gid).output());
            }
        }
    }
    cone.sort_unstable();
    cone
}

/// The primary inputs in the transitive fan-in of a net (its structural
/// support). Sorted by net id.
pub fn input_support(nl: &Netlist, net: NetId) -> Vec<NetId> {
    let mut seen = vec![false; nl.net_count()];
    let mut support: Vec<NetId> = Vec::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut seen[n.index()], true) {
            continue;
        }
        match nl.net(n).driver() {
            Some(gid) => stack.extend(nl.gate(gid).inputs().iter().copied()),
            None => {
                if nl.is_input(n) {
                    support.push(n);
                }
            }
        }
    }
    support.sort_unstable();
    support
}

/// The primary outputs reachable from a gate's output net, in
/// [`Netlist::outputs`] order.
pub fn reachable_outputs(nl: &Netlist, gate: GateId) -> Vec<NetId> {
    let out = nl.gate(gate).output();
    let cone = fanout_cone(nl, out);
    let mut in_cone = vec![false; nl.net_count()];
    in_cone[out.index()] = true;
    for &g in &cone {
        in_cone[nl.gate(g).output().index()] = true;
    }
    nl.outputs()
        .iter()
        .copied()
        .filter(|o| in_cone[o.index()])
        .collect()
}

/// Per-output fan-in cone sizes, in [`Netlist::outputs`] order.
pub fn output_cone_sizes(nl: &Netlist) -> Vec<usize> {
    nl.outputs()
        .iter()
        .map(|&o| fanin_cone(nl, o).len())
        .collect()
}

/// The fan-out cone of key bit `bit`, from the cached [`KeyAnalysis`]
/// (sorted gate ids; empty for out-of-range bits).
///
/// [`KeyAnalysis`]: crate::analysis::KeyAnalysis
pub fn key_cone(nl: &Netlist, bit: usize) -> Vec<GateId> {
    nl.key_analysis().cone(bit).to_vec()
}

/// Output indices (positions in [`Netlist::outputs`]) whose structural
/// support contains any of the given key-bit indices. Sorted, deduped.
pub fn dirty_outputs(nl: &Netlist, changed_bits: &[usize]) -> Vec<usize> {
    nl.key_analysis().dirty_outputs(changed_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::c17;

    #[test]
    fn c17_cones() {
        let nl = c17();
        let g22 = nl.net_id("G22").unwrap();
        let cone = fanin_cone(&nl, g22);
        // G22 depends on G22, G10, G16, G11 drivers = 4 gates.
        assert_eq!(cone.len(), 4);

        let g23 = nl.net_id("G23").unwrap();
        let cone23 = fanin_cone(&nl, g23);
        assert_eq!(cone23.len(), 4); // G23, G16, G19, G11
    }

    #[test]
    fn support_of_c17_outputs() {
        let nl = c17();
        let g22 = nl.net_id("G22").unwrap();
        let support = input_support(&nl, g22);
        let names: Vec<&str> = {
            let mut v: Vec<&str> = support.iter().map(|&n| nl.net(n).name()).collect();
            v.sort();
            v
        };
        assert_eq!(names, vec!["G1", "G2", "G3", "G6"]);
    }

    #[test]
    fn fanout_cone_reaches_outputs() {
        let nl = c17();
        let g11 = nl.net_id("G11").unwrap();
        let cone = fanout_cone(&nl, g11);
        // G11 feeds G16 and G19; G16 feeds G22 and G23; G19 feeds G23 => 4 gates.
        assert_eq!(cone.len(), 4);
    }

    #[test]
    fn cones_are_sorted_and_deduped() {
        let nl = c17();
        for (_, netname) in [("a", "G11"), ("b", "G16")] {
            let id = nl.net_id(netname).unwrap();
            for cone in [fanout_cone(&nl, id), fanin_cone(&nl, id)] {
                let mut sorted = cone.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(cone, sorted);
            }
        }
    }

    #[test]
    fn reachable_outputs_from_inner_gate() {
        let nl = c17();
        let g11 = nl.net_id("G11").unwrap();
        let driver = nl.net(g11).driver().unwrap();
        let outs = reachable_outputs(&nl, driver);
        assert_eq!(outs.len(), 2); // both primary outputs
    }

    #[test]
    fn cone_sizes_per_output() {
        let nl = c17();
        let sizes = output_cone_sizes(&nl);
        assert_eq!(sizes, vec![4, 4]);
    }

    #[test]
    fn input_net_has_empty_fanin_cone() {
        let nl = c17();
        let g1 = nl.net_id("G1").unwrap();
        assert!(fanin_cone(&nl, g1).is_empty());
        assert_eq!(input_support(&nl, g1).len(), 1);
    }

    #[test]
    fn key_cone_matches_fanout_cone() {
        let mut nl = c17();
        // Retrofit a key input feeding G10's gate.
        let k = nl.add_key_input("k0").unwrap();
        let g10 = nl.net_id("G10").unwrap();
        let driver = nl.net(g10).driver().unwrap();
        let inputs = nl.gate(driver).inputs().to_vec();
        nl.remove_gate(driver);
        let kn = nl.add_net("g10_keyed").unwrap();
        nl.add_gate(crate::gate::GateKind::Nand, &inputs, kn)
            .unwrap();
        let masked = nl.add_net("g10_mask").unwrap();
        nl.add_gate(crate::gate::GateKind::Xor, &[kn, k], masked)
            .unwrap();
        nl.redirect_consumers(g10, masked);
        assert_eq!(key_cone(&nl, 0), fanout_cone(&nl, k));
        assert!(!dirty_outputs(&nl, &[0]).is_empty());
        assert!(dirty_outputs(&nl, &[]).is_empty());
    }
}
