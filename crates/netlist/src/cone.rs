//! Logic-cone analysis: transitive fan-in / fan-out extraction.
//!
//! The paper's insertion discussion (Section III-D) contrasts random gate
//! selection with the community habit of targeting large output logic cones;
//! these helpers supply the cone statistics both policies need.

use crate::netlist::{GateId, NetId, Netlist};
use std::collections::HashSet;

/// The transitive fan-in cone of a net: every gate whose output can reach
/// `net` going forward (i.e. all gates `net` structurally depends on,
/// including its own driver).
pub fn fanin_cone(nl: &Netlist, net: NetId) -> HashSet<GateId> {
    let mut seen_nets: HashSet<NetId> = HashSet::new();
    let mut cone: HashSet<GateId> = HashSet::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if !seen_nets.insert(n) {
            continue;
        }
        if let Some(gid) = nl.net(n).driver() {
            if cone.insert(gid) {
                stack.extend(nl.gate(gid).inputs().iter().copied());
            }
        }
    }
    cone
}

/// The transitive fan-out cone of a net: every gate whose output
/// structurally depends on `net`.
pub fn fanout_cone(nl: &Netlist, net: NetId) -> HashSet<GateId> {
    let fanout = nl.fanout_map();
    let mut seen_nets: HashSet<NetId> = HashSet::new();
    let mut cone: HashSet<GateId> = HashSet::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if !seen_nets.insert(n) {
            continue;
        }
        for &gid in &fanout[n.index()] {
            if cone.insert(gid) {
                stack.push(nl.gate(gid).output());
            }
        }
    }
    cone
}

/// The primary inputs in the transitive fan-in of a net (its structural
/// support).
pub fn input_support(nl: &Netlist, net: NetId) -> HashSet<NetId> {
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut support = HashSet::new();
    let mut stack = vec![net];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match nl.net(n).driver() {
            Some(gid) => stack.extend(nl.gate(gid).inputs().iter().copied()),
            None => {
                if nl.is_input(n) {
                    support.insert(n);
                }
            }
        }
    }
    support
}

/// The primary outputs reachable from a gate's output net.
pub fn reachable_outputs(nl: &Netlist, gate: GateId) -> Vec<NetId> {
    let out = nl.gate(gate).output();
    let cone = fanout_cone(nl, out);
    let cone_nets: HashSet<NetId> = cone.iter().map(|&g| nl.gate(g).output()).collect();
    nl.outputs()
        .iter()
        .copied()
        .filter(|o| *o == out || cone_nets.contains(o))
        .collect()
}

/// Per-output fan-in cone sizes, in [`Netlist::outputs`] order.
pub fn output_cone_sizes(nl: &Netlist) -> Vec<usize> {
    nl.outputs()
        .iter()
        .map(|&o| fanin_cone(nl, o).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::c17;

    #[test]
    fn c17_cones() {
        let nl = c17();
        let g22 = nl.net_id("G22").unwrap();
        let cone = fanin_cone(&nl, g22);
        // G22 depends on G22, G10, G16, G11 drivers = 4 gates.
        assert_eq!(cone.len(), 4);

        let g23 = nl.net_id("G23").unwrap();
        let cone23 = fanin_cone(&nl, g23);
        assert_eq!(cone23.len(), 4); // G23, G16, G19, G11
    }

    #[test]
    fn support_of_c17_outputs() {
        let nl = c17();
        let g22 = nl.net_id("G22").unwrap();
        let support = input_support(&nl, g22);
        let names: Vec<&str> = {
            let mut v: Vec<&str> = support.iter().map(|&n| nl.net(n).name()).collect();
            v.sort();
            v
        };
        assert_eq!(names, vec!["G1", "G2", "G3", "G6"]);
    }

    #[test]
    fn fanout_cone_reaches_outputs() {
        let nl = c17();
        let g11 = nl.net_id("G11").unwrap();
        let cone = fanout_cone(&nl, g11);
        // G11 feeds G16 and G19; G16 feeds G22 and G23; G19 feeds G23 => 4 gates.
        assert_eq!(cone.len(), 4);
    }

    #[test]
    fn reachable_outputs_from_inner_gate() {
        let nl = c17();
        let g11 = nl.net_id("G11").unwrap();
        let driver = nl.net(g11).driver().unwrap();
        let outs = reachable_outputs(&nl, driver);
        assert_eq!(outs.len(), 2); // both primary outputs
    }

    #[test]
    fn cone_sizes_per_output() {
        let nl = c17();
        let sizes = output_cone_sizes(&nl);
        assert_eq!(sizes, vec![4, 4]);
    }

    #[test]
    fn input_net_has_empty_fanin_cone() {
        let nl = c17();
        let g1 = nl.net_id("G1").unwrap();
        assert!(fanin_cone(&nl, g1).is_empty());
        assert_eq!(input_support(&nl, g1).len(), 1);
    }
}
