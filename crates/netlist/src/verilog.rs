//! Structural Verilog reader and writer (gate-level subset).
//!
//! Supports the flat, structural netlists EDA flows exchange:
//!
//! ```verilog
//! // KEYINPUTS: keyinput0 keyinput1
//! module c17 (G1, G2, G22);
//!   input G1, G2;
//!   output G22;
//!   wire w0;
//!   nand g0 (w0, G1, G2);
//!   assign G22 = G1 ? w0 : 1'b0;
//! endmodule
//! ```
//!
//! Recognized constructs: one `module` with a port list; `input`/`output`/
//! `wire` declarations; primitive gate instantiations (`and`, `or`,
//! `nand`, `nor`, `xor`, `xnor`, `not`, `buf`, `dff`) with the output as
//! the first terminal; and `assign` statements of the forms `wire`,
//! `1'b0`/`1'b1`, `~wire`, and the MUX ternary `sel ? a : b`. Key inputs
//! round-trip through the `// KEYINPUTS:` header comment (Verilog has no
//! standard marker; published locking tools use naming conventions).

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseVerilogError {
    /// Malformed construct with an explanation.
    Syntax(String),
    /// Structural violation while assembling the netlist.
    Netlist(NetlistError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax(m) => write!(f, "verilog syntax: {m}"),
            ParseVerilogError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for ParseVerilogError {}

impl From<NetlistError> for ParseVerilogError {
    fn from(e: NetlistError) -> Self {
        ParseVerilogError::Netlist(e)
    }
}

fn syntax(msg: impl Into<String>) -> ParseVerilogError {
    ParseVerilogError::Syntax(msg.into())
}

/// Serializes a netlist as structural Verilog.
///
/// `Lut2` gates are emitted as `assign` sum-of-products over their two
/// inputs (keeping the file synthesizable), MUXes as ternary assigns, and
/// constants as `1'b0`/`1'b1` assigns.
pub fn write_verilog(nl: &Netlist) -> String {
    let mut out = String::new();
    if !nl.key_inputs().is_empty() {
        let names: Vec<&str> = nl.key_inputs().iter().map(|&k| nl.net(k).name()).collect();
        out.push_str(&format!("// KEYINPUTS: {}\n", names.join(" ")));
    }
    let ports: Vec<&str> = nl
        .inputs()
        .iter()
        .chain(nl.outputs().iter())
        .map(|&n| nl.net(n).name())
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        sanitize(nl.name()),
        ports.join(", ")
    ));
    let inputs: Vec<&str> = nl.inputs().iter().map(|&n| nl.net(n).name()).collect();
    if !inputs.is_empty() {
        out.push_str(&format!("  input {};\n", inputs.join(", ")));
    }
    let outputs: Vec<&str> = nl.outputs().iter().map(|&n| nl.net(n).name()).collect();
    if !outputs.is_empty() {
        out.push_str(&format!("  output {};\n", outputs.join(", ")));
    }
    // Wires: every driven net that is neither input nor output.
    let io: HashSet<&str> = inputs.iter().chain(outputs.iter()).copied().collect();
    let wires: Vec<&str> = nl
        .nets()
        .filter(|(id, net)| {
            net.driver().is_some() && !io.contains(net.name()) && {
                let _ = id;
                true
            }
        })
        .map(|(_, net)| net.name())
        .collect();
    if !wires.is_empty() {
        out.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    for (gid, gate) in nl.gates() {
        let y = nl.net(gate.output()).name();
        let ins: Vec<&str> = gate.inputs().iter().map(|&n| nl.net(n).name()).collect();
        match gate.kind() {
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
            | GateKind::Not
            | GateKind::Buf
            | GateKind::Dff => {
                let prim = gate.kind().mnemonic().to_ascii_lowercase();
                out.push_str(&format!(
                    "  {prim} g{} ({y}, {});\n",
                    gid.index(),
                    ins.join(", ")
                ));
            }
            GateKind::Mux => {
                // inputs [s, a, b]: s ? b : a.
                out.push_str(&format!(
                    "  assign {y} = {} ? {} : {};\n",
                    ins[0], ins[2], ins[1]
                ));
            }
            GateKind::Const0 => out.push_str(&format!("  assign {y} = 1'b0;\n")),
            GateKind::Const1 => out.push_str(&format!("  assign {y} = 1'b1;\n")),
            GateKind::Lut2(tt) => {
                // Sum-of-products over (a, b).
                let (a, b) = (ins[0], ins[1]);
                let mut terms = Vec::new();
                for m in 0..4u8 {
                    if (tt >> m) & 1 == 1 {
                        let la = if m & 1 == 1 {
                            a.to_string()
                        } else {
                            format!("~{a}")
                        };
                        let lb = if m & 2 == 2 {
                            b.to_string()
                        } else {
                            format!("~{b}")
                        };
                        terms.push(format!("({la} & {lb})"));
                    }
                }
                let rhs = if terms.is_empty() {
                    "1'b0".to_string()
                } else {
                    terms.join(" | ")
                };
                out.push_str(&format!("  assign {y} = {rhs};\n"));
            }
        }
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        s.insert(0, 'm');
    }
    s
}

/// Parses the structural Verilog subset into a [`Netlist`].
///
/// See the module docs for the accepted grammar. The single module's name
/// becomes the design name.
///
/// # Errors
///
/// Returns [`ParseVerilogError::Syntax`] on unsupported constructs and
/// [`ParseVerilogError::Netlist`] on structural violations.
pub fn parse_verilog(text: &str) -> Result<Netlist, ParseVerilogError> {
    // Key-input marker before comment stripping.
    let key_names: HashSet<String> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("// KEYINPUTS:"))
        .flat_map(|l| l.split_whitespace().map(str::to_string))
        .collect();

    // Strip comments.
    let mut src = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("/*") {
        src.push_str(&rest[..pos]);
        match rest[pos..].find("*/") {
            Some(end) => rest = &rest[pos + end + 2..],
            None => return Err(syntax("unterminated block comment")),
        }
    }
    src.push_str(rest);
    let src: String = src
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");

    // Statement-split on `;` (plus the module header).
    let mut nl: Option<Netlist> = None;
    let mut declared_inputs: Vec<String> = Vec::new();
    let mut declared_outputs: Vec<String> = Vec::new();
    struct PendingGate {
        kind: GateKind,
        out: String,
        ins: Vec<String>,
    }
    let mut pending: Vec<PendingGate> = Vec::new();

    for raw_stmt in src.split(';') {
        let stmt = raw_stmt.split_whitespace().collect::<Vec<_>>().join(" ");
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest
                .split(['(', ' '])
                .next()
                .ok_or_else(|| syntax("module name missing"))?;
            nl = Some(Netlist::new(name));
            continue;
        }
        if stmt.starts_with("endmodule") {
            continue;
        }
        let Some(_) = nl.as_mut() else {
            return Err(syntax(format!("statement before module header: `{stmt}`")));
        };
        if let Some(rest) = stmt.strip_prefix("input ") {
            declared_inputs.extend(split_names(rest));
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("output ") {
            declared_outputs.extend(split_names(rest));
            continue;
        }
        if stmt.strip_prefix("wire ").is_some() {
            continue; // wires materialize lazily
        }
        if let Some(rest) = stmt.strip_prefix("assign ") {
            let (lhs, rhs) = rest
                .split_once('=')
                .ok_or_else(|| syntax(format!("assign without `=`: `{stmt}`")))?;
            let lhs = lhs.trim().to_string();
            let rhs = rhs.trim();
            pending.push(parse_assign_rhs(lhs, rhs)?);
            continue;
        }
        // Primitive instantiation: `prim [inst] ( out , ins... )`.
        let open = stmt
            .find('(')
            .ok_or_else(|| syntax(format!("unsupported statement: `{stmt}`")))?;
        let close = stmt
            .rfind(')')
            .ok_or_else(|| syntax(format!("missing `)`: `{stmt}`")))?;
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        let prim = head
            .first()
            .ok_or_else(|| syntax(format!("missing primitive name: `{stmt}`")))?;
        let kind = GateKind::from_mnemonic(prim)
            .filter(|k| {
                matches!(
                    k,
                    GateKind::And
                        | GateKind::Or
                        | GateKind::Nand
                        | GateKind::Nor
                        | GateKind::Xor
                        | GateKind::Xnor
                        | GateKind::Not
                        | GateKind::Buf
                        | GateKind::Dff
                )
            })
            .ok_or_else(|| syntax(format!("unknown primitive `{prim}`")))?;
        let terms: Vec<String> = stmt[open + 1..close]
            .split(',')
            .map(|t| t.trim().to_string())
            .filter(|t| !t.is_empty())
            .collect();
        if terms.len() < 2 {
            return Err(syntax(format!(
                "primitive needs output and inputs: `{stmt}`"
            )));
        }
        pending.push(PendingGate {
            kind,
            out: terms[0].clone(),
            ins: terms[1..].to_vec(),
        });
    }

    let mut nl = nl.ok_or_else(|| syntax("no module found"))?;
    for name in &declared_inputs {
        if key_names.contains(name) {
            nl.add_key_input(name.clone())?;
        } else {
            nl.add_input(name.clone())?;
        }
    }
    let ensure = |nl: &mut Netlist, name: &str| match nl.net_id(name) {
        Some(id) => id,
        None => nl.add_net(name).expect("absent checked"),
    };
    for g in pending {
        let out = ensure(&mut nl, &g.out);
        let ins: Vec<_> = g.ins.iter().map(|n| ensure(&mut nl, n)).collect();
        nl.add_gate(g.kind, &ins, out)?;
    }
    for name in &declared_outputs {
        let id = nl
            .net_id(name)
            .ok_or_else(|| syntax(format!("output `{name}` never driven or declared")))?;
        nl.mark_output(id);
    }
    return Ok(nl);

    fn split_names(rest: &str) -> Vec<String> {
        rest.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    }

    fn parse_assign_rhs(lhs: String, rhs: &str) -> Result<PendingGate, ParseVerilogError> {
        if rhs == "1'b0" {
            return Ok(PendingGate {
                kind: GateKind::Const0,
                out: lhs,
                ins: vec![],
            });
        }
        if rhs == "1'b1" {
            return Ok(PendingGate {
                kind: GateKind::Const1,
                out: lhs,
                ins: vec![],
            });
        }
        if let Some((cond, arms)) = rhs.split_once('?') {
            let (t, f) = arms
                .split_once(':')
                .ok_or_else(|| syntax(format!("ternary without `:`: `{rhs}`")))?;
            // `s ? t : f` — our MUX convention is inputs [s, f, t].
            return Ok(PendingGate {
                kind: GateKind::Mux,
                out: lhs,
                ins: vec![
                    cond.trim().to_string(),
                    f.trim().to_string(),
                    t.trim().to_string(),
                ],
            });
        }
        if let Some(n) = rhs.strip_prefix('~') {
            return Ok(PendingGate {
                kind: GateKind::Not,
                out: lhs,
                ins: vec![n.trim().to_string()],
            });
        }
        if rhs.contains(['&', '|', '(']) {
            // Sum-of-products over two variables (Lut2 writer output): fall
            // back to rejecting anything more general.
            return parse_sop(lhs, rhs);
        }
        Ok(PendingGate {
            kind: GateKind::Buf,
            out: lhs,
            ins: vec![rhs.to_string()],
        })
    }

    /// Parses the exact sum-of-products shape the writer emits for `Lut2`:
    /// `(~a & ~b) | (a & ~b) | ...` over two distinct names.
    fn parse_sop(lhs: String, rhs: &str) -> Result<PendingGate, ParseVerilogError> {
        let mut a_name: Option<String> = None;
        let mut b_name: Option<String> = None;
        let mut tt = 0u8;
        for term in rhs.split('|') {
            let term = term.trim();
            let term = term
                .strip_prefix('(')
                .and_then(|t| t.strip_suffix(')'))
                .ok_or_else(|| syntax(format!("unsupported expression `{rhs}`")))?;
            let (la, lb) = term
                .split_once('&')
                .ok_or_else(|| syntax(format!("unsupported product `{term}`")))?;
            let mut minterm = 0u8;
            for (pos, lit) in [(0u8, la.trim()), (1, lb.trim())] {
                let (neg, name) = match lit.strip_prefix('~') {
                    Some(n) => (true, n.trim()),
                    None => (false, lit),
                };
                let slot = if pos == 0 { &mut a_name } else { &mut b_name };
                match slot {
                    None => *slot = Some(name.to_string()),
                    Some(existing) if existing == name => {}
                    Some(_) => return Err(syntax(format!("mixed variables in `{rhs}`"))),
                }
                if !neg {
                    minterm |= 1 << pos;
                }
            }
            tt |= 1 << minterm;
        }
        match (a_name, b_name) {
            (Some(a), Some(b)) => Ok(PendingGate {
                kind: GateKind::Lut2(tt),
                out: lhs,
                ins: vec![a, b],
            }),
            _ => Err(syntax(format!("unsupported expression `{rhs}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::c17;
    use crate::generators;
    use crate::Simulator;

    fn roundtrip_equivalent(nl: &Netlist) {
        let text = write_verilog(nl);
        let back = parse_verilog(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.inputs().len(), nl.inputs().len());
        assert_eq!(back.outputs().len(), nl.outputs().len());
        // Functional spot check by name-aligned simulation.
        let mut s1 = Simulator::new(nl).expect("sim");
        let mut s2 = Simulator::new(&back).expect("sim");
        for pattern in [0u64, 0xDEADBEEF, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            let bits: Vec<bool> = (0..nl.inputs().len())
                .map(|i| (pattern >> (i % 64)) & 1 == 1)
                .collect();
            // Align by name: back's input order equals declaration order,
            // which matches nl's.
            assert_eq!(s1.eval_bits(nl, &bits), s2.eval_bits(&back, &bits));
        }
    }

    #[test]
    fn c17_round_trips() {
        roundtrip_equivalent(&c17());
    }

    #[test]
    fn adder_with_constants_round_trips() {
        roundtrip_equivalent(&generators::adder(5));
    }

    #[test]
    fn mux_and_lut_round_trip() {
        let text = "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\n\
                    y = MUX(s, a, b)\nz = LUT2(0x9, a, b)\n";
        let nl = crate::parse_bench("m", text).unwrap();
        roundtrip_equivalent(&nl);
        // And the emitted text contains the expected idioms.
        let v = write_verilog(&nl);
        assert!(v.contains("assign y = s ? b : a;"), "{v}");
        assert!(v.contains("assign z ="), "{v}");
    }

    #[test]
    fn key_inputs_round_trip_via_header() {
        let text = "KEYINPUT(k0)\nINPUT(a)\nOUTPUT(y)\ny = XOR(a, k0)\n";
        let nl = crate::parse_bench("locked", text).unwrap();
        let v = write_verilog(&nl);
        assert!(v.starts_with("// KEYINPUTS: k0\n"), "{v}");
        let back = parse_verilog(&v).unwrap();
        assert_eq!(back.key_inputs().len(), 1);
        assert_eq!(back.data_inputs().len(), 1);
    }

    #[test]
    fn dff_round_trips() {
        let text = "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n";
        let nl = crate::parse_bench("seq", text).unwrap();
        let v = write_verilog(&nl);
        assert!(v.contains("dff "), "{v}");
        let back = parse_verilog(&v).unwrap();
        assert_eq!(back.stats().dffs, 1);
    }

    #[test]
    fn comments_and_formatting_tolerated() {
        let v = "\
// a comment
/* block
   comment */
module m (a, y);
  input a;
  output y;
  not g0 (y, a); // trailing
endmodule
";
        let nl = parse_verilog(v).unwrap();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.name(), "m");
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(parse_verilog("not g0 (y, a);").is_err()); // before module
        assert!(parse_verilog("module m (a);\n frobnicate g0 (y, a);\nendmodule").is_err());
        assert!(parse_verilog("module m (a);\n input a;\n output y;\nendmodule").is_err());
        assert!(parse_verilog("/* unterminated").is_err());
    }

    #[test]
    fn locked_benchmark_round_trips() {
        // The full flow artifact: generator → (externally locked) → verilog.
        let nl = generators::benchmark("gps").unwrap();
        roundtrip_equivalent(&nl);
    }
}
