//! Gate primitives and truth-table evaluation.
//!
//! The gate alphabet covers everything found in ISCAS-85/89 `.bench` files
//! (n-ary AND/OR/NAND/NOR/XOR/XNOR, BUF, NOT, DFF) plus the extensions the
//! RIL-Blocks flow needs: 2-to-1 `MUX` (the SAT-simulation primitive of the
//! paper's Fig. 1), constants, and a configured 2-input `LUT2` carrying its
//! 4-bit truth table (the materialized form of a programmed MRAM LUT).

use std::fmt;

/// The kind of a logic gate.
///
/// Word-level (bit-parallel) evaluation is provided by [`GateKind::eval_words`];
/// single-bit evaluation by [`GateKind::eval_bits`].
///
/// # Examples
///
/// ```
/// use ril_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval_bits(&[true, true]), false);
/// assert_eq!(GateKind::Mux.eval_bits(&[false, true, false]), true); // s=0 -> a
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Buffer: single input, passes through.
    Buf,
    /// Inverter: single input, negated.
    Not,
    /// N-ary AND (n >= 1).
    And,
    /// N-ary OR (n >= 1).
    Or,
    /// N-ary NAND (n >= 1).
    Nand,
    /// N-ary NOR (n >= 1).
    Nor,
    /// N-ary XOR (parity, n >= 1).
    Xor,
    /// N-ary XNOR (inverted parity, n >= 1).
    Xnor,
    /// 2-to-1 multiplexer. Inputs ordered `[s, a, b]`; output is `a` when
    /// `s = 0` and `b` when `s = 1`.
    Mux,
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
    /// D flip-flop (single input). Only meaningful in sequential netlists;
    /// [`crate::Netlist::to_combinational`] converts these to pseudo-I/O
    /// under the full-scan threat model.
    Dff,
    /// A configured 2-input look-up table. Inputs ordered `[a, b]`; the
    /// output for the input pair `(a, b)` is bit `a + 2*b` of the stored
    /// 4-bit truth table (only the low 4 bits are significant).
    Lut2(u8),
}

impl GateKind {
    /// All fixed-arity basic kinds (excludes `Lut2`, which is parameterized).
    pub const BASIC: [GateKind; 12] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Dff,
    ];

    /// The canonical `.bench` mnemonic for this gate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux => "MUX",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Dff => "DFF",
            GateKind::Lut2(_) => "LUT2",
        }
    }

    /// Parses a `.bench` mnemonic (case-insensitive). `LUT2` tables are
    /// handled by the bench parser, not here.
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        Some(match s.to_ascii_uppercase().as_str() {
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "OR" => GateKind::Or,
            "NAND" => GateKind::Nand,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MUX" => GateKind::Mux,
            "CONST0" | "GND" => GateKind::Const0,
            "CONST1" | "VDD" => GateKind::Const1,
            "DFF" => GateKind::Dff,
            _ => return None,
        })
    }

    /// The exact number of inputs this kind requires, or `None` for n-ary
    /// kinds (which accept 1 or more).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Buf | GateKind::Not | GateKind::Dff => Some(1),
            GateKind::Mux => Some(3),
            GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Lut2(_) => Some(2),
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => None,
        }
    }

    /// Whether `n` inputs is a legal fan-in for this kind.
    pub fn accepts_arity(self, n: usize) -> bool {
        match self.arity() {
            Some(k) => n == k,
            None => n >= 1,
        }
    }

    /// Returns `true` for kinds whose output inverts their "base" function
    /// (NAND/NOR/XNOR/NOT).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Returns `true` if this is a combinational kind (everything but DFF).
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Dff)
    }

    /// Evaluates the gate on single-bit inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for this kind.
    pub fn eval_bits(self, inputs: &[bool]) -> bool {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self:?} does not accept {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Lut2(tt) => {
                let idx = (inputs[0] as u8) | ((inputs[1] as u8) << 1);
                (tt >> idx) & 1 == 1
            }
        }
    }

    /// Evaluates the gate on 64-way bit-parallel words (one simulation
    /// pattern per bit lane).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for this kind.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self:?} does not accept {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Lut2(tt) => {
                let a = inputs[0];
                let b = inputs[1];
                let m0 = if tt & 1 != 0 { u64::MAX } else { 0 };
                let m1 = if tt & 2 != 0 { u64::MAX } else { 0 };
                let m2 = if tt & 4 != 0 { u64::MAX } else { 0 };
                let m3 = if tt & 8 != 0 { u64::MAX } else { 0 };
                (m0 & !a & !b) | (m1 & a & !b) | (m2 & !a & b) | (m3 & a & b)
            }
        }
    }

    /// An estimate of the transistor count of a static-CMOS realization of
    /// this gate with `fanin` inputs. Used by the overhead model
    /// (paper Section IV-E).
    pub fn transistor_count(self, fanin: usize) -> usize {
        match self {
            GateKind::Buf => 4,
            GateKind::Not => 2,
            GateKind::Nand | GateKind::Nor => 2 * fanin,
            GateKind::And | GateKind::Or => 2 * fanin + 2,
            // XOR/XNOR trees: ~10T per 2-input stage.
            GateKind::Xor | GateKind::Xnor => 10 * fanin.saturating_sub(1).max(1),
            // Transmission-gate 2:1 MUX.
            GateKind::Mux => 6,
            GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Dff => 20,
            // Select-tree of a 2-input LUT (paper: 3 MUXes), storage excluded.
            GateKind::Lut2(_) => 18,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Lut2(tt) => write!(f, "LUT2(0x{:x})", tt & 0xf),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Names the 16 two-input boolean functions by their 4-bit truth table,
/// matching the paper's Table II vocabulary.
///
/// Truth-table bit `i` corresponds to the input pair `(a, b)` with
/// `i = a + 2*b`.
///
/// # Examples
///
/// ```
/// use ril_netlist::gate::function_name;
///
/// assert_eq!(function_name(0b1000), "A AND B");
/// assert_eq!(function_name(0b0110), "A XOR B");
/// ```
pub fn function_name(tt: u8) -> &'static str {
    match tt & 0xf {
        0b0000 => "0",
        0b1111 => "1",
        0b0001 => "A NOR B",
        0b1110 => "A OR B",
        0b0100 => "NOT A AND B",
        0b1011 => "A OR NOT B",
        0b0011 => "NOT A",
        0b1100 => "A",
        0b0010 => "A AND NOT B",
        0b1101 => "NOT A OR B",
        0b0101 => "NOT B",
        0b1010 => "B",
        0b0110 => "A XOR B",
        0b1001 => "A XNOR B",
        0b0111 => "A NAND B",
        0b1000 => "A AND B",
        _ => unreachable!(),
    }
}

/// Returns the 4-bit truth table of a 2-input gate kind, or `None` if the
/// kind is not a 2-input boolean function.
///
/// # Examples
///
/// ```
/// use ril_netlist::{GateKind, gate::truth_table_of};
///
/// assert_eq!(truth_table_of(GateKind::And), Some(0b1000));
/// assert_eq!(truth_table_of(GateKind::Mux), None);
/// ```
pub fn truth_table_of(kind: GateKind) -> Option<u8> {
    Some(match kind {
        GateKind::And => 0b1000,
        GateKind::Or => 0b1110,
        GateKind::Nand => 0b0111,
        GateKind::Nor => 0b0001,
        GateKind::Xor => 0b0110,
        GateKind::Xnor => 0b1001,
        GateKind::Lut2(tt) => tt & 0xf,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nary_gate_bit_semantics() {
        assert!(GateKind::And.eval_bits(&[true, true, true]));
        assert!(!GateKind::And.eval_bits(&[true, false, true]));
        assert!(GateKind::Or.eval_bits(&[false, false, true]));
        assert!(!GateKind::Or.eval_bits(&[false, false, false]));
        assert!(!GateKind::Nand.eval_bits(&[true, true]));
        assert!(GateKind::Nor.eval_bits(&[false, false]));
        assert!(GateKind::Xor.eval_bits(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bits(&[true, true]));
        assert!(GateKind::Xnor.eval_bits(&[true, true]));
    }

    #[test]
    fn unary_and_const_semantics() {
        assert!(GateKind::Buf.eval_bits(&[true]));
        assert!(!GateKind::Not.eval_bits(&[true]));
        assert!(!GateKind::Const0.eval_bits(&[]));
        assert!(GateKind::Const1.eval_bits(&[]));
        assert!(GateKind::Dff.eval_bits(&[true]));
    }

    #[test]
    fn mux_select_semantics() {
        // inputs [s, a, b]
        assert!(GateKind::Mux.eval_bits(&[false, true, false]));
        assert!(!GateKind::Mux.eval_bits(&[false, false, true]));
        assert!(GateKind::Mux.eval_bits(&[true, false, true]));
        assert!(!GateKind::Mux.eval_bits(&[true, true, false]));
    }

    #[test]
    fn lut2_covers_all_sixteen_functions() {
        for tt in 0u8..16 {
            let kind = GateKind::Lut2(tt);
            for a in [false, true] {
                for b in [false, true] {
                    let idx = (a as u8) | ((b as u8) << 1);
                    let expect = (tt >> idx) & 1 == 1;
                    assert_eq!(kind.eval_bits(&[a, b]), expect, "tt={tt:04b} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn words_agree_with_bits() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pattern in 0u8..8 {
                let bits: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
                let words: Vec<u64> = bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                let expect = if kind.eval_bits(&bits) { u64::MAX } else { 0 };
                assert_eq!(kind.eval_words(&words), expect, "{kind:?} {pattern:03b}");
            }
        }
        for pattern in 0u8..8 {
            let bits: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            let words: Vec<u64> = bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            let expect = if GateKind::Mux.eval_bits(&bits) {
                u64::MAX
            } else {
                0
            };
            assert_eq!(GateKind::Mux.eval_words(&words), expect);
        }
        for tt in 0u8..16 {
            for pattern in 0u8..4 {
                let bits: Vec<bool> = (0..2).map(|i| (pattern >> i) & 1 == 1).collect();
                let words: Vec<u64> = bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                let kind = GateKind::Lut2(tt);
                let expect = if kind.eval_bits(&bits) { u64::MAX } else { 0 };
                assert_eq!(kind.eval_words(&words), expect);
            }
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for kind in GateKind::BASIC {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_mnemonic("inv"), Some(GateKind::Not));
        assert_eq!(GateKind::from_mnemonic("FROB"), None);
    }

    #[test]
    fn arity_checks() {
        assert_eq!(GateKind::Mux.arity(), Some(3));
        assert_eq!(GateKind::Not.arity(), Some(1));
        assert_eq!(GateKind::And.arity(), None);
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(0));
        assert!(!GateKind::Mux.accepts_arity(2));
        assert!(GateKind::Const0.accepts_arity(0));
    }

    #[test]
    fn function_names_match_tables() {
        assert_eq!(function_name(0b0001), "A NOR B");
        assert_eq!(function_name(0b1110), "A OR B");
        assert_eq!(function_name(0b1000), "A AND B");
        assert_eq!(function_name(0b0111), "A NAND B");
        assert_eq!(function_name(0b1001), "A XNOR B");
    }

    #[test]
    fn truth_tables_of_two_input_kinds() {
        for (kind, tt) in [
            (GateKind::And, 0b1000u8),
            (GateKind::Or, 0b1110),
            (GateKind::Nand, 0b0111),
            (GateKind::Nor, 0b0001),
            (GateKind::Xor, 0b0110),
            (GateKind::Xnor, 0b1001),
        ] {
            assert_eq!(truth_table_of(kind), Some(tt));
            // And Lut2 with the same table computes the same function.
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(
                        kind.eval_bits(&[a, b]),
                        GateKind::Lut2(tt).eval_bits(&[a, b])
                    );
                }
            }
        }
        assert_eq!(truth_table_of(GateKind::Buf), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(GateKind::Lut2(0x8).to_string(), "LUT2(0x8)");
    }
}
