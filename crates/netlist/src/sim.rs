//! 64-way bit-parallel functional simulation.
//!
//! A [`Simulator`] compiles a combinational [`Netlist`] into a topologically
//! ordered evaluation plan once, then evaluates 64 input patterns per call
//! (one pattern per bit lane). This is the oracle engine for the attack
//! suite and the measurement engine for output-corruptibility studies.

use crate::gate::GateKind;
use crate::netlist::{GateId, NetId, Netlist, NetlistError};
use rand::Rng;

/// A compiled bit-parallel simulator over a combinational netlist.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ril_netlist::bench::c17();
/// let mut sim = ril_netlist::Simulator::new(&nl)?;
/// let outs = sim.eval_bits(&nl, &[true, false, true, false, true]);
/// assert_eq!(outs.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<GateId>,
    values: Vec<u64>,
    /// For each netlist input position: index into the data-input vector
    /// (`Ok`) or the key vector (`Err`).
    input_slots: Vec<Result<usize, usize>>,
}

impl Simulator {
    /// Compiles the evaluation plan for `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is cyclic
    /// (convert sequential designs with [`Netlist::to_combinational`] first).
    pub fn new(nl: &Netlist) -> Result<Simulator, NetlistError> {
        let order = nl.topo_order()?;
        let mut data_idx = 0;
        let mut key_idx = 0;
        let input_slots = nl
            .inputs()
            .iter()
            .map(|&i| {
                if nl.is_key_input(i) {
                    let slot = Err(key_idx);
                    key_idx += 1;
                    slot
                } else {
                    let slot = Ok(data_idx);
                    data_idx += 1;
                    slot
                }
            })
            .collect();
        Ok(Simulator {
            order,
            values: vec![0; nl.net_count()],
            input_slots,
        })
    }

    /// Evaluates 64 patterns at once. `data` is aligned with
    /// [`Netlist::data_inputs`] order and `keys` with
    /// [`Netlist::key_inputs`] order; bit lane `i` of every word belongs to
    /// pattern `i`. Returns one word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the netlist's input counts,
    /// or if `nl` is not the netlist this simulator was compiled for.
    pub fn eval_words(&mut self, nl: &Netlist, data: &[u64], keys: &[u64]) -> Vec<u64> {
        assert_eq!(
            nl.net_count(),
            self.values.len(),
            "netlist does not match compiled simulator"
        );
        for (pos, &net) in nl.inputs().iter().enumerate() {
            let word = match self.input_slots[pos] {
                Ok(d) => data[d],
                Err(k) => keys[k],
            };
            self.values[net.index()] = word;
        }
        let mut in_buf: Vec<u64> = Vec::with_capacity(4);
        for &gid in &self.order {
            let gate = nl.gate(gid);
            in_buf.clear();
            in_buf.extend(gate.inputs().iter().map(|n| self.values[n.index()]));
            self.values[gate.output().index()] = gate.kind().eval_words(&in_buf);
        }
        nl.outputs()
            .iter()
            .map(|n| self.values[n.index()])
            .collect()
    }

    /// Evaluates a single pattern given as bools over **all** primary inputs
    /// (data and key inputs interleaved in [`Netlist::inputs`] order).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the input count.
    pub fn eval_bits(&mut self, nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        assert_eq!(bits.len(), nl.inputs().len(), "input width mismatch");
        let mut data = Vec::new();
        let mut keys = Vec::new();
        for (pos, &b) in bits.iter().enumerate() {
            let w = if b { u64::MAX } else { 0 };
            match self.input_slots[pos] {
                Ok(_) => data.push(w),
                Err(_) => keys.push(w),
            }
        }
        self.eval_words(nl, &data, &keys)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Evaluates one pattern with separate data/key bit vectors.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn eval_pattern(&mut self, nl: &Netlist, data: &[bool], keys: &[bool]) -> Vec<bool> {
        let dw: Vec<u64> = data.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let kw: Vec<u64> = keys.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        self.eval_words(nl, &dw, &kw)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Reads the last-computed value word of an arbitrary net (valid after a
    /// call to [`Simulator::eval_words`]).
    pub fn net_value(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }
}

/// One gate of a [`CompiledSim`] plan: the kind plus value-array indices,
/// with the input operands flattened into [`CompiledSim::step_inputs`].
#[derive(Debug, Clone, Copy)]
struct Step {
    kind: GateKind,
    in_start: u32,
    in_len: u32,
    out: u32,
}

/// A fully self-contained bit-parallel evaluation plan.
///
/// [`Simulator`] keeps its plan thin by re-reading gate kinds and net
/// indices from the [`Netlist`] on every call, which forces long-lived
/// evaluators (the attack oracle, a served chip) to carry a full netlist
/// clone next to the simulator. `CompiledSim` bakes the topological order,
/// gate kinds, operand indices and output positions in at construction, so
/// evaluation needs **no** netlist — the plan *is* the circuit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nl = ril_netlist::bench::c17();
/// let mut sim = ril_netlist::CompiledSim::new(&nl)?;
/// drop(nl); // the plan no longer needs the netlist
/// let outs = sim.eval_words(&[u64::MAX; 5], &[]);
/// assert_eq!(outs.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSim {
    steps: Vec<Step>,
    step_inputs: Vec<u32>,
    values: Vec<u64>,
    /// Net index per primary input, aligned with [`Netlist::inputs`].
    input_nets: Vec<u32>,
    /// For each input position: data-vector index (`Ok`) or key-vector
    /// index (`Err`), as in [`Simulator`].
    input_slots: Vec<Result<usize, usize>>,
    output_nets: Vec<u32>,
    n_data: usize,
    n_keys: usize,
}

impl CompiledSim {
    /// Compiles the full evaluation plan for `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is
    /// cyclic.
    pub fn new(nl: &Netlist) -> Result<CompiledSim, NetlistError> {
        let order = nl.topo_order()?;
        let mut steps = Vec::with_capacity(order.len());
        let mut step_inputs = Vec::new();
        for gid in order {
            let gate = nl.gate(gid);
            let in_start = step_inputs.len() as u32;
            step_inputs.extend(gate.inputs().iter().map(|n| n.index() as u32));
            steps.push(Step {
                kind: gate.kind(),
                in_start,
                in_len: gate.inputs().len() as u32,
                out: gate.output().index() as u32,
            });
        }
        let mut data_idx = 0;
        let mut key_idx = 0;
        let input_slots: Vec<Result<usize, usize>> = nl
            .inputs()
            .iter()
            .map(|&i| {
                if nl.is_key_input(i) {
                    let slot = Err(key_idx);
                    key_idx += 1;
                    slot
                } else {
                    let slot = Ok(data_idx);
                    data_idx += 1;
                    slot
                }
            })
            .collect();
        Ok(CompiledSim {
            steps,
            step_inputs,
            values: vec![0; nl.net_count()],
            input_nets: nl.inputs().iter().map(|n| n.index() as u32).collect(),
            input_slots,
            output_nets: nl.outputs().iter().map(|n| n.index() as u32).collect(),
            n_data: data_idx,
            n_keys: key_idx,
        })
    }

    /// Number of data (non-key) inputs the plan expects.
    pub fn data_width(&self) -> usize {
        self.n_data
    }

    /// Number of key inputs the plan expects.
    pub fn key_width(&self) -> usize {
        self.n_keys
    }

    /// Number of primary outputs per evaluation.
    pub fn output_width(&self) -> usize {
        self.output_nets.len()
    }

    /// Evaluates 64 patterns at once, exactly like
    /// [`Simulator::eval_words`] but against the baked-in plan.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the compiled input counts.
    pub fn eval_words(&mut self, data: &[u64], keys: &[u64]) -> Vec<u64> {
        assert_eq!(data.len(), self.n_data, "data width mismatch");
        assert_eq!(keys.len(), self.n_keys, "key width mismatch");
        for (pos, &net) in self.input_nets.iter().enumerate() {
            self.values[net as usize] = match self.input_slots[pos] {
                Ok(d) => data[d],
                Err(k) => keys[k],
            };
        }
        let mut in_buf: Vec<u64> = Vec::with_capacity(4);
        for step in &self.steps {
            in_buf.clear();
            let lo = step.in_start as usize;
            in_buf.extend(
                self.step_inputs[lo..lo + step.in_len as usize]
                    .iter()
                    .map(|&n| self.values[n as usize]),
            );
            self.values[step.out as usize] = step.kind.eval_words(&in_buf);
        }
        self.output_nets
            .iter()
            .map(|&n| self.values[n as usize])
            .collect()
    }

    /// Evaluates one pattern with separate data/key bit vectors.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn eval_pattern(&mut self, data: &[bool], keys: &[bool]) -> Vec<bool> {
        let dw: Vec<u64> = data.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let kw: Vec<u64> = keys.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        self.eval_words(&dw, &kw)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

/// Generates `words` random 64-pattern words for each of `width` signals.
/// Returned as `patterns[signal]` for one word-slice call.
pub fn random_word_patterns<R: Rng>(rng: &mut R, width: usize) -> Vec<u64> {
    (0..width).map(|_| rng.gen()).collect()
}

/// Measures output corruption between two keyed circuits over random
/// patterns: the fraction of (pattern, output-bit) pairs that differ when
/// the same netlist is evaluated under `keys_a` vs `keys_b`.
///
/// `patterns` counts 64-wide pattern words (so `patterns * 64` vectors).
///
/// # Panics
///
/// Panics if key widths do not match the netlist.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rand::SeedableRng;
/// let nl = ril_netlist::parse_bench(
///     "xk", "INPUT(a)\nKEYINPUT(k)\nOUTPUT(y)\ny = XOR(a, k)\n")?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let frac = ril_netlist::sim::output_corruption(&nl, &[false], &[true], 8, &mut rng)?;
/// assert!((frac - 1.0).abs() < 1e-9); // wrong key flips every output
/// # Ok(())
/// # }
/// ```
pub fn output_corruption<R: Rng>(
    nl: &Netlist,
    keys_a: &[bool],
    keys_b: &[bool],
    patterns: usize,
    rng: &mut R,
) -> Result<f64, NetlistError> {
    let mut sim = Simulator::new(nl)?;
    let n_data = nl.data_inputs().len();
    let ka: Vec<u64> = keys_a
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    let kb: Vec<u64> = keys_b
        .iter()
        .map(|&b| if b { u64::MAX } else { 0 })
        .collect();
    let mut diff_bits = 0u64;
    let mut total_bits = 0u64;
    for _ in 0..patterns {
        let data = random_word_patterns(rng, n_data);
        let oa = sim.eval_words(nl, &data, &ka);
        let ob = sim.eval_words(nl, &data, &kb);
        for (wa, wb) in oa.iter().zip(&ob) {
            diff_bits += (wa ^ wb).count_ones() as u64;
            total_bits += 64;
        }
    }
    if total_bits == 0 {
        return Ok(0.0);
    }
    Ok(diff_bits as f64 / total_bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::c17;
    use crate::gate::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference single-pattern evaluation by recursive netlist walk.
    fn reference_eval(nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        fn value(
            nl: &Netlist,
            net: NetId,
            assign: &std::collections::HashMap<NetId, bool>,
        ) -> bool {
            if let Some(&v) = assign.get(&net) {
                return v;
            }
            let gid = nl.net(net).driver().expect("driven");
            let gate = nl.gate(gid);
            let ins: Vec<bool> = gate
                .inputs()
                .iter()
                .map(|&n| value(nl, n, assign))
                .collect();
            gate.kind().eval_bits(&ins)
        }
        let assign: std::collections::HashMap<NetId, bool> = nl
            .inputs()
            .iter()
            .copied()
            .zip(bits.iter().copied())
            .collect();
        nl.outputs()
            .iter()
            .map(|&o| value(nl, o, &assign))
            .collect()
    }

    #[test]
    fn c17_matches_reference_for_all_patterns() {
        let nl = c17();
        let mut sim = Simulator::new(&nl).unwrap();
        for pattern in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(sim.eval_bits(&nl, &bits), reference_eval(&nl, &bits));
        }
    }

    #[test]
    fn bit_parallel_lanes_are_independent() {
        let nl = c17();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let data = random_word_patterns(&mut rng, 5);
        let outs = sim.eval_words(&nl, &data, &[]);
        for lane in 0..64 {
            let bits: Vec<bool> = data.iter().map(|w| (w >> lane) & 1 == 1).collect();
            let expect = reference_eval(&nl, &bits);
            for (o, e) in outs.iter().zip(&expect) {
                assert_eq!((o >> lane) & 1 == 1, *e, "lane {lane}");
            }
        }
    }

    #[test]
    fn key_inputs_routed_separately() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("k").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::Xor, &[a, k], y).unwrap();
        nl.mark_output(y);
        let mut sim = Simulator::new(&nl).unwrap();
        let out = sim.eval_words(&nl, &[u64::MAX], &[0]);
        assert_eq!(out[0], u64::MAX);
        let out = sim.eval_words(&nl, &[u64::MAX], &[u64::MAX]);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn corruption_of_xor_key_is_total() {
        let nl =
            crate::parse_bench("xk", "INPUT(a)\nKEYINPUT(k)\nOUTPUT(y)\ny = XOR(a, k)\n").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let frac = output_corruption(&nl, &[false], &[true], 4, &mut rng).unwrap();
        assert!((frac - 1.0).abs() < 1e-12);
        let same = output_corruption(&nl, &[true], &[true], 4, &mut rng).unwrap();
        assert_eq!(same, 0.0);
    }

    #[test]
    fn net_value_readable_after_eval() {
        let nl = c17();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.eval_bits(&nl, &[true; 5]);
        let g10 = nl.net_id("G10").unwrap();
        // NAND(1,1) = 0
        assert_eq!(sim.net_value(g10) & 1, 0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn width_mismatch_panics() {
        let nl = c17();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.eval_bits(&nl, &[true; 3]);
    }

    #[test]
    fn compiled_sim_matches_simulator() {
        let nl = c17();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut compiled = CompiledSim::new(&nl).unwrap();
        assert_eq!(compiled.data_width(), 5);
        assert_eq!(compiled.key_width(), 0);
        assert_eq!(compiled.output_width(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let data = random_word_patterns(&mut rng, 5);
            assert_eq!(
                sim.eval_words(&nl, &data, &[]),
                compiled.eval_words(&data, &[])
            );
        }
    }

    #[test]
    fn compiled_sim_routes_keys_without_netlist() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a").unwrap();
        let k = nl.add_key_input("k").unwrap();
        let y = nl.add_net("y").unwrap();
        nl.add_gate(GateKind::Xor, &[a, k], y).unwrap();
        nl.mark_output(y);
        let mut compiled = CompiledSim::new(&nl).unwrap();
        drop(nl);
        assert_eq!(compiled.eval_words(&[u64::MAX], &[0])[0], u64::MAX);
        assert_eq!(compiled.eval_words(&[u64::MAX], &[u64::MAX])[0], 0);
        assert_eq!(compiled.eval_pattern(&[true], &[true]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "data width mismatch")]
    fn compiled_sim_checks_widths() {
        let nl = c17();
        let mut compiled = CompiledSim::new(&nl).unwrap();
        compiled.eval_words(&[0; 3], &[]);
    }
}
