//! Property: the Verilog emit → import round trip is lossless — the
//! re-imported netlist has the same structural hash (same gates over the
//! same named nets, same port order) and the same simulation semantics
//! as the original, across random circuits spiced with every writer
//! special case (key inputs, `Lut2` sum-of-products, MUX ternaries,
//! constants).

use proptest::prelude::*;
use ril_netlist::generators::{const_net, random_circuit};
use ril_netlist::{parse_verilog, write_verilog, GateKind, Netlist, Simulator};

/// A random circuit extended with the constructs the Verilog writer
/// lowers specially: a key input (round-trips via the `// KEYINPUTS:`
/// header), a `Lut2` (emitted as a sum-of-products `assign`), a MUX
/// (ternary `assign`), and a constant. `tt` must be non-zero — an
/// all-zeros LUT legitimately collapses to a `1'b0` constant on emit,
/// which is a semantic round trip but not a structural one.
fn spiced(seed: u64, n_inputs: usize, n_gates: usize, tt: u8) -> Netlist {
    let mut nl = random_circuit(seed, n_inputs, n_gates, 1.max(n_gates / 4));
    let key = nl.add_key_input("keyinput0").expect("fresh key input");
    let a = nl.inputs()[0];
    let lut = nl
        .add_gate_fresh(GateKind::Lut2(tt), &[a, key], "vl")
        .expect("lut gate");
    let zero = const_net(&mut nl, false);
    let sel = nl.inputs()[n_inputs - 1];
    let mux = nl
        .add_gate_fresh(GateKind::Mux, &[sel, lut, zero], "vm")
        .expect("mux gate");
    nl.mark_output(mux);
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verilog_round_trip_preserves_hash_and_semantics(
        seed in 0u64..10_000,
        n_inputs in 2usize..10,
        n_gates in 4usize..40,
        tt in 1u8..16,
        pattern_seed in any::<u64>(),
    ) {
        // Four input words derived from one sampled seed (splitmix64).
        let patterns: Vec<u64> = (0..4u64)
            .map(|i| {
                let mut z = pattern_seed
                    .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect();
        let nl = spiced(seed, n_inputs, n_gates, tt);
        let text = write_verilog(&nl);
        let back = parse_verilog(&text)
            .unwrap_or_else(|e| panic!("re-import failed: {e}\n{text}"));

        // Structural identity: same gates over the same named nets, same
        // port declarations in the same order.
        prop_assert_eq!(
            back.structural_hash(),
            nl.structural_hash(),
            "structural hash changed across the round trip:\n{}",
            text
        );
        prop_assert_eq!(back.key_inputs().len(), nl.key_inputs().len());
        prop_assert_eq!(back.gate_count(), nl.gate_count());

        // Semantic identity: identical outputs on random input patterns
        // (all inputs driven, key inputs included).
        let mut sim_a = Simulator::new(&nl).expect("original simulates");
        let mut sim_b = Simulator::new(&back).expect("re-import simulates");
        let width = nl.inputs().len();
        for p in &patterns {
            let bits: Vec<bool> = (0..width).map(|i| (p >> (i % 64)) & 1 == 1).collect();
            prop_assert_eq!(
                sim_a.eval_bits(&nl, &bits),
                sim_b.eval_bits(&back, &bits),
                "simulation diverged on pattern {:#x}",
                p
            );
        }
    }

    #[test]
    fn round_trip_is_a_fixed_point(seed in 0u64..10_000) {
        // Emitting the re-imported netlist again must give byte-identical
        // Verilog: the round trip converges after one pass.
        let nl = spiced(seed, 4, 12, 0x9);
        let text = write_verilog(&nl);
        let back = parse_verilog(&text).expect("re-import");
        prop_assert_eq!(write_verilog(&back), text);
    }
}
