//! Table I — SAT-attack seconds vs. number and size of RIL-Blocks on the
//! c7552-class host. `RIL_TABLE1_FULL=1` runs the paper's full row set.
//!
//! Cells run in parallel across `RunConfig::threads` workers; each cell
//! goes through the content-addressed cache, so an interrupted sweep
//! resumes from the cells already on disk. Full per-cell attack reports,
//! including per-DIP-iteration solver statistics, land in
//! `<out_dir>/BENCH_table1.json`.

use ril_core::RilBlockSpec;
use ril_netlist::generators;

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_sat_cell;
use crate::{print_table, CellOutcome, RunConfig};

/// The Table I reproduction.
pub struct Table1;

/// One reported Table I row: (blocks, 2x2, 8x8, 8x8x8) with `None` = ∞.
type PaperRow = (usize, Option<f64>, Option<f64>, Option<f64>);

/// The paper's Table I, for side-by-side printing.
const PAPER: &[PaperRow] = &[
    (1, Some(0.31), Some(0.63), Some(23.53)),
    (2, Some(0.35), Some(6.33), Some(198.556)),
    (3, Some(0.405), Some(20.422), None),
    (4, Some(0.55), Some(180.938), None),
    (5, Some(0.67), Some(316.231), None),
    (10, Some(1.16), None, None),
    (25, Some(34.5), None, None),
    (50, Some(102.319), None, None),
    (75, None, None, None),
    (100, None, None, None),
];

fn paper_cell(v: Option<f64>) -> String {
    v.map(|s| format!("{s}")).unwrap_or_else(|| "∞".into())
}

const SPEC_NAMES: [&str; 3] = ["2x2", "8x8", "8x8x8"];

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn describe(&self) -> &'static str {
        "Table I — SAT seconds vs RIL-Block count/size on c7552"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::benchmark("c7552").ok_or("unknown benchmark c7552")?;
        ctx.note(&format!(
            "Table I reproduction — host `{}` ({}), timeout {:?} (paper: 5 days on c7552), {} worker threads",
            host.name(),
            host.stats(),
            cfg.timeout,
            cfg.threads
        ));
        let rows_wanted: Vec<usize> = if cfg.table1_full {
            PAPER.iter().map(|r| r.0).collect()
        } else if cfg.smoke {
            vec![1, 2]
        } else {
            vec![1, 2, 3, 4, 5, 10]
        };
        let specs = [
            RilBlockSpec::size_2x2(),
            RilBlockSpec::size_8x8(),
            RilBlockSpec::size_8x8x8(),
        ];

        // One job per table cell, fanned across cores. Cell failures stay
        // in the table (`err:…`) rather than aborting the sweep.
        let cells: Vec<(usize, usize)> = rows_wanted
            .iter()
            .flat_map(|&count| (0..specs.len()).map(move |si| (count, si)))
            .collect();
        let outcomes = ctx.sweep(cfg.threads, &cells, |_, &(count, si)| {
            cached_sat_cell(
                ctx,
                &host,
                "c7552",
                specs[si],
                count,
                1000 + count as u64,
                cfg,
            )
            .unwrap_or_else(|e| CellOutcome::bare(format!("err:{e}")))
        });

        let mut rows = Vec::new();
        let mut json_cells = Vec::new();
        for (ri, &count) in rows_wanted.iter().enumerate() {
            let paper = PAPER
                .iter()
                .find(|r| r.0 == count)
                .ok_or_else(|| format!("no paper row for {count} blocks"))?;
            let mut row = vec![count.to_string()];
            for si in 0..specs.len() {
                let outcome = &outcomes[ri * specs.len() + si];
                let p = paper_cell([paper.1, paper.2, paper.3][si]);
                row.push(format!("{} (paper {p})", outcome.cell));
                json_cells.push(format!(
                    r#"{{"blocks":{count},"spec":"{}","cell":"{}","report":{}}}"#,
                    SPEC_NAMES[si],
                    outcome.cell,
                    outcome.report_json()
                ));
            }
            rows.push(row);
        }
        print_table(
            "Table I — SAT-attack seconds, measured (paper)",
            &["RIL Blocks", "2x2", "8x8", "8x8x8"],
            &rows,
        );
        let json = format!(
            r#"{{"table":"table1","host":"{}","timeout_s":{},"threads":{},"cells":[{}]}}"#,
            host.name(),
            cfg.timeout.as_secs_f64(),
            cfg.threads,
            json_cells.join(",")
        );
        let path = ctx.write_output("BENCH_table1.json", &json)?;
        ctx.note(&format!("per-cell solver statistics: {}", path.display()));
        ctx.note(
            "shape check: larger/more blocks ⇒ slower attack; 8x8x8 rows reach ∞ first, \
             matching the paper's ordering (absolute numbers differ: synthetic host, \
             from-scratch CDCL solver, scaled timeout)",
        );
        Ok(ExperimentOutput {
            summary: format!(
                "{} cells ({} rows × 3 specs)",
                cells.len(),
                rows_wanted.len()
            ),
            files: vec![path],
        })
    }
}
