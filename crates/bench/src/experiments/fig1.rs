//! Fig. 1 / Section II-B motivation — the same polymorphic devices encoded
//! two ways for SAT simulation:
//!
//! * **MESO form**: 8 candidate gates + a 7-MUX selection tree (15 nodes,
//!   3 key bits per device) — the original formulation of \[9\];
//! * **LUT-2 form**: the 3-MUX select tree (4 key bits per device).
//!
//! The LUT-2 re-encoding both shrinks the instance and (as the paper
//! observes) lets the SAT attack finish dramatically faster than the
//! timeout-prone MESO runs reported in \[9\].

use ril_attacks::satattack::sat_attack;
use ril_attacks::{Oracle, SatAttackConfig};
use ril_core::key::{KeyBitKind, KeyStore};
use ril_core::lut::{materialize_lut2, materialize_meso, meso_selector_for, MESO_FUNCTIONS};
use ril_core::LockedCircuit;
use ril_netlist::gate::truth_table_of;
use ril_netlist::{generators, GateId, GateKind, Netlist};

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_outcome;
use crate::{print_table, CellOutcome, RunConfig};

/// The Fig. 1 encoding comparison.
pub struct Fig1;

/// Replaces `count` MESO-representable gates using either encoding.
fn lock_with_encoding(
    host: &Netlist,
    count: usize,
    meso: bool,
) -> Result<LockedCircuit, ExperimentError> {
    let mut nl = host.clone();
    let mut keys = KeyStore::new();
    let victims: Vec<GateId> = nl
        .gates()
        .filter(|(_, g)| {
            g.inputs().len() == 2
                && truth_table_of(g.kind())
                    .map(|tt| MESO_FUNCTIONS.contains(&tt))
                    .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .take(count)
        .collect();
    if victims.len() != count {
        return Err(format!(
            "host has only {} MESO-encodable gates, needed {count}",
            victims.len()
        )
        .into());
    }
    for gid in victims {
        let gate = nl.gate(gid);
        let (a, b) = (gate.inputs()[0], gate.inputs()[1]);
        let out = gate.output();
        let tt = truth_table_of(gate.kind()).ok_or("victim gate lost its truth table")?;
        nl.remove_gate(gid);
        let new_out = if meso {
            let sel = meso_selector_for(tt).ok_or("truth table is not a MESO function")?;
            let mut knets = Vec::new();
            for bit in 0..3 {
                let net = nl.add_key_input(format!("keyinput{}", keys.len()))?;
                keys.push(KeyBitKind::Baseline, (sel >> bit) & 1 == 1);
                knets.push(net);
            }
            materialize_meso(&mut nl, a, b, [knets[0], knets[1], knets[2]])?
        } else {
            let mut knets = Vec::new();
            for bit in 0..4 {
                let net = nl.add_key_input(format!("keyinput{}", keys.len()))?;
                keys.push(KeyBitKind::Baseline, (tt >> bit) & 1 == 1);
                knets.push(net);
            }
            materialize_lut2(&mut nl, a, b, [knets[0], knets[1], knets[2], knets[3]])?
        };
        nl.add_gate(GateKind::Buf, &[new_out], out)?;
    }
    Ok(LockedCircuit {
        original: host.clone(),
        netlist: nl,
        keys,
        spec: ril_core::RilBlockSpec::size_2x2(),
        blocks: 0,
        block_meta: Vec::new(),
    })
}

fn encoding_cell(
    host: &Netlist,
    count: usize,
    meso: bool,
    cfg: &RunConfig,
) -> Result<CellOutcome, ExperimentError> {
    let locked = lock_with_encoding(host, count, meso)?;
    locked.netlist.validate()?;
    let mut oracle = Oracle::new(&locked)?;
    let attack_cfg = SatAttackConfig {
        timeout: Some(cfg.attack_timeout()),
        solver: ril_sat::SolverConfig {
            threads: cfg.solver_threads,
            ..ril_sat::SolverConfig::default()
        },
        ..SatAttackConfig::default()
    };
    let report = sat_attack(&locked.netlist, &mut oracle, &attack_cfg);
    let extra_gates = locked.netlist.gate_count() - host.gate_count();
    Ok(CellOutcome {
        cell: format!("{} ({} extra gates)", report.table_cell(), extra_gates),
        report: Some(report),
    })
}

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn describe(&self) -> &'static str {
        "Fig. 1 — SAT runtimes: MESO encoding vs LUT-2 re-encoding"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::benchmark("c7552").ok_or("unknown benchmark c7552")?;
        ctx.note(&format!(
            "Fig. 1 reproduction — host `{}`, timeout {:?}",
            host.name(),
            cfg.timeout
        ));
        let counts: &[usize] = if cfg.smoke { &[4, 8] } else { &[4, 8, 16, 32] };
        let mut rows = Vec::new();
        for &count in counts {
            let mut row = vec![count.to_string()];
            for meso in [true, false] {
                let key = CacheKey::new("attack")
                    .field("kind", "fig1_encoding")
                    .field("bench", "c7552")
                    .field("devices", count)
                    .field("meso", meso)
                    .field("timeout_s", cfg.timeout.as_secs())
                    .field("solver_threads", cfg.solver_threads);
                let label = format!("{count} devices, {}", if meso { "MESO" } else { "LUT-2" });
                let outcome =
                    cached_outcome(ctx, &key, &label, || encoding_cell(&host, count, meso, cfg))?;
                row.push(outcome.cell);
            }
            rows.push(row);
            ctx.note(&format!("{count} devices done"));
        }
        print_table(
            "Fig. 1 — SAT-attack seconds per encoding",
            &[
                "Devices",
                "MESO form (8 gates + 7 MUX)",
                "LUT-2 form (3 MUX)",
            ],
            &rows,
        );
        ctx.note(
            "key-space note: a 2-input LUT covers all 16 functions (Table II) with 4 \
             key bits, vs the MESO device's 8 functions with 3 bits — yet its SAT \
             encoding is 5× smaller (3 nodes vs 15), which is what erases the \
             MESO formulation's apparent SAT-hardness",
        );
        Ok(ExperimentOutput::summary(format!(
            "{} device counts × 2 encodings attacked",
            counts.len()
        )))
    }
}
