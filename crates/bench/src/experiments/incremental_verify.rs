//! Post-morph verification cost: incremental dirty-cone re-checking vs a
//! full miter rebuild, on a c7552 morph sweep.
//!
//! The dynamic defense re-keys the chip repeatedly; after every morph the
//! defender (and any formal harness) must re-establish that the chip
//! still computes the host function under the new key. The naive way
//! rebuilds the whole original-vs-locked miter and re-proves every output
//! per generation. The incremental way keeps one live
//! [`ril_core::MorphVerifier`] and, per generation, re-checks only the
//! outputs whose cones read a key bit named by that morph's
//! [`ril_core::MorphDelta`] — sound because a morph changes key *values*
//! only, so untouched cones still compute their certified function.
//!
//! Both paths must return the identical verdict on every generation (and
//! on a deliberately corrupted key), and the incremental path must be at
//! least [`MIN_SPEEDUP`]× faster across the sweep — both are hard
//! assertions, not tendencies. Cells are timed live and never cached:
//! a wall-clock ratio read back from another machine's cache would be
//! meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_core::{morph_all_delta, MorphDelta, Obfuscator, RilBlockSpec};
use ril_netlist::generators;
use ril_sat::EquivResult;
use std::time::Instant;

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// Incremental vs full-rebuild post-morph verification on c7552.
pub struct IncrementalVerify;

/// The sweep's acceptance floor: summed across all generations, the
/// incremental path must beat the full-rebuild path by at least this
/// factor.
const MIN_SPEEDUP: f64 = 5.0;

/// Obfuscator seed (also salts the morph RNG) — fixed so the sweep is
/// bit-for-bit reproducible.
const SEED: u64 = 2024;

fn verdict_name(r: &EquivResult) -> &'static str {
    match r {
        EquivResult::Equivalent => "equivalent",
        EquivResult::Inequivalent { .. } => "inequivalent",
        EquivResult::Unknown => "unknown",
    }
}

fn same_verdict(a: &EquivResult, b: &EquivResult) -> bool {
    verdict_name(a) == verdict_name(b)
}

impl Experiment for IncrementalVerify {
    fn name(&self) -> &'static str {
        "incremental_verify"
    }

    fn describe(&self) -> &'static str {
        "post-morph incremental cone re-verification vs full miter rebuild (c7552)"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let generations = if cfg.smoke { 3 } else { 8 };
        let host = generators::benchmark("c7552").ok_or("c7552 generator missing")?;
        let mut locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(4)
            .seed(SEED)
            .obfuscate(&host)?;
        let timeout = Some(cfg.attack_timeout());
        ctx.note(&format!(
            "incremental_verify — c7552, 4 × 2x2 blocks, {} key bits, {generations} generations",
            locked.key_width(),
        ));

        // One live incremental verifier for the whole sweep. Its one-time
        // construction + first full certification is the amortized setup
        // cost, reported separately from the per-morph numbers.
        let setup_started = Instant::now();
        let mut verifier = locked
            .incremental_verifier(timeout)
            .map_err(|e| format!("incremental verifier build failed: {e}"))?;
        let key0: Vec<bool> = locked.keys.bits().to_vec();
        let baseline = verifier
            .verify(&key0)
            .map_err(|e| format!("baseline verify failed: {e}"))?;
        let setup_s = setup_started.elapsed().as_secs_f64();
        if baseline != EquivResult::Equivalent {
            return Err(format!("generation 0 is not equivalent: {baseline:?}").into());
        }

        let mut rng = StdRng::seed_from_u64(SEED ^ 0x006d_6f72_7068);
        let outputs = verifier.outputs();
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let (mut inc_total_s, mut full_total_s) = (0.0f64, 0.0f64);
        for generation in 1..=generations {
            let (_report, delta) = morph_all_delta(&mut locked, &mut rng);
            let key: Vec<bool> = locked.keys.bits().to_vec();
            let dirty = locked.dirty_outputs(&delta).len();

            let started = Instant::now();
            let inc = verifier
                .verify_after(&delta, &key)
                .map_err(|e| format!("gen {generation}: incremental verify failed: {e}"))?;
            let inc_s = started.elapsed().as_secs_f64();

            let started = Instant::now();
            let full = locked
                .verify_formal(&key, timeout)
                .map_err(|e| format!("gen {generation}: full verify failed: {e}"))?;
            let full_s = started.elapsed().as_secs_f64();

            if !same_verdict(&inc, &full) {
                return Err(format!(
                    "gen {generation}: verdicts diverge — incremental {inc:?} vs full {full:?}"
                )
                .into());
            }
            if inc != EquivResult::Equivalent {
                return Err(format!("gen {generation}: morph broke equivalence: {inc:?}").into());
            }
            inc_total_s += inc_s;
            full_total_s += full_s;
            rows.push(vec![
                generation.to_string(),
                delta.len().to_string(),
                format!("{dirty}/{outputs}"),
                format!("{:.1}", inc_s * 1e3),
                format!("{:.1}", full_s * 1e3),
            ]);
            json_rows.push(format!(
                r#"{{"generation":{generation},"changed_bits":{},"dirty_outputs":{dirty},"outputs":{outputs},"incremental_ms":{:.3},"full_ms":{:.3},"verdict":"{}"}}"#,
                delta.len(),
                inc_s * 1e3,
                full_s * 1e3,
                verdict_name(&inc),
            ));
        }

        // A corrupted key must be caught by both paths identically. Some
        // single bits are key-redundant (flipping them yields another
        // correct key — the `key_redundancy` experiment quantifies this),
        // so probe bits with the cheap incremental check until one breaks
        // equivalence, then confirm the expensive path agrees on it.
        let good_key: Vec<bool> = locked.keys.bits().to_vec();
        let mut caught = None;
        for bit in 0..good_key.len() {
            let mut bad_key = good_key.clone();
            bad_key[bit] = !bad_key[bit];
            let bad_delta = MorphDelta::between(&good_key, &bad_key);
            let inc_bad = verifier
                .verify_after(&bad_delta, &bad_key)
                .map_err(|e| format!("bad-key incremental verify failed: {e}"))?;
            if verdict_name(&inc_bad) == "inequivalent" {
                caught = Some((bad_key, inc_bad));
                break;
            }
        }
        let Some((bad_key, inc_bad)) = caught else {
            return Err("every single-bit key corruption went undetected".into());
        };
        let full_bad = locked
            .verify_formal(&bad_key, timeout)
            .map_err(|e| format!("bad-key full verify failed: {e}"))?;
        if !same_verdict(&inc_bad, &full_bad) {
            return Err(format!(
                "bad-key verdicts diverge — incremental {inc_bad:?} vs full {full_bad:?}"
            )
            .into());
        }

        let speedup = full_total_s / inc_total_s.max(1e-9);
        print_table(
            "Post-morph re-verification (c7552, 4 × 2x2)",
            &[
                "Generation",
                "Δ key bits",
                "Dirty outputs",
                "Incremental (ms)",
                "Full rebuild (ms)",
            ],
            &rows,
        );
        let artifact = ctx.write_output(
            "INCREMENTAL_VERIFY.json",
            &format!(
                r#"{{"benchmark":"c7552","spec":"2x2","blocks":4,"seed":{SEED},"generations":{generations},"outputs":{outputs},"setup_s":{setup_s:.3},"incremental_total_s":{inc_total_s:.3},"full_total_s":{full_total_s:.3},"speedup":{speedup:.2},"min_speedup":{MIN_SPEEDUP},"encoded_outputs":{},"checks":{},"rows":[{}]}}"#,
                verifier.encoded_outputs(),
                verifier.checks(),
                json_rows.join(",")
            ),
        )?;

        // The acceptance assertion: identical verdicts were enforced
        // above; the speedup floor is enforced here.
        if speedup < MIN_SPEEDUP {
            return Err(format!(
                "incremental verification only {speedup:.2}x faster than full rebuild \
                 ({inc_total_s:.3}s vs {full_total_s:.3}s over {generations} generations); \
                 the floor is {MIN_SPEEDUP}x"
            )
            .into());
        }
        Ok(ExperimentOutput {
            summary: format!(
                "{generations} generations; {speedup:.1}x speedup \
                 ({:.1}ms incremental vs {:.1}ms full per morph); verdicts identical",
                inc_total_s * 1e3 / generations as f64,
                full_total_s * 1e3 / generations as f64,
            ),
            files: vec![artifact],
        })
    }
}
