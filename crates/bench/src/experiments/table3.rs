//! Table III — SAT seconds for 1/2/3 8×8×8 RIL-Blocks on the ISCAS-89 /
//! ITC-99 and CEP benchmark set, plus the AppSAT column under the armed
//! Scan-Enable circuitry (✗ = attack fails, as the paper reports for every
//! circuit).
//!
//! Cells run in parallel across `RunConfig::threads` workers; each cell
//! goes through the content-addressed cache, so an interrupted sweep
//! resumes from the cells already on disk. Full per-cell attack reports
//! land in `<out_dir>/BENCH_table3.json`.

use ril_attacks::{run_attack, AttackConfig, AttackKind};
use ril_core::RilBlockSpec;
use ril_netlist::generators;

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::{cached_outcome, cached_sat_cell};
use crate::{defense_held, lock_with_armed_se, print_table, CellOutcome, RunConfig};

/// The Table III reproduction.
pub struct Table3;

/// One reported Table III row: (benchmark, 1, 2, 3 blocks; None = ∞).
type PaperRow = (&'static str, Option<f64>, Option<f64>, Option<f64>);

/// Paper Table III per benchmark for 1/2/3 blocks.
const PAPER: &[PaperRow] = &[
    ("b15", Some(124.25), Some(546.2), None),
    ("s35932", Some(105.1), Some(1864.2), None),
    ("s38584", Some(345.2), None, None),
    ("b20", Some(240.4), Some(2454.26), None),
    ("aes", Some(1060.56), None, None),
    ("sha256", Some(846.87), None, None),
    ("md5", Some(1450.1), None, None),
    ("gps", None, None, None),
];

/// One parallel job: a SAT cell (`blocks` ≥ 1) or the AppSAT/SE column
/// (`blocks` = 0).
#[derive(Clone, Copy)]
struct Cell {
    bench: &'static str,
    blocks: usize,
}

fn appsat_cell(
    ctx: &RunContext,
    cfg: &RunConfig,
    host: &ril_netlist::Netlist,
    bench: &str,
    spec: RilBlockSpec,
) -> Result<CellOutcome, ExperimentError> {
    let key = CacheKey::new("attack")
        .field("kind", "appsat_se")
        .field("bench", bench)
        .field("spec", spec.with_scan(true).cache_token())
        .field("blocks", 1)
        .field("seed", 100)
        .field("timeout_s", cfg.timeout.as_secs())
        .field("solver_threads", cfg.solver_threads);
    cached_outcome(
        ctx,
        &key,
        &format!("{bench} appsat/SE"),
        || match lock_with_armed_se(host, spec, 1, 100) {
            None => Ok(CellOutcome::bare("n/a")),
            Some(locked) => {
                let app_cfg = AttackConfig {
                    timeout: Some(cfg.attack_timeout()),
                    solver: ril_sat::SolverConfig {
                        threads: cfg.solver_threads,
                        ..ril_sat::SolverConfig::default()
                    },
                    ..AttackConfig::default()
                };
                let report = run_attack(AttackKind::AppSat, &locked, &app_cfg)?.report;
                let cell = if defense_held(&report.result, report.functionally_correct) {
                    "✗ (paper ✗)".to_string()
                } else {
                    "BROKE DEFENSE (paper ✗)".to_string()
                };
                Ok(CellOutcome {
                    cell,
                    report: Some(report),
                })
            }
        },
    )
}

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn describe(&self) -> &'static str {
        "Table III — benchmark suite with 8×8×8 blocks + AppSAT/SE column"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        ctx.note(&format!(
            "Table III reproduction — timeout {:?} per cell (paper: 5 days), {} worker threads",
            cfg.timeout, cfg.threads
        ));
        let spec = RilBlockSpec::size_8x8x8();
        let paper_rows: &[PaperRow] = if cfg.smoke { &PAPER[..2] } else { PAPER };

        let cells: Vec<Cell> = paper_rows
            .iter()
            .flat_map(|&(name, ..)| {
                [1usize, 2, 3, 0].map(|blocks| Cell {
                    bench: name,
                    blocks,
                })
            })
            .collect();
        let outcomes = ctx.sweep(cfg.threads, &cells, |_, cell| {
            let outcome = match generators::benchmark(cell.bench) {
                None => Ok(CellOutcome::bare(format!("unknown bench {}", cell.bench))),
                Some(host) => {
                    if cell.blocks == 0 {
                        appsat_cell(ctx, cfg, &host, cell.bench, spec)
                    } else {
                        cached_sat_cell(
                            ctx,
                            &host,
                            cell.bench,
                            spec,
                            cell.blocks,
                            7 + cell.blocks as u64,
                            cfg,
                        )
                    }
                }
            };
            outcome.unwrap_or_else(|e| CellOutcome::bare(format!("err:{e}")))
        });

        let mut rows = Vec::new();
        let mut json_cells = Vec::new();
        for (bi, &(name, p1, p2, p3)) in paper_rows.iter().enumerate() {
            let mut row = vec![name.to_string()];
            for (ci, paper) in [(0usize, p1), (1, p2), (2, p3)] {
                let outcome = &outcomes[bi * 4 + ci];
                let p = paper.map(|s| s.to_string()).unwrap_or_else(|| "∞".into());
                row.push(format!("{} (paper {p})", outcome.cell));
                json_cells.push(format!(
                    r#"{{"bench":"{name}","blocks":{},"attack":"sat","cell":"{}","report":{}}}"#,
                    ci + 1,
                    outcome.cell,
                    outcome.report_json()
                ));
            }
            // AppSAT with the SE circuitry armed — the ✗ column.
            let appsat = &outcomes[bi * 4 + 3];
            row.push(appsat.cell.clone());
            json_cells.push(format!(
                r#"{{"bench":"{name}","blocks":1,"attack":"appsat_se","cell":"{}","report":{}}}"#,
                appsat.cell,
                appsat.report_json()
            ));
            rows.push(row);
        }
        print_table(
            "Table III — SAT seconds with N 8x8x8 RIL-Blocks, measured (paper)",
            &[
                "Circuit",
                "1 block",
                "2 blocks",
                "3 blocks",
                "AppSAT success",
            ],
            &rows,
        );
        let json = format!(
            r#"{{"table":"table3","timeout_s":{},"threads":{},"cells":[{}]}}"#,
            cfg.timeout.as_secs_f64(),
            cfg.threads,
            json_cells.join(",")
        );
        let path = ctx.write_output("BENCH_table3.json", &json)?;
        ctx.note(&format!("per-cell solver statistics: {}", path.display()));
        Ok(ExperimentOutput {
            summary: format!(
                "{} cells ({} benchmarks × 4 columns)",
                cells.len(),
                paper_rows.len()
            ),
            files: vec![path],
        })
    }
}
