//! Sections III-C / IV-C — the Scan-Enable defense in action: the same
//! locked design is attacked with and without the SE circuitry armed, by
//! the SAT attack, AppSAT, and the ScanSAT model. With SE armed, every
//! oracle access returns corrupted responses and all oracle-guided attacks
//! are defeated.

use ril_attacks::{run_attack, AttackConfig, AttackKind, AttackReport};
use ril_core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::generators;

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_outcome;
use crate::{defense_held, lock_with_armed_se, print_table, CellOutcome, RunConfig};

/// The Scan-Enable defense demonstration.
pub struct ScanDefense;

fn render(report: &AttackReport) -> String {
    if defense_held(&report.result, report.functionally_correct) {
        if report.result.succeeded() {
            // The attack believes it won, but its key only matches the
            // corrupted scan responses, not the real function.
            "defended (recovered key is functionally wrong)".to_string()
        } else {
            format!("defended ({})", report.result)
        }
    } else {
        format!("BROKEN in {}", report.table_cell())
    }
}

fn attack_outcome(
    ctx: &RunContext,
    cfg: &RunConfig,
    attack: &'static str,
    design: &str,
    spec_token: &str,
    locked: &LockedCircuit,
) -> Result<CellOutcome, ExperimentError> {
    let key = CacheKey::new("attack")
        .field("kind", attack)
        .field("bench", "mult6x6")
        .field("spec", spec_token)
        .field("blocks", 3)
        .field("seed", 21)
        .field("timeout_s", cfg.timeout.as_secs())
        .field("solver_threads", cfg.solver_threads);
    cached_outcome(ctx, &key, &format!("{design} / {attack}"), || {
        let kind =
            AttackKind::parse(attack).ok_or_else(|| format!("unknown attack kind {attack}"))?;
        let a_cfg = AttackConfig {
            timeout: Some(cfg.attack_timeout()),
            solver: ril_sat::SolverConfig {
                threads: cfg.solver_threads,
                ..ril_sat::SolverConfig::default()
            },
            ..AttackConfig::default()
        };
        let report = run_attack(kind, locked, &a_cfg)?.report;
        Ok(CellOutcome {
            cell: report.table_cell(),
            report: Some(report),
        })
    })
}

impl Experiment for ScanDefense {
    fn name(&self) -> &'static str {
        "scan_defense"
    }

    fn describe(&self) -> &'static str {
        "§III-C/IV-C — oracle-guided attacks vs the armed SE defense"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::multiplier(6);
        ctx.note(&format!(
            "Scan-Enable defense demo — host `{}` ({} gates), timeout {:?}",
            host.name(),
            host.gate_count(),
            cfg.timeout
        ));
        let spec = RilBlockSpec::size_2x2();
        let plain = Obfuscator::new(spec).blocks(3).seed(21).obfuscate(&host)?;
        let armed = lock_with_armed_se(&host, spec, 3, 21)
            .ok_or("no seed in range yields an armed SE lock")?;

        let mut rows = Vec::new();
        let mut broken = 0usize;
        for (name, spec_token, locked) in [
            ("3 × 2x2 (no SE)", "2x2", &plain),
            ("3 × 2x2 + SE armed", "2x2+se", &armed),
        ] {
            let mut row = vec![name.to_string()];
            for attack in ["sat", "appsat", "scansat"] {
                let outcome = attack_outcome(ctx, cfg, attack, name, spec_token, locked)?;
                let report = outcome
                    .report
                    .ok_or_else(|| format!("{name}/{attack}: cell has no report"))?;
                if !defense_held(&report.result, report.functionally_correct) {
                    broken += 1;
                }
                row.push(render(&report));
            }
            rows.push(row);
        }
        print_table(
            "Oracle-guided attacks vs the SE defense",
            &["Design", "SAT attack", "AppSAT", "ScanSAT model"],
            &rows,
        );
        ctx.note(
            "why: with SE armed, asserting scan-enable flips the output of every LUT \
             whose hidden MTJ_SE key is 1 — an OR LUT answers like a NOR (Section IV-C), \
             and no key hypothesis is consistent with the corrupted responses once the \
             inversions mix into wider cones. The IP owner, who knows the SE keys, \
             tests the chip normally",
        );
        Ok(ExperimentOutput::summary(format!(
            "6 attack cells; {broken} broke a defense"
        )))
    }
}
