//! The experiments: one module per table/figure, each implementing
//! [`crate::Experiment`]. These are the former `src/bin/*` drivers,
//! reworked to take the typed [`crate::RunConfig`], propagate errors
//! instead of `unwrap`ping, and run their sweep cells through the
//! content-addressed cache in [`crate::RunContext`].

pub mod corruptibility;
pub mod dynamic_defense;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod incremental_verify;
pub mod key_redundancy;
pub mod lut_scaling;
pub mod overhead;
pub mod scan_defense;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;

use std::time::Duration;

use ril_core::RilBlockSpec;
use ril_netlist::Netlist;

use crate::cache::CacheKey;
use crate::experiment::{cell_payload, parse_cell_payload, ExperimentError, RunContext};
use crate::{CellOutcome, RunConfig};

/// Runs one attack cell through the cache: on a hit the stored
/// [`CellOutcome`] (cell string + full report) comes back without
/// touching a solver; on a miss `compute` runs and the outcome is
/// persisted before this returns.
///
/// # Errors
///
/// Propagates `compute`'s error or a corrupt cached payload.
pub fn cached_outcome<F>(
    ctx: &RunContext,
    key: &CacheKey,
    label: &str,
    compute: F,
) -> Result<CellOutcome, ExperimentError>
where
    F: FnOnce() -> Result<CellOutcome, ExperimentError>,
{
    let payload = ctx.cached_cell(key, label, || compute().map(|o| cell_payload(&o)))?;
    parse_cell_payload(&payload).map_err(ExperimentError::Other)
}

/// The cache key for a plain SAT-attack cell. Deliberately **not**
/// scoped to one experiment: the identity of a cell is its full attack
/// configuration — including the portfolio width, since a portfolio run
/// may converge along a different DIP sequence than a sequential one —
/// so Table V's "RIL (static)" cell and a Table I cell with the same
/// (bench, spec, blocks, seed, timeout, solver_threads) are the same
/// cell.
#[must_use]
pub fn sat_cell_key(
    bench: &str,
    spec: RilBlockSpec,
    blocks: usize,
    seed: u64,
    timeout: Duration,
    solver_threads: usize,
) -> CacheKey {
    CacheKey::new("attack")
        .field("kind", "sat")
        .field("bench", bench)
        .field("spec", spec.cache_token())
        .field("blocks", blocks)
        .field("seed", seed)
        .field("timeout_s", timeout.as_secs())
        .field("solver_threads", solver_threads)
}

/// A cached lock-then-SAT-attack cell (the Table I / Table III work
/// unit).
///
/// # Errors
///
/// Propagates cache failures; attack-level failures stay inside the
/// outcome (`n/a`, `err:…` cells), exactly as the old binaries rendered
/// them.
pub fn cached_sat_cell(
    ctx: &RunContext,
    host: &Netlist,
    bench: &str,
    spec: RilBlockSpec,
    blocks: usize,
    seed: u64,
    cfg: &RunConfig,
) -> Result<CellOutcome, ExperimentError> {
    let key = sat_cell_key(bench, spec, blocks, seed, cfg.timeout, cfg.solver_threads);
    let label = format!("{bench} {blocks}×{}", spec.cache_token());
    cached_outcome(ctx, &key, &label, || {
        Ok(crate::attack_cell_report_with(
            host,
            spec,
            blocks,
            seed,
            cfg.attack_timeout(),
            cfg.solver_threads,
        ))
    })
}
