//! Table V — attack-resiliency matrix: every attack of the suite against
//! every locking scheme, measured by actually running the attacks. ✓ means
//! the defense held (timeout / failure / functionally-wrong key), ✗ means
//! the attack recovered a working key or a near-equivalent circuit.

use ril_attacks::{run_attack, AttackConfig, AttackKind};
use ril_core::baselines::{antisat_lock, sfll_lock, xor_lock};
use ril_core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::generators;
use ril_sca::{key_recovery_rate, LutTechnology};

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_outcome;
use crate::{defense_held, lock_with_armed_se, print_table, CellOutcome, RunConfig};

/// The Table V resiliency matrix.
pub struct Table5;

fn mark(held: bool) -> String {
    if held {
        "✓".into()
    } else {
        "✗".into()
    }
}

/// One attack cell of the matrix, cached under (attack kind, scheme
/// token, timeout). The cell string is the rendered ✓/✗ mark.
fn matrix_cell(
    ctx: &RunContext,
    cfg: &RunConfig,
    attack: &'static str,
    token: &str,
    locked: &LockedCircuit,
) -> Result<String, ExperimentError> {
    let key = CacheKey::new("attack")
        .field("kind", attack)
        .field("scheme", token)
        .field("timeout_s", cfg.timeout.as_secs())
        .field("solver_threads", cfg.solver_threads);
    let outcome = cached_outcome(ctx, &key, &format!("{token} / {attack}"), || {
        let kind =
            AttackKind::parse(attack).ok_or_else(|| format!("unknown attack kind {attack}"))?;
        let a_cfg = AttackConfig {
            timeout: Some(cfg.attack_timeout()),
            // AppSAT's relaxed acceptance for the matrix (ignored by the
            // other attacks).
            error_threshold: 0.02,
            solver: ril_sat::SolverConfig {
                threads: cfg.solver_threads,
                ..ril_sat::SolverConfig::default()
            },
            ..AttackConfig::default()
        };
        let out = run_attack(kind, locked, &a_cfg)?;
        match out.removal {
            // Removal keeps Table V's sampled-error criterion: the defense
            // held only when the salvage is measurably wrong.
            Some(r) => Ok(CellOutcome::bare(mark(!r.succeeded(0.01)))),
            None => {
                let held = defense_held(&out.report.result, out.report.functionally_correct);
                Ok(CellOutcome {
                    cell: mark(held),
                    report: Some(out.report),
                })
            }
        }
    })?;
    Ok(outcome.cell)
}

impl Experiment for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }

    fn describe(&self) -> &'static str {
        "Table V — attack-resiliency matrix, attacks actually executed"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        ctx.note(&format!(
            "Table V reproduction — attacks actually executed, timeout {:?} per cell",
            cfg.timeout
        ));
        let host = generators::adder(12);

        // Scheme tokens are the cache identity of each locked design:
        // scheme, host, parameters, seed.
        let mut schemes: Vec<(&str, &str, LockedCircuit)> = vec![
            // Wide point-function keys ⇒ exponentially many DIPs (the SFLL /
            // Anti-SAT SAT-resistance the paper credits them with).
            ("SFLL", "sfll_adder12_n14_s1", sfll_lock(&host, 14, 1)?),
            (
                "Anti-SAT (CAS-class)",
                "antisat_adder12_n12_s2",
                antisat_lock(&host, 12, 2)?,
            ),
            (
                "XOR (EPIC)",
                "xor_adder8_k12_s3",
                xor_lock(&generators::adder(8), 12, 3)?,
            ),
        ];
        if !cfg.smoke {
            // The Table-I-hard configuration: ten 8x8x8 blocks on the
            // c7552-class host. Skipped under --smoke (the lock itself is
            // the expensive part, and the 3 s budget says nothing there).
            schemes.push((
                "RIL (static)",
                "ril_c7552_10x8x8x8_s4",
                Obfuscator::new(RilBlockSpec::size_8x8x8())
                    .blocks(10)
                    .seed(4)
                    .obfuscate(&generators::benchmark("c7552").ok_or("unknown benchmark c7552")?)?,
            ));
        }
        schemes.push((
            "RIL + SE",
            "ril_se_mult6_3x2x2_s40",
            lock_with_armed_se(&generators::multiplier(6), RilBlockSpec::size_2x2(), 3, 40)
                .ok_or("no seed in range yields an armed SE lock")?,
        ));

        let mut rows = Vec::new();
        for (name, token, locked) in &schemes {
            ctx.note(&format!("scheme {name}"));
            let sat = matrix_cell(ctx, cfg, "sat", token, locked)?;
            let app = matrix_cell(ctx, cfg, "appsat", token, locked)?;
            let rem = matrix_cell(ctx, cfg, "removal", token, locked)?;
            let scan = matrix_cell(ctx, cfg, "scansat", token, locked)?;
            // P-SCA: the LUT technology decides; RIL uses MRAM, baselines are
            // plain CMOS keys modeled as SRAM-class storage.
            let psca_rate = if name.starts_with("RIL") {
                key_recovery_rate(LutTechnology::Mram, 14, 400, 0.5, 9)
            } else {
                key_recovery_rate(LutTechnology::Sram, 14, 400, 0.5, 9)
            };
            rows.push(vec![
                name.to_string(),
                sat,
                app,
                rem,
                scan,
                mark(psca_rate < 0.3),
            ]);
        }
        print_table(
            "Table V — does the DEFENSE hold? (✓ = attack defeated)",
            &["Scheme", "SAT", "AppSAT", "Removal", "ScanSAT", "P-SCA"],
            &rows,
        );
        ctx.note(
            "paper's qualitative claim: only the proposed RIL-Blocks (with SE and MRAM) \
             resist the whole suite; point-function locks fall to removal/AppSAT-class \
             attacks and none of the baselines addresses P-SCA",
        );
        Ok(ExperimentOutput::summary(format!(
            "{} schemes × 5 attacks",
            schemes.len()
        )))
    }
}
