//! Output-corruptibility comparison (Sections I / III-A): RIL-Blocks
//! corrupt many outputs under wrong keys, while one-point-function locks
//! (Anti-SAT/SFLL-class) leave the circuit almost fully functional — the
//! corruptibility/SAT-resistance trade-off the paper escapes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_core::baselines::{antisat_lock, sfll_lock, xor_lock};
use ril_core::metrics::output_corruptibility;
use ril_core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::generators;

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// The output-corruptibility comparison.
pub struct Corruptibility;

impl Experiment for Corruptibility {
    fn name(&self) -> &'static str {
        "corruptibility"
    }

    fn describe(&self) -> &'static str {
        "output corruption under wrong keys: RIL vs point-function locks"
    }

    fn run(&self, _cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::multiplier(6);
        ctx.note(&format!(
            "output corruptibility under random wrong keys — host `{}` ({} gates)",
            host.name(),
            host.gate_count()
        ));
        let mut rng = StdRng::seed_from_u64(7);
        let mut rows = Vec::new();
        let mut measure = |name: &str, locked: &LockedCircuit| -> Result<(), ExperimentError> {
            let c = output_corruptibility(locked, 16, 8, &mut rng)?;
            rows.push(vec![
                name.to_string(),
                locked.key_width().to_string(),
                format!("{:.3} %", c * 100.0),
            ]);
            Ok(())
        };

        measure(
            "RIL 1 × 8x8x8",
            &Obfuscator::new(RilBlockSpec::size_8x8x8())
                .seed(1)
                .obfuscate(&host)?,
        )?;
        measure(
            "RIL 3 × 8x8x8",
            &Obfuscator::new(RilBlockSpec::size_8x8x8())
                .blocks(3)
                .seed(2)
                .obfuscate(&host)?,
        )?;
        measure(
            "RIL 10 × 2x2",
            &Obfuscator::new(RilBlockSpec::size_2x2())
                .blocks(10)
                .seed(3)
                .obfuscate(&host)?,
        )?;
        measure("XOR (EPIC) 24 bits", &xor_lock(&host, 24, 4)?)?;
        measure("Anti-SAT 10 bits", &antisat_lock(&host, 10, 5)?)?;
        measure("SFLL 10 bits", &sfll_lock(&host, 10, 6)?)?;

        let n = rows.len();
        print_table(
            "Mean corrupted output-bit fraction (16 wrong keys × 512 patterns)",
            &["Scheme", "Key bits", "Corruption"],
            &rows,
        );
        ctx.note(
            "expected shape (paper): RIL and XOR locks corrupt heavily; point-function \
             locks (Anti-SAT/SFLL) corrupt ≈ 2^-n of patterns — SAT-resistant but \
             nearly functional with the wrong key",
        );
        Ok(ExperimentOutput::summary(format!("{n} schemes measured")))
    }
}
