//! Fig. 6 — Monte-Carlo process-variation analysis of the 2-input MRAM
//! LUT implementing an AND gate: (a) read currents, (b) read power,
//! (c) MTJ resistance distributions, plus the read/write error rates the
//! paper reports (< 0.01 %).

use ril_mram::montecarlo::{run_monte_carlo, Distribution};

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// The Fig. 6 Monte-Carlo analysis.
pub struct Fig6;

fn ascii_hist(d: &Distribution, bins: usize, width: usize) -> String {
    let hist = d.histogram(bins);
    let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    hist.iter()
        .map(|&(center, count)| {
            let bar = "█".repeat(count * width / max);
            format!("  {center:>10.3} | {bar} {count}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn dist_row(label: &str, d: &Distribution, digits: usize) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.digits$}", d.mean()),
        format!("{:.digits$}", d.std_dev()),
        format!("{:.digits$}–{:.digits$}", d.min(), d.max()),
    ]
}

impl Experiment for Fig6 {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn describe(&self) -> &'static str {
        "Fig. 6 — Monte-Carlo process-variation distributions of the MRAM LUT"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let instances = cfg.mc_instances;
        ctx.note(&format!(
            "Fig. 6 reproduction — {instances} MC instances, AND-programmed LUT; \
             PV model (paper §IV-D): 1 % MTJ dims, 10 % Vth, 1 % MOS dims (1σ)"
        ));
        let report = run_monte_carlo(instances, 0b1000, 2026);

        let rows = vec![
            dist_row("Read current, value 0 (µA)", &report.read0_current_ua, 2),
            dist_row("Read current, value 1 (µA)", &report.read1_current_ua, 2),
            dist_row("Read power, value 0 (µW)", &report.read0_power_uw, 2),
            dist_row("Read power, value 1 (µW)", &report.read1_power_uw, 2),
            dist_row("R_P (Ω)", &report.r_parallel, 0),
            dist_row("R_AP (Ω)", &report.r_antiparallel, 0),
        ];
        print_table(
            "Fig. 6 — MC distribution summaries",
            &["Quantity", "Mean", "σ", "Range"],
            &rows,
        );

        println!("\n(a) read-power distribution, value 0 (µW):");
        println!("{}", ascii_hist(&report.read0_power_uw, 10, 40));
        println!("\n(b) read-power distribution, value 1 (µW):");
        println!("{}", ascii_hist(&report.read1_power_uw, 10, 40));
        println!("\n(c) MTJ resistances (Ω) — R_P then R_AP (non-overlapping = wide margin):");
        println!("{}", ascii_hist(&report.r_parallel, 8, 40));
        println!("{}", ascii_hist(&report.r_antiparallel, 8, 40));

        ctx.note(&format!(
            "errors: write {} / {} ({:.4} %), read {} / {} ({:.4} %) — paper: < 0.01 %",
            report.write_errors,
            report.writes,
            report.write_error_rate() * 100.0,
            report.read_errors,
            report.reads,
            report.read_error_rate() * 100.0
        ));
        ctx.note(&format!(
            "read-power symmetry gap (P-SCA proxy): {:.4} % — paper: \"almost identical\"",
            report.power_symmetry_gap() * 100.0
        ));
        Ok(ExperimentOutput::summary(format!(
            "{instances} instances, read-error rate {:.4} %",
            report.read_error_rate() * 100.0
        )))
    }
}
