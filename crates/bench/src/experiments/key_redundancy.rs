//! Section III-A switch-box comparison, measured: "an additional inverter
//! in the switch box of FullLock adds to extra overhead and increases the
//! number of correct keys in the circuit". Routing-only locks over the
//! same wires, exhaustive key-space enumeration.

use ril_core::baselines::{fulllock_lock, ril_routing_lock};
use ril_core::metrics::count_equivalent_keys;
use ril_netlist::generators;

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// The switch-box key-redundancy comparison.
pub struct KeyRedundancy;

impl Experiment for KeyRedundancy {
    fn name(&self) -> &'static str {
        "key_redundancy"
    }

    fn describe(&self) -> &'static str {
        "§III-A: correct-key counts in RIL vs FullLock routing boxes"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::adder(8);
        ctx.note(&format!(
            "key-redundancy comparison — host `{}` ({} gates), exhaustive key enumeration",
            host.name(),
            host.gate_count()
        ));
        let full_set = [(2usize, 3u64), (4, 5), (4, 11), (4, 23)];
        let configs: &[(usize, u64)] = if cfg.smoke { &full_set[..2] } else { &full_set };
        let mut rows = Vec::new();
        for &(width, seed) in configs {
            let ril = ril_routing_lock(&host, width, seed)?;
            let fl = fulllock_lock(&host, width, seed)?;
            if !ril.verify(8)? || !fl.verify(8)? {
                return Err(
                    format!("{width}×{width} (seed {seed}): lock fails verification").into(),
                );
            }
            let ril_eq = count_equivalent_keys(&ril, 16, 8)?
                .ok_or("RIL key space too large to enumerate")?;
            let fl_eq = count_equivalent_keys(&fl, 16, 8)?
                .ok_or("FullLock key space too large to enumerate")?;
            rows.push(vec![
                format!("{width}×{width} (seed {seed})"),
                format!("{} of {}", ril_eq, 1u64 << ril.key_width()),
                format!("{} of {}", fl_eq, 1u64 << fl.key_width()),
                format!(
                    "{} extra gates vs {}",
                    ril.gate_overhead(),
                    fl.gate_overhead()
                ),
            ]);
        }
        print_table(
            "Correct keys in routing-only locks (RIL boxes vs FullLock boxes)",
            &[
                "Network",
                "RIL correct keys",
                "FullLock correct keys",
                "Overhead (RIL vs FullLock)",
            ],
            &rows,
        );
        ctx.note(
            "paper claim (Section III-A): the FullLock inverter both doubles the MUX \
             count and multiplies the number of correct keys (wrong inversions can be \
             compensated downstream); the RIL box avoids both",
        );
        Ok(ExperimentOutput::summary(format!(
            "{} switch-box configurations enumerated",
            rows.len()
        )))
    }
}
