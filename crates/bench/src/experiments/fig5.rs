//! Fig. 5 — transient waveforms of the MRAM LUT being programmed as an
//! AND gate, read, dynamically re-programmed as a NOR, read again, and
//! finally having its Scan-Enable cell set (inverting scan-mode reads).
//!
//! Prints an ASCII rendering and writes the full trace to
//! `<out_dir>/fig5_waveforms.csv`.

use ril_mram::{MramLut2, TransientSim};

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::RunConfig;

/// The Fig. 5 transient-waveform reproduction.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn describe(&self) -> &'static str {
        "Fig. 5 — transient waveforms: AND → NOR reprogram → SE update"
    }

    fn run(&self, _cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let sim = TransientSim::default();
        let mut lut = MramLut2::with_defaults();
        let schedule = TransientSim::figure5_schedule();
        let trace = sim.run(&mut lut, &schedule);

        ctx.note(&format!(
            "Fig. 5 reproduction — {} schedule slots, {} samples at {} ns steps",
            schedule.len(),
            trace.time_ns.len(),
            sim.dt_ns
        ));
        println!("\nPhases: [write AND][read 00,10,01,11][idle][write NOR][read ×4][idle][write SE][scan reads]\n");
        print!("{}", trace.to_ascii(100));

        // Verify the headline behaviour in-line, like the paper's caption.
        let spb = (sim.slot_ns / sim.dt_ns) as usize;
        let out = trace
            .signal("OUT")
            .ok_or("trace is missing the OUT signal")?;
        let v = |slot: usize| out[slot * spb + spb - 1] > sim.vdd / 2.0;
        println!("\nRead-back summary:");
        println!(
            "  AND : 00→{} 10→{} 01→{} 11→{} (expect 0 0 0 1)",
            v(4) as u8,
            v(5) as u8,
            v(6) as u8,
            v(7) as u8
        );
        println!(
            "  NOR : 00→{} 10→{} 01→{} 11→{} (expect 1 0 0 0)",
            v(13) as u8,
            v(14) as u8,
            v(15) as u8,
            v(16) as u8
        );
        println!(
            "  SE  : 00→{} 11→{} (scan reads of NOR, inverted: expect 0 1)",
            v(19) as u8,
            v(20) as u8
        );

        let path = ctx.write_output("fig5_waveforms.csv", &trace.to_csv())?;
        ctx.note(&format!("full trace written to {}", path.display()));
        Ok(ExperimentOutput {
            summary: format!("{} samples traced", trace.time_ns.len()),
            files: vec![path],
        })
    }
}
