//! Section IV-B ablation — "the LUT used in RIL-block can be increased to
//! increase the SAT-hardness of the resulting RIL-Block": SAT-attack cost
//! versus LUT input count for plain LUT locking (the custom-LUT scheme of
//! refs \[8\]/\[12\]), and versus RIL-Block width for the full primitive.

use ril_attacks::{run_attack, AttackConfig, AttackKind};
use ril_core::baselines::lutm_lock;
use ril_core::{Obfuscator, RilBlockSpec};
use ril_netlist::generators;

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_outcome;
use crate::{print_table, CellOutcome, RunConfig};

/// The LUT-size / block-width scaling ablation.
pub struct LutScaling;

// A scaling cell needs three table columns (key bits / SAT time / DIP
// iterations), so the cached cell string carries them tab-separated.
fn render_cols(cell: &str) -> Vec<String> {
    let mut cols: Vec<String> = cell.split('\t').map(str::to_string).collect();
    cols.resize(3, String::new());
    cols
}

impl Experiment for LutScaling {
    fn name(&self) -> &'static str {
        "lut_scaling"
    }

    fn describe(&self) -> &'static str {
        "§IV-B — SAT cost vs LUT input count and vs RIL-Block width"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let host = generators::benchmark("c7552").ok_or("unknown benchmark c7552")?;
        ctx.note(&format!(
            "LUT-size / block-width scaling — host `{}`, timeout {:?}",
            host.name(),
            cfg.timeout
        ));
        let attack_cfg = AttackConfig {
            timeout: Some(cfg.attack_timeout()),
            solver: ril_sat::SolverConfig {
                threads: cfg.solver_threads,
                ..ril_sat::SolverConfig::default()
            },
            ..AttackConfig::default()
        };

        // Plain LUT locking, growing the LUT input count.
        let lut_sizes: std::ops::RangeInclusive<usize> = if cfg.smoke { 2..=3 } else { 2..=6 };
        let mut rows = Vec::new();
        for m in lut_sizes.clone() {
            let key = CacheKey::new("attack")
                .field("kind", "sat_lutm")
                .field("bench", "c7552")
                .field("luts", 4)
                .field("m", m)
                .field("seed", 77)
                .field("timeout_s", cfg.timeout.as_secs())
                .field("solver_threads", cfg.solver_threads);
            let outcome = cached_outcome(ctx, &key, &format!("4 × LUT-{m}"), || {
                let locked = lutm_lock(&host, 4, m, 77)?;
                let report = run_attack(AttackKind::Sat, &locked, &attack_cfg)?.report;
                Ok(CellOutcome {
                    cell: format!(
                        "{}\t{}\t{}",
                        locked.key_width(),
                        report.table_cell(),
                        report.iterations
                    ),
                    report: Some(report),
                })
            })?;
            let mut row = vec![format!("4 × LUT-{m}")];
            row.extend(render_cols(&outcome.cell));
            rows.push(row);
            ctx.note(&format!("LUT-{m} done"));
        }
        print_table(
            "Plain LUT locking: SAT seconds vs LUT size",
            &["Config", "Key bits", "SAT time", "DIP iterations"],
            &rows,
        );

        // RIL-Block width scaling at a fixed absorbed-gate budget.
        let spec_names: &[&str] = if cfg.smoke {
            &["2x2", "4x4"]
        } else {
            &["2x2", "4x4", "8x8", "4x4x4", "8x8x8"]
        };
        let mut rows = Vec::new();
        for &spec_str in spec_names {
            let spec =
                RilBlockSpec::parse(spec_str).ok_or_else(|| format!("invalid spec {spec_str}"))?;
            // Keep the absorbed-gate count comparable (~4 gates).
            let blocks = (4 / spec.luts()).max(1);
            let key = CacheKey::new("attack")
                .field("kind", "sat_ril_width")
                .field("bench", "c7552")
                .field("spec", spec.cache_token())
                .field("blocks", blocks)
                .field("seed", 55)
                .field("timeout_s", cfg.timeout.as_secs())
                .field("solver_threads", cfg.solver_threads);
            let outcome = cached_outcome(ctx, &key, spec_str, || {
                match Obfuscator::new(spec)
                    .blocks(blocks)
                    .seed(55)
                    .obfuscate(&host)
                {
                    Err(e) => Ok(CellOutcome::bare(format!("error: {e}"))),
                    Ok(locked) => {
                        let report = run_attack(AttackKind::Sat, &locked, &attack_cfg)?.report;
                        Ok(CellOutcome {
                            cell: format!(
                                "{}\t{}\t{}",
                                locked.key_width(),
                                report.table_cell(),
                                report.iterations
                            ),
                            report: Some(report),
                        })
                    }
                }
            })?;
            let mut row = vec![format!("{blocks} × {spec}")];
            row.extend(render_cols(&outcome.cell));
            rows.push(row);
            ctx.note(&format!("{spec_str} done"));
        }
        print_table(
            "RIL-Blocks: SAT seconds vs block width (≈4 gates absorbed)",
            &["Config", "Key bits", "SAT time", "DIP iterations"],
            &rows,
        );
        ctx.note(
            "expected shape: both scalings grow the key search space per absorbed \
             gate; the routing+LUT composition (RIL) grows hardness faster than key \
             count alone (paper Section III-A)",
        );
        Ok(ExperimentOutput::summary(format!(
            "{} LUT sizes + {} block widths attacked",
            lut_sizes.count(),
            spec_names.len()
        )))
    }
}
