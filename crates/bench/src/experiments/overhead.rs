//! Section III-A overhead claim: a few large RIL-Blocks beat many 2×2
//! blocks — "the overhead incurred by leveraging the 8×8×8 blocks is ~3×
//! lower when compared to 75 2×2 RIL-blocks" — while being strictly harder
//! to attack. Prints both the analytic model and measured gate counts on
//! the c7552-class host.

use ril_core::{ril_overhead, Obfuscator, RilBlockSpec};
use ril_netlist::generators;

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// The §III-A overhead comparison.
pub struct Overhead;

impl Experiment for Overhead {
    fn name(&self) -> &'static str {
        "overhead"
    }

    fn describe(&self) -> &'static str {
        "§III-A overhead comparison: analytic model + measured gate counts"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        // Analytic model (host-independent).
        let configs = [
            (RilBlockSpec::size_2x2(), 75usize),
            (RilBlockSpec::size_2x2().with_scan(true), 75),
            (RilBlockSpec::size_8x8(), 3),
            (RilBlockSpec::size_8x8x8(), 3),
            (RilBlockSpec::size_8x8x8().with_scan(true), 3),
        ];
        let mut rows = Vec::new();
        for (spec, blocks) in configs {
            let o = ril_overhead(&spec, blocks);
            rows.push(vec![
                format!(
                    "{blocks} × {spec}{}",
                    if spec.scan_obfuscation { " +SE" } else { "" }
                ),
                o.muxes.to_string(),
                o.transistors.to_string(),
                o.mtjs.to_string(),
                o.key_bits.to_string(),
            ]);
        }
        print_table(
            "Analytic overhead model",
            &["Config", "MUXes", "Transistors", "MTJs", "Key bits"],
            &rows,
        );
        let small = ril_overhead(&RilBlockSpec::size_2x2(), 75);
        let big = ril_overhead(&RilBlockSpec::size_8x8x8(), 3);
        let mux_ratio = small.muxes as f64 / big.muxes as f64;
        ctx.note(&format!(
            "MUX ratio 75×2x2 : 3×8x8x8 = {mux_ratio:.2}× (paper claims ~3× lower for the large blocks)"
        ));

        // Measured on the host (skipped under --smoke: the c7552-class
        // obfuscation is the only slow part of this experiment).
        if !cfg.smoke {
            let host = generators::benchmark("c7552").ok_or("unknown benchmark c7552")?;
            let mut rows = Vec::new();
            for (spec, blocks, seed) in [
                (RilBlockSpec::size_2x2(), 75usize, 1u64),
                (RilBlockSpec::size_8x8x8(), 3, 2),
            ] {
                match Obfuscator::new(spec)
                    .blocks(blocks)
                    .seed(seed)
                    .obfuscate(&host)
                {
                    Err(e) => rows.push(vec![
                        format!("{blocks} × {spec}"),
                        format!("error: {e}"),
                        String::new(),
                        String::new(),
                    ]),
                    Ok(locked) => rows.push(vec![
                        format!("{blocks} × {spec}"),
                        format!(
                            "{} (+{:.1} %)",
                            locked.gate_overhead(),
                            100.0 * locked.gate_overhead() as f64 / host.gate_count() as f64
                        ),
                        locked.key_width().to_string(),
                        format!("{}", locked.verify(8)?),
                    ]),
                }
            }
            print_table(
                &format!(
                    "Measured on `{}` ({} gates)",
                    host.name(),
                    host.gate_count()
                ),
                &["Config", "Gate overhead", "Key bits", "Verified"],
                &rows,
            );
        }
        Ok(ExperimentOutput::summary(format!(
            "MUX ratio 75×2x2 : 3×8x8x8 = {mux_ratio:.2}×"
        )))
    }
}
