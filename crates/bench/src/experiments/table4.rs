//! Table IV — energy consumption of the MRAM-based LUT, next to the
//! paper's reported numbers and the SRAM baseline.

use ril_mram::{measure_mram_profile, measure_sram_profile, PAPER_TABLE_IV};

use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::{print_table, RunConfig};

/// The Table IV energy comparison.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn describe(&self) -> &'static str {
        "Table IV — MRAM LUT energy vs paper numbers and SRAM baseline"
    }

    fn run(&self, _cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let m = measure_mram_profile();
        let s = measure_sram_profile();
        let p = PAPER_TABLE_IV;
        let rows = vec![
            vec![
                "Read".into(),
                format!("{:.2} fJ", m.read0_fj),
                format!("{:.2} fJ", m.read1_fj),
                format!("{:.2} fJ", m.read_avg_fj()),
                format!(
                    "{:.2} / {:.2} / {:.2} fJ",
                    p.read0_fj,
                    p.read1_fj,
                    p.read_avg_fj()
                ),
            ],
            vec![
                "Write".into(),
                format!("{:.2} fJ", m.write0_fj),
                format!("{:.2} fJ", m.write1_fj),
                format!("{:.2} fJ", m.write_avg_fj()),
                format!(
                    "{:.2} / {:.2} / {:.2} fJ",
                    p.write0_fj,
                    p.write1_fj,
                    p.write_avg_fj()
                ),
            ],
            vec![
                "Standby".into(),
                format!("{:.2} aJ", m.standby_aj),
                format!("{:.2} aJ", m.standby_aj),
                format!("{:.2} aJ", m.standby_aj),
                format!("{:.2} aJ", p.standby_aj),
            ],
        ];
        print_table(
            "Table IV — MRAM-based LUT energy (measured vs paper)",
            &[
                "Operation",
                "Logic \"0\"",
                "Logic \"1\"",
                "Average",
                "Paper (0/1/avg)",
            ],
            &rows,
        );
        ctx.note(&format!(
            "read asymmetry (P-SCA leakage proxy): {:.4} % (paper: near-zero)",
            m.read_asymmetry() * 100.0
        ));
        ctx.note(&format!(
            "SRAM baseline: read {:.1}/{:.1} fJ (asymmetry {:.1} %), write {:.1} fJ, standby {:.1} aJ/µs \
             → MRAM standby is {:.0}× lower; SRAM read energy is value-dependent",
            s.read0_fj,
            s.read1_fj,
            s.read_asymmetry() * 100.0,
            s.write_avg_fj(),
            s.standby_aj,
            s.standby_aj / m.standby_aj
        ));
        Ok(ExperimentOutput::summary(format!(
            "read asymmetry {:.4} %, MRAM standby {:.0}× below SRAM",
            m.read_asymmetry() * 100.0,
            s.standby_aj / m.standby_aj
        )))
    }
}
