//! The quantitative version of Table V's "dynamic morphing" row: the
//! same SAT attack, the same c7552 host, but the oracle is a chip hosted
//! by a live `ril-serve` instance whose morph scheduler re-keys it every
//! K queries. As the morph period shrinks, iterations-to-key must grow —
//! and past a point the attack stops converging at all, because each
//! morph re-rolls the Scan-Enable keys and the accumulated DIP responses
//! stop describing the chip being queried.
//!
//! Every cell is fully deterministic: the obfuscator, the server's morph
//! RNG, and the solver are all seeded, so the sweep reproduces bit-for-bit
//! and the monotonicity check below is a hard assertion, not a tendency.

use ril_attacks::satattack::{sat_attack, SatAttackConfig};
use ril_attacks::{attacker_view, AttackReport};
use ril_serve::{ClientConfig, DesignSpec, RemoteOracle, ServeConfig, Server};

use crate::cache::CacheKey;
use crate::experiment::{Experiment, ExperimentError, ExperimentOutput, RunContext};
use crate::experiments::cached_outcome;
use crate::{print_table, CellOutcome, RunConfig};

/// Morph-period sweep over a served, scheduler-driven chip.
pub struct DynamicDefense;

/// Morph periods, slowest first (`None` = scheduler off). The validation
/// below walks this order, so it must stay sorted by shrinking period.
const PERIODS: &[Option<u64>] = &[None, Some(4), Some(2), Some(1)];

fn design() -> DesignSpec {
    DesignSpec {
        benchmark: "c7552".to_string(),
        spec: "2x2".to_string(),
        blocks: 2,
        seed: 1001,
        scan: true,
        // Provisioned transparent: every MTJ_SE bit starts 0, so the
        // static baseline is breakable and only the *morphs* arm the
        // scan corruption — isolating the dynamic defense's effect.
        zero_se: true,
    }
}

fn period_label(period: Option<u64>) -> String {
    match period {
        None => "off".to_string(),
        Some(k) => format!("K={k}"),
    }
}

/// Iterations-to-key: the DIP count for a *truly correct* recovered key,
/// `None` (the tables' `∞`) for timeouts, failures, and keys that only
/// match the corrupted responses.
fn iterations_to_key(report: &AttackReport) -> Option<usize> {
    (report.result.succeeded() && report.functionally_correct == Some(true))
        .then_some(report.iterations)
}

fn attack_cell(
    ctx: &RunContext,
    cfg: &RunConfig,
    period: Option<u64>,
) -> Result<CellOutcome, ExperimentError> {
    let design = design();
    let key = CacheKey::new("dynamic_defense")
        .field("bench", design.benchmark.as_str())
        .field("spec", design.spec.as_str())
        .field("blocks", design.blocks)
        .field("seed", design.seed)
        .field("morph_queries", period.map_or(0, |k| k))
        .field("timeout_s", cfg.timeout.as_secs())
        .field("solver_threads", cfg.solver_threads);
    cached_outcome(
        ctx,
        &key,
        &format!("c7552 / morph {}", period_label(period)),
        || {
            let handle = Server::start_traced(
                ServeConfig {
                    morph_queries: period,
                    ..ServeConfig::default()
                },
                ctx.trace(),
                ctx.root_span(),
            )
            .map_err(|e| format!("serve bind failed: {e}"))?;
            let locked = design.build().map_err(ExperimentError::Other)?;
            let view = attacker_view(&locked);
            let mut oracle =
                RemoteOracle::activate(handle.addr().to_string(), ClientConfig::default(), &design)
                    .map_err(|e| format!("activation failed: {e}"))?;
            let a_cfg = SatAttackConfig {
                timeout: Some(cfg.attack_timeout()),
                solver: ril_sat::SolverConfig {
                    threads: cfg.solver_threads,
                    ..ril_sat::SolverConfig::default()
                },
                ..SatAttackConfig::default()
            };
            let mut report = sat_attack(&view, &mut oracle, &a_cfg);
            if let Some(found) = report.result.key() {
                report.functionally_correct = Some(
                    locked
                        .equivalent_under_key(found, 32)
                        .map_err(ExperimentError::Netlist)?,
                );
            }
            let rekeys = oracle.generation_changes();
            handle.shutdown();
            let cell = match iterations_to_key(&report) {
                Some(iters) => format!("{iters} iters ({} re-keys seen)", rekeys),
                None => format!("∞ defended ({} re-keys seen)", rekeys),
            };
            Ok(CellOutcome {
                cell,
                report: Some(report),
            })
        },
    )
}

impl Experiment for DynamicDefense {
    fn name(&self) -> &'static str {
        "dynamic_defense"
    }

    fn describe(&self) -> &'static str {
        "Table V dynamic row — morph period vs SAT-attack progress over ril-serve"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let design = design();
        ctx.note(&format!(
            "dynamic defense sweep — {} × {} blocks on {}, served over TCP, \
             morph periods {:?}, timeout {:?}",
            design.blocks,
            design.spec,
            design.benchmark,
            PERIODS.iter().map(|p| period_label(*p)).collect::<Vec<_>>(),
            cfg.timeout,
        ));

        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let mut iters: Vec<Option<usize>> = Vec::new();
        for &period in PERIODS {
            let outcome = attack_cell(ctx, cfg, period)?;
            let report = outcome
                .report
                .as_ref()
                .ok_or_else(|| format!("morph {}: cell has no report", period_label(period)))?;
            let to_key = iterations_to_key(report);
            json_rows.push(format!(
                r#"{{"morph_queries":{},"iterations_to_key":{},"iterations":{},"queries":{},"result":"{}","wall_s":{:.3}}}"#,
                period.map_or(0, |k| k),
                to_key.map_or("null".to_string(), |n| n.to_string()),
                report.iterations,
                report.oracle_queries,
                report.result.kind(),
                report.wall.as_secs_f64(),
            ));
            iters.push(to_key);
            rows.push(vec![period_label(period), outcome.cell.clone()]);
        }

        // The acceptance check: as the morph period shrinks,
        // iterations-to-key strictly increases or the attack stops
        // converging (`∞`). A faster *or equal* break under a faster
        // morph schedule means the defense did nothing — fail the run.
        for (pair, window) in PERIODS.windows(2).zip(iters.windows(2)) {
            let (pa, pb) = (pair[0], pair[1]);
            let ok = match (window[0], window[1]) {
                (_, None) => true,
                (Some(a), Some(b)) => b > a,
                (None, Some(_)) => false,
            };
            if !ok {
                return Err(ExperimentError::Other(format!(
                    "defense regression: morph {} yields iterations-to-key {:?}, \
                     not above morph {}'s {:?}",
                    period_label(pb),
                    window[1],
                    period_label(pa),
                    window[0],
                )));
            }
        }

        print_table(
            "SAT attack vs a live morph scheduler (c7552, 2 × 2x2 + SE)",
            &["Morph period (queries)", "Iterations to key"],
            &rows,
        );
        let artifact = ctx.write_output(
            "DYNAMIC_DEFENSE.json",
            &format!(
                r#"{{"design":{},"rows":[{}]}}"#,
                design.to_json(),
                json_rows.join(",")
            ),
        )?;
        let defended = iters.iter().filter(|i| i.is_none()).count();
        Ok(ExperimentOutput {
            summary: format!(
                "{} morph periods; baseline {} iterations; {} defended",
                PERIODS.len(),
                iters[0].map_or("∞".to_string(), |n| n.to_string()),
                defended,
            ),
            files: vec![artifact],
        })
    }
}
