//! Thread-based parallel sweep driver for the benchmark tables.
//!
//! Every cell of Table I / Table III is an independent lock-then-attack
//! experiment (its own netlist copy, oracle, and solver sessions — nothing
//! shared mutably), so the tables fan cells across cores with plain scoped
//! threads pulling from an atomic work queue. No thread pool dependency:
//! the whole driver is `std::thread::scope` + one `AtomicUsize`.
//!
//! Worker count comes from `RIL_THREADS`, defaulting to the machine's
//! available parallelism. `RIL_THREADS=1` restores fully serial runs (for
//! clean per-cell wall-clock comparisons, since parallel cells share
//! memory bandwidth).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for [`parallel_sweep`]: the `RIL_THREADS`
/// environment variable (minimum 1), or the machine's available
/// parallelism.
pub fn sweep_threads() -> usize {
    std::env::var("RIL_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `job` over every item on [`sweep_threads`] scoped worker threads,
/// returning results in input order. Jobs are claimed from an atomic
/// queue, so long cells (an `∞` attack next to a 0.3 s one) don't stall
/// the sweep the way fixed chunking would.
///
/// # Panics
///
/// Propagates a panicking job once all workers are joined.
pub fn parallel_sweep<T, R, F>(items: &[T], job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_sweep_with(sweep_threads(), items, job)
}

/// [`parallel_sweep`] with an explicit worker count — the experiment
/// framework passes `RunConfig::threads` here instead of re-reading the
/// environment per sweep.
///
/// # Panics
///
/// Propagates a panicking job once all workers are joined.
pub fn parallel_sweep_with<T, R, F>(workers: usize, items: &[T], job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_sweep_traced(
        workers,
        &ril_trace::Tracer::disabled(),
        ril_trace::SpanId::NONE,
        items,
        job,
    )
}

/// [`parallel_sweep_with`] with a trace context: every worker thread
/// installs `tracer` with `parent` as the ambient parent span before
/// pulling jobs, so spans opened inside `job` (cells, attacks, solver
/// calls) attach to the sweep's owning span instead of vanishing. Workers
/// are plain `std::thread`s, which would otherwise start with no
/// thread-local trace context. A disabled tracer makes this identical to
/// the untraced sweep.
///
/// # Panics
///
/// Propagates a panicking job once all workers are joined.
pub fn parallel_sweep_traced<T, R, F>(
    workers: usize,
    tracer: &ril_trace::Tracer,
    parent: ril_trace::SpanId,
    items: &[T],
    job: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _trace_ctx = tracer.install(parent);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = job(i, &items[i]);
                    *results[i].lock().expect("result slot") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every item processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let squares = parallel_sweep(&items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        assert_eq!(squares, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_sweep(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn each_item_processed_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let out = parallel_sweep(&items, |_, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn explicit_worker_count_is_honored() {
        let items: Vec<usize> = (0..16).collect();
        let out = parallel_sweep_with(3, &items, |_, &x| x + 1);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
        // Degenerate worker counts are clamped, not panicked on.
        let out = parallel_sweep_with(0, &items[..2], |_, &x| x);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn thread_knob_parses() {
        // Can't mutate the env safely under the parallel test harness, so
        // just assert the fallback is sane.
        assert!(sweep_threads() >= 1);
    }
}
