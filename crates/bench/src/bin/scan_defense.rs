//! Sections III-C / IV-C — the Scan-Enable defense in action: the same
//! locked design is attacked with and without the SE circuitry armed, by
//! the SAT attack, AppSAT, and the ScanSAT model. With SE armed, every
//! oracle access returns corrupted responses and all oracle-guided attacks
//! are defeated.

use ril_attacks::{run_appsat, run_sat_attack, scansat_attack, AppSatConfig, SatAttackConfig};
use ril_bench::{cell_timeout, defense_held, lock_with_armed_se, print_table};
use ril_core::{Obfuscator, RilBlockSpec};
use ril_netlist::generators;

fn main() {
    let host = generators::multiplier(6);
    println!(
        "Scan-Enable defense demo — host `{}` ({} gates), timeout {:?}",
        host.name(),
        host.gate_count(),
        cell_timeout()
    );
    let spec = RilBlockSpec::size_2x2();
    let plain = Obfuscator::new(spec)
        .blocks(3)
        .seed(21)
        .obfuscate(&host)
        .expect("host large enough");
    let armed = lock_with_armed_se(&host, spec, 3, 21).expect("armed lock");

    let sat_cfg = SatAttackConfig {
        timeout: Some(cell_timeout()),
        ..SatAttackConfig::default()
    };
    let app_cfg = AppSatConfig {
        timeout: Some(cell_timeout()),
        ..AppSatConfig::default()
    };

    let mut rows = Vec::new();
    for (name, locked) in [("3 × 2x2 (no SE)", &plain), ("3 × 2x2 + SE armed", &armed)] {
        let sat = run_sat_attack(locked, &sat_cfg).expect("sim ok");
        let app = run_appsat(locked, &app_cfg).expect("sim ok");
        let scan = scansat_attack(locked, &sat_cfg).expect("sim ok");
        let cell = |r: &ril_attacks::AttackReport| {
            if defense_held(&r.result, r.functionally_correct) {
                if r.result.succeeded() {
                    // The attack believes it won, but its key only matches
                    // the corrupted scan responses, not the real function.
                    "defended (recovered key is functionally wrong)".to_string()
                } else {
                    format!("defended ({})", r.result)
                }
            } else {
                format!("BROKEN in {}", r.table_cell())
            }
        };
        rows.push(vec![name.to_string(), cell(&sat), cell(&app), cell(&scan)]);
    }
    print_table(
        "Oracle-guided attacks vs the SE defense",
        &["Design", "SAT attack", "AppSAT", "ScanSAT model"],
        &rows,
    );
    println!(
        "\nWhy: with SE armed, asserting scan-enable flips the output of every LUT\n\
         whose hidden MTJ_SE key is 1 — an OR LUT answers like a NOR (Section IV-C),\n\
         and no key hypothesis is consistent with the corrupted responses once the\n\
         inversions mix into wider cones. The IP owner, who knows the SE keys,\n\
         tests the chip normally."
    );
}
