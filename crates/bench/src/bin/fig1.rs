//! Fig. 1 / Section II-B motivation — the same polymorphic devices encoded
//! two ways for SAT simulation:
//!
//! * **MESO form**: 8 candidate gates + a 7-MUX selection tree (15 nodes,
//!   3 key bits per device) — the original formulation of \[9\];
//! * **LUT-2 form**: the 3-MUX select tree (4 key bits per device).
//!
//! The LUT-2 re-encoding both shrinks the instance and (as the paper
//! observes) lets the SAT attack finish dramatically faster than the
//! timeout-prone MESO runs reported in \[9\].

use ril_attacks::{sat_attack, Oracle, SatAttackConfig};
use ril_bench::{cell_timeout, print_table};
use ril_core::key::{KeyBitKind, KeyStore};
use ril_core::lut::{materialize_lut2, materialize_meso, meso_selector_for, MESO_FUNCTIONS};
use ril_core::LockedCircuit;
use ril_netlist::gate::truth_table_of;
use ril_netlist::{generators, GateId, GateKind, Netlist};

/// Replaces `count` MESO-representable gates using either encoding.
fn lock_with_encoding(host: &Netlist, count: usize, meso: bool) -> LockedCircuit {
    let mut nl = host.clone();
    let mut keys = KeyStore::new();
    let victims: Vec<GateId> = nl
        .gates()
        .filter(|(_, g)| {
            g.inputs().len() == 2
                && truth_table_of(g.kind())
                    .map(|tt| MESO_FUNCTIONS.contains(&tt))
                    .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .take(count)
        .collect();
    assert_eq!(victims.len(), count, "host lacks MESO-encodable gates");
    for gid in victims {
        let gate = nl.gate(gid);
        let (a, b) = (gate.inputs()[0], gate.inputs()[1]);
        let out = gate.output();
        let tt = truth_table_of(gate.kind()).expect("checked");
        nl.remove_gate(gid);
        let new_out = if meso {
            let sel = meso_selector_for(tt).expect("MESO function");
            let mut knets = Vec::new();
            for bit in 0..3 {
                let net = nl
                    .add_key_input(format!("keyinput{}", keys.len()))
                    .expect("fresh name");
                keys.push(KeyBitKind::Baseline, (sel >> bit) & 1 == 1);
                knets.push(net);
            }
            materialize_meso(&mut nl, a, b, [knets[0], knets[1], knets[2]]).expect("build")
        } else {
            let mut knets = Vec::new();
            for bit in 0..4 {
                let net = nl
                    .add_key_input(format!("keyinput{}", keys.len()))
                    .expect("fresh name");
                keys.push(KeyBitKind::Baseline, (tt >> bit) & 1 == 1);
                knets.push(net);
            }
            materialize_lut2(&mut nl, a, b, [knets[0], knets[1], knets[2], knets[3]])
                .expect("build")
        };
        nl.add_gate(GateKind::Buf, &[new_out], out)
            .expect("re-drive");
    }
    LockedCircuit {
        original: host.clone(),
        netlist: nl,
        keys,
        spec: ril_core::RilBlockSpec::size_2x2(),
        blocks: 0,
        block_meta: Vec::new(),
    }
}

fn main() {
    let host = generators::benchmark("c7552").expect("known benchmark");
    println!(
        "Fig. 1 reproduction — host `{}`, timeout {:?}",
        host.name(),
        cell_timeout()
    );
    let mut rows = Vec::new();
    for count in [4usize, 8, 16, 32] {
        let mut row = vec![count.to_string()];
        for meso in [true, false] {
            let locked = lock_with_encoding(&host, count, meso);
            locked.netlist.validate().expect("valid lock");
            let mut oracle = Oracle::new(&locked).expect("oracle");
            let cfg = SatAttackConfig {
                timeout: Some(cell_timeout()),
                ..SatAttackConfig::default()
            };
            let report = sat_attack(&locked.netlist, &mut oracle, &cfg);
            let extra_gates = locked.netlist.gate_count() - host.gate_count();
            row.push(format!(
                "{} ({} extra gates)",
                report.table_cell(),
                extra_gates
            ));
        }
        rows.push(row);
        eprintln!("  {count} devices done");
    }
    print_table(
        "Fig. 1 — SAT-attack seconds per encoding",
        &[
            "Devices",
            "MESO form (8 gates + 7 MUX)",
            "LUT-2 form (3 MUX)",
        ],
        &rows,
    );
    println!(
        "\nKey-space note: a 2-input LUT covers all 16 functions (Table II) with 4\n\
         key bits, vs the MESO device's 8 functions with 3 bits — yet its SAT\n\
         encoding is 5× smaller (3 nodes vs 15), which is what erases the\n\
         MESO formulation's apparent SAT-hardness."
    );
}
