//! Table I — SAT-attack seconds vs. number and size of RIL-Blocks on the
//! c7552-class host. `RIL_TABLE1_FULL=1` runs the paper's full row set.

use ril_bench::{attack_cell, cell_timeout, print_table};
use ril_core::RilBlockSpec;
use ril_netlist::generators;

/// The paper's Table I, for side-by-side printing: (blocks, 2x2, 8x8,
/// 8x8x8) with `None` = ∞.
const PAPER: &[(usize, Option<f64>, Option<f64>, Option<f64>)] = &[
    (1, Some(0.31), Some(0.63), Some(23.53)),
    (2, Some(0.35), Some(6.33), Some(198.556)),
    (3, Some(0.405), Some(20.422), None),
    (4, Some(0.55), Some(180.938), None),
    (5, Some(0.67), Some(316.231), None),
    (10, Some(1.16), None, None),
    (25, Some(34.5), None, None),
    (50, Some(102.319), None, None),
    (75, None, None, None),
    (100, None, None, None),
];

fn paper_cell(v: Option<f64>) -> String {
    v.map(|s| format!("{s}")).unwrap_or_else(|| "∞".into())
}

fn main() {
    let full = std::env::var("RIL_TABLE1_FULL").is_ok_and(|v| v == "1");
    let host = generators::benchmark("c7552").expect("known benchmark");
    println!(
        "Table I reproduction — host `{}` ({}), timeout {:?} (paper: 5 days on c7552)",
        host.name(),
        host.stats(),
        cell_timeout()
    );
    let rows_wanted: Vec<usize> = if full {
        PAPER.iter().map(|r| r.0).collect()
    } else {
        vec![1, 2, 3, 4, 5, 10]
    };
    let specs = [
        RilBlockSpec::size_2x2(),
        RilBlockSpec::size_8x8(),
        RilBlockSpec::size_8x8x8(),
    ];
    let mut rows = Vec::new();
    for &count in &rows_wanted {
        let paper = PAPER.iter().find(|r| r.0 == count).expect("row exists");
        let mut row = vec![count.to_string()];
        for (i, spec) in specs.iter().enumerate() {
            let measured = attack_cell(&host, *spec, count, 1000 + count as u64);
            let p = paper_cell([paper.1, paper.2, paper.3][i]);
            row.push(format!("{measured} (paper {p})"));
        }
        rows.push(row);
        eprintln!("  row {count} done");
    }
    print_table(
        "Table I — SAT-attack seconds, measured (paper)",
        &["RIL Blocks", "2x2", "8x8", "8x8x8"],
        &rows,
    );
    println!(
        "\nShape check: larger/more blocks ⇒ slower attack; 8x8x8 rows reach ∞ first,\n\
         matching the paper's ordering (absolute numbers differ: synthetic host,\n\
         from-scratch CDCL solver, scaled timeout)."
    );
}
