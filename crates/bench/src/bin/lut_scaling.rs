//! Section IV-B ablation — "the LUT used in RIL-block can be increased to
//! increase the SAT-hardness of the resulting RIL-Block": SAT-attack cost
//! versus LUT input count for plain LUT locking (the custom-LUT scheme of
//! refs \[8\]/\[12\]), and versus RIL-Block width for the full primitive.

use ril_attacks::{run_sat_attack, SatAttackConfig};
use ril_bench::{cell_timeout, print_table};
use ril_core::baselines::lutm_lock;
use ril_core::{Obfuscator, RilBlockSpec};
use ril_netlist::generators;

fn main() {
    let host = generators::benchmark("c7552").expect("known benchmark");
    println!(
        "LUT-size / block-width scaling — host `{}`, timeout {:?}",
        host.name(),
        cell_timeout()
    );
    let cfg = SatAttackConfig {
        timeout: Some(cell_timeout()),
        ..SatAttackConfig::default()
    };

    // Plain LUT locking, growing the LUT input count.
    let mut rows = Vec::new();
    for m in 2..=6usize {
        let locked = lutm_lock(&host, 4, m, 77).expect("host large enough");
        let report = run_sat_attack(&locked, &cfg).expect("sim ok");
        rows.push(vec![
            format!("4 × LUT-{m}"),
            locked.key_width().to_string(),
            report.table_cell(),
            report.iterations.to_string(),
        ]);
        eprintln!("  LUT-{m} done");
    }
    print_table(
        "Plain LUT locking: SAT seconds vs LUT size",
        &["Config", "Key bits", "SAT time", "DIP iterations"],
        &rows,
    );

    // RIL-Block width scaling at a fixed absorbed-gate budget.
    let mut rows = Vec::new();
    for spec_str in ["2x2", "4x4", "8x8", "4x4x4", "8x8x8"] {
        let spec = RilBlockSpec::parse(spec_str).expect("valid spec");
        // Keep the absorbed-gate count comparable (~4 gates).
        let blocks = (4 / spec.luts()).max(1);
        match Obfuscator::new(spec)
            .blocks(blocks)
            .seed(55)
            .obfuscate(&host)
        {
            Err(e) => rows.push(vec![
                spec_str.into(),
                format!("error: {e}"),
                String::new(),
                String::new(),
            ]),
            Ok(locked) => {
                let report = run_sat_attack(&locked, &cfg).expect("sim ok");
                rows.push(vec![
                    format!("{blocks} × {spec}"),
                    locked.key_width().to_string(),
                    report.table_cell(),
                    report.iterations.to_string(),
                ]);
            }
        }
        eprintln!("  {spec_str} done");
    }
    print_table(
        "RIL-Blocks: SAT seconds vs block width (≈4 gates absorbed)",
        &["Config", "Key bits", "SAT time", "DIP iterations"],
        &rows,
    );
    println!(
        "\nExpected shape: both scalings grow the key search space per absorbed\n\
         gate; the routing+LUT composition (RIL) grows hardness faster than key\n\
         count alone (paper Section III-A)."
    );
}
