//! Section III-A switch-box comparison, measured: "an additional inverter
//! in the switch box of FullLock adds to extra overhead and increases the
//! number of correct keys in the circuit". Routing-only locks over the
//! same wires, exhaustive key-space enumeration.

use ril_bench::print_table;
use ril_core::baselines::{fulllock_lock, ril_routing_lock};
use ril_core::metrics::count_equivalent_keys;
use ril_netlist::generators;

fn main() {
    let host = generators::adder(8);
    println!(
        "Key-redundancy comparison — host `{}` ({} gates), exhaustive key enumeration",
        host.name(),
        host.gate_count()
    );
    let mut rows = Vec::new();
    for (width, seed) in [(2usize, 3u64), (4, 5), (4, 11), (4, 23)] {
        let ril = ril_routing_lock(&host, width, seed).expect("lock");
        let fl = fulllock_lock(&host, width, seed).expect("lock");
        assert!(ril.verify(8).expect("sim ok"));
        assert!(fl.verify(8).expect("sim ok"));
        let ril_eq = count_equivalent_keys(&ril, 16, 8)
            .expect("sim ok")
            .expect("small key space");
        let fl_eq = count_equivalent_keys(&fl, 16, 8)
            .expect("sim ok")
            .expect("small key space");
        rows.push(vec![
            format!("{width}×{width} (seed {seed})"),
            format!("{} of {}", ril_eq, 1u64 << ril.key_width()),
            format!("{} of {}", fl_eq, 1u64 << fl.key_width()),
            format!(
                "{} extra gates vs {}",
                ril.gate_overhead(),
                fl.gate_overhead()
            ),
        ]);
    }
    print_table(
        "Correct keys in routing-only locks (RIL boxes vs FullLock boxes)",
        &[
            "Network",
            "RIL correct keys",
            "FullLock correct keys",
            "Overhead (RIL vs FullLock)",
        ],
        &rows,
    );
    println!(
        "\nPaper claim (Section III-A): the FullLock inverter both doubles the MUX\n\
         count and multiplies the number of correct keys (wrong inversions can be\n\
         compensated downstream); the RIL box avoids both."
    );
}
