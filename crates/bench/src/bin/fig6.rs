//! Fig. 6 — Monte-Carlo process-variation analysis of the 2-input MRAM
//! LUT implementing an AND gate: (a) read currents, (b) read power,
//! (c) MTJ resistance distributions, plus the read/write error rates the
//! paper reports (< 0.01 %).

use ril_bench::print_table;
use ril_mram::montecarlo::{run_monte_carlo, Distribution};

fn ascii_hist(d: &Distribution, bins: usize, width: usize) -> String {
    let hist = d.histogram(bins);
    let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    hist.iter()
        .map(|&(center, count)| {
            let bar = "█".repeat(count * width / max);
            format!("  {center:>10.3} | {bar} {count}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let instances = std::env::var("RIL_MC_INSTANCES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);
    println!("Fig. 6 reproduction — {instances} MC instances, AND-programmed LUT");
    println!("PV model (paper §IV-D): 1 % MTJ dims, 10 % Vth, 1 % MOS dims (1σ)\n");
    let report = run_monte_carlo(instances, 0b1000, 2026);

    let rows = vec![
        vec![
            "Read current, value 0 (µA)".into(),
            format!("{:.2}", report.read0_current_ua.mean()),
            format!("{:.2}", report.read0_current_ua.std_dev()),
            format!(
                "{:.2}–{:.2}",
                report.read0_current_ua.min(),
                report.read0_current_ua.max()
            ),
        ],
        vec![
            "Read current, value 1 (µA)".into(),
            format!("{:.2}", report.read1_current_ua.mean()),
            format!("{:.2}", report.read1_current_ua.std_dev()),
            format!(
                "{:.2}–{:.2}",
                report.read1_current_ua.min(),
                report.read1_current_ua.max()
            ),
        ],
        vec![
            "Read power, value 0 (µW)".into(),
            format!("{:.2}", report.read0_power_uw.mean()),
            format!("{:.2}", report.read0_power_uw.std_dev()),
            format!(
                "{:.2}–{:.2}",
                report.read0_power_uw.min(),
                report.read0_power_uw.max()
            ),
        ],
        vec![
            "Read power, value 1 (µW)".into(),
            format!("{:.2}", report.read1_power_uw.mean()),
            format!("{:.2}", report.read1_power_uw.std_dev()),
            format!(
                "{:.2}–{:.2}",
                report.read1_power_uw.min(),
                report.read1_power_uw.max()
            ),
        ],
        vec![
            "R_P (Ω)".into(),
            format!("{:.0}", report.r_parallel.mean()),
            format!("{:.0}", report.r_parallel.std_dev()),
            format!(
                "{:.0}–{:.0}",
                report.r_parallel.min(),
                report.r_parallel.max()
            ),
        ],
        vec![
            "R_AP (Ω)".into(),
            format!("{:.0}", report.r_antiparallel.mean()),
            format!("{:.0}", report.r_antiparallel.std_dev()),
            format!(
                "{:.0}–{:.0}",
                report.r_antiparallel.min(),
                report.r_antiparallel.max()
            ),
        ],
    ];
    print_table(
        "Fig. 6 — MC distribution summaries",
        &["Quantity", "Mean", "σ", "Range"],
        &rows,
    );

    println!("\n(a) read-power distribution, value 0 (µW):");
    println!("{}", ascii_hist(&report.read0_power_uw, 10, 40));
    println!("\n(b) read-power distribution, value 1 (µW):");
    println!("{}", ascii_hist(&report.read1_power_uw, 10, 40));
    println!("\n(c) MTJ resistances (Ω) — R_P then R_AP (non-overlapping = wide margin):");
    println!("{}", ascii_hist(&report.r_parallel, 8, 40));
    println!("{}", ascii_hist(&report.r_antiparallel, 8, 40));

    println!(
        "\nErrors: write {} / {} ({:.4} %), read {} / {} ({:.4} %)  — paper: < 0.01 %",
        report.write_errors,
        report.writes,
        report.write_error_rate() * 100.0,
        report.read_errors,
        report.reads,
        report.read_error_rate() * 100.0
    );
    println!(
        "Read-power symmetry gap (P-SCA proxy): {:.4} %  — paper: \"almost identical\"",
        report.power_symmetry_gap() * 100.0
    );
}
