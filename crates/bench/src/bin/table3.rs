//! Table III — SAT seconds for 1/2/3 8×8×8 RIL-Blocks on the ISCAS-89 /
//! ITC-99 and CEP benchmark set, plus the AppSAT column under the armed
//! Scan-Enable circuitry (✗ = attack fails, as the paper reports for every
//! circuit).
//!
//! Cells run in parallel across cores (`RIL_THREADS` to override); full
//! per-cell attack reports, including per-DIP-iteration solver statistics,
//! land in `exp_out/BENCH_table3.json`.

use ril_attacks::{run_appsat, AppSatConfig};
use ril_bench::{
    attack_cell_report, cell_timeout, defense_held, lock_with_armed_se, parallel_sweep,
    print_table, sweep_threads, write_output_file, CellOutcome,
};
use ril_core::RilBlockSpec;
use ril_netlist::generators;

/// One reported Table III row: (benchmark, 1, 2, 3 blocks; None = ∞).
type PaperRow = (&'static str, Option<f64>, Option<f64>, Option<f64>);

/// Paper Table III per benchmark for 1/2/3 blocks.
const PAPER: &[PaperRow] = &[
    ("b15", Some(124.25), Some(546.2), None),
    ("s35932", Some(105.1), Some(1864.2), None),
    ("s38584", Some(345.2), None, None),
    ("b20", Some(240.4), Some(2454.26), None),
    ("aes", Some(1060.56), None, None),
    ("sha256", Some(846.87), None, None),
    ("md5", Some(1450.1), None, None),
    ("gps", None, None, None),
];

/// One parallel job: a SAT cell (`blocks` ≥ 1) or the AppSAT/SE column
/// (`blocks` = 0).
#[derive(Clone, Copy)]
struct Cell {
    bench: &'static str,
    blocks: usize,
}

fn appsat_cell(host: &ril_netlist::Netlist, spec: RilBlockSpec) -> CellOutcome {
    match lock_with_armed_se(host, spec, 1, 100) {
        None => CellOutcome::bare("n/a"),
        Some(locked) => {
            let cfg = AppSatConfig {
                timeout: Some(cell_timeout()),
                ..AppSatConfig::default()
            };
            match run_appsat(&locked, &cfg) {
                Err(e) => CellOutcome::bare(format!("err:{e}")),
                Ok(report) => {
                    let cell = if defense_held(&report.result, report.functionally_correct) {
                        "✗ (paper ✗)".to_string()
                    } else {
                        "BROKE DEFENSE (paper ✗)".to_string()
                    };
                    CellOutcome {
                        cell,
                        report: Some(report),
                    }
                }
            }
        }
    }
}

fn main() {
    println!(
        "Table III reproduction — timeout {:?} per cell (paper: 5 days), {} worker threads",
        cell_timeout(),
        sweep_threads()
    );
    let spec = RilBlockSpec::size_8x8x8();

    let cells: Vec<Cell> = PAPER
        .iter()
        .flat_map(|&(name, ..)| {
            [1usize, 2, 3, 0].map(|blocks| Cell {
                bench: name,
                blocks,
            })
        })
        .collect();
    let outcomes = parallel_sweep(&cells, |_, cell| {
        let host = generators::benchmark(cell.bench).expect("known benchmark");
        let outcome = if cell.blocks == 0 {
            appsat_cell(&host, spec)
        } else {
            attack_cell_report(&host, spec, cell.blocks, 7 + cell.blocks as u64)
        };
        eprintln!(
            "  {} {}: {}",
            cell.bench,
            if cell.blocks == 0 {
                "appsat/SE".to_string()
            } else {
                format!("{} block(s)", cell.blocks)
            },
            outcome.cell
        );
        outcome
    });

    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    for (bi, &(name, p1, p2, p3)) in PAPER.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (ci, paper) in [(0usize, p1), (1, p2), (2, p3)] {
            let outcome = &outcomes[bi * 4 + ci];
            let p = paper.map(|s| s.to_string()).unwrap_or_else(|| "∞".into());
            row.push(format!("{} (paper {p})", outcome.cell));
            json_cells.push(format!(
                r#"{{"bench":"{name}","blocks":{},"attack":"sat","cell":"{}","report":{}}}"#,
                ci + 1,
                outcome.cell,
                outcome.report_json()
            ));
        }
        // AppSAT with the SE circuitry armed — the ✗ column.
        let appsat = &outcomes[bi * 4 + 3];
        row.push(appsat.cell.clone());
        json_cells.push(format!(
            r#"{{"bench":"{name}","blocks":1,"attack":"appsat_se","cell":"{}","report":{}}}"#,
            appsat.cell,
            appsat.report_json()
        ));
        rows.push(row);
    }
    print_table(
        "Table III — SAT seconds with N 8x8x8 RIL-Blocks, measured (paper)",
        &[
            "Circuit",
            "1 block",
            "2 blocks",
            "3 blocks",
            "AppSAT success",
        ],
        &rows,
    );
    let json = format!(
        r#"{{"table":"table3","timeout_s":{},"threads":{},"cells":[{}]}}"#,
        cell_timeout().as_secs_f64(),
        sweep_threads(),
        json_cells.join(",")
    );
    match write_output_file("BENCH_table3.json", &json) {
        Ok(path) => println!("\nPer-cell solver statistics: {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_table3.json: {e}"),
    }
}
