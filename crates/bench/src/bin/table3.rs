//! Table III — SAT seconds for 1/2/3 8×8×8 RIL-Blocks on the ISCAS-89 /
//! ITC-99 and CEP benchmark set, plus the AppSAT column under the armed
//! Scan-Enable circuitry (✗ = attack fails, as the paper reports for every
//! circuit).

use ril_attacks::{run_appsat, AppSatConfig};
use ril_bench::{attack_cell, cell_timeout, defense_held, lock_with_armed_se, print_table};
use ril_core::RilBlockSpec;
use ril_netlist::generators;

/// Paper Table III (seconds; None = ∞) per benchmark for 1/2/3 blocks.
const PAPER: &[(&str, Option<f64>, Option<f64>, Option<f64>)] = &[
    ("b15", Some(124.25), Some(546.2), None),
    ("s35932", Some(105.1), Some(1864.2), None),
    ("s38584", Some(345.2), None, None),
    ("b20", Some(240.4), Some(2454.26), None),
    ("aes", Some(1060.56), None, None),
    ("sha256", Some(846.87), None, None),
    ("md5", Some(1450.1), None, None),
    ("gps", None, None, None),
];

fn main() {
    println!(
        "Table III reproduction — timeout {:?} per cell (paper: 5 days)",
        cell_timeout()
    );
    let spec = RilBlockSpec::size_8x8x8();
    let mut rows = Vec::new();
    for &(name, p1, p2, p3) in PAPER {
        let host = generators::benchmark(name).expect("known benchmark");
        eprintln!("  {name}: {}", host.stats());
        let mut row = vec![name.to_string()];
        for (blocks, paper) in [(1usize, p1), (2, p2), (3, p3)] {
            let measured = attack_cell(&host, spec, blocks, 7 + blocks as u64);
            let p = paper.map(|s| s.to_string()).unwrap_or_else(|| "∞".into());
            row.push(format!("{measured} (paper {p})"));
        }
        // AppSAT with the SE circuitry armed — the ✗ column.
        let appsat_cell = match lock_with_armed_se(&host, spec, 1, 100) {
            None => "n/a".to_string(),
            Some(locked) => {
                let cfg = AppSatConfig {
                    timeout: Some(cell_timeout()),
                    ..AppSatConfig::default()
                };
                match run_appsat(&locked, &cfg) {
                    Err(e) => format!("err:{e}"),
                    Ok(report) => {
                        if defense_held(&report.result, report.functionally_correct) {
                            "✗ (paper ✗)".to_string()
                        } else {
                            "BROKE DEFENSE (paper ✗)".to_string()
                        }
                    }
                }
            }
        };
        row.push(appsat_cell);
        rows.push(row);
    }
    print_table(
        "Table III — SAT seconds with N 8x8x8 RIL-Blocks, measured (paper)",
        &["Circuit", "1 block", "2 blocks", "3 blocks", "AppSAT success"],
        &rows,
    );
}
