//! `ril-bench` — the one CLI for every table and figure of the paper.
//!
//! ```text
//! ril-bench list                      # what can run
//! ril-bench run table1 table3         # specific experiments
//! ril-bench run --all                 # everything, in registry order
//! ril-bench run --all --smoke         # CI-sized variants
//! ril-bench run --no-cache table1     # recompute every cell
//! ril-bench run --out-dir out table1  # override RIL_OUT_DIR
//! ```
//!
//! ```text
//! ril-bench trace exp_out             # per-phase time breakdown of a run
//! ril-bench validate exp_out          # integrity-check run artifacts
//! ```
//!
//! Environment knobs (`RIL_TIMEOUT_SECS`, `RIL_THREADS`, `RIL_OUT_DIR`,
//! `RIL_TABLE1_FULL`, `RIL_MC_INSTANCES`, `RIL_LOG`, `RIL_TRACE`) are
//! parsed and validated once into a `RunConfig`; malformed values are
//! hard errors, not silent defaults. Each experiment leaves
//! `MANIFEST_<name>.json`, an `EVENTS_<name>.jsonl` stream, trace spans
//! (`SPANS_<name>.jsonl` + Perfetto-loadable `TRACE_<name>.json`), and
//! content-addressed cell caches under the output directory, so
//! interrupted sweeps resume where they stopped.

use std::path::Path;
use std::process::ExitCode;

use ril_bench::experiment::{find, registry, run_experiments, Experiment};
use ril_bench::{trace_report, validate_run_dir, RunConfig};

fn usage() -> &'static str {
    "usage:\n  ril-bench list\n  ril-bench run [--all] [--smoke] [--no-cache] [--out-dir DIR] [NAME…]\n  ril-bench trace <run-dir>\n  ril-bench validate <run-dir>"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<15} description", "experiment");
            for exp in registry() {
                println!("{:<15} {}", exp.name(), exp.describe());
            }
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("trace") => run_dir_command(&args[1..], "trace", trace_report),
        Some("validate") => run_dir_command(&args[1..], "validate", validate_run_dir),
        Some(other) => {
            eprintln!("unknown command {other:?}\n{}", usage());
            ExitCode::from(2)
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_dir_command(
    args: &[String],
    verb: &str,
    f: fn(&Path) -> Result<String, String>,
) -> ExitCode {
    let dir = match args {
        [dir] if !dir.starts_with('-') => Path::new(dir),
        _ => {
            eprintln!("{verb} takes exactly one run directory\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match f(dir) {
        Ok(summary) => {
            println!("{verb} {}: {summary}", dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{verb} {} failed:\n{e}", dir.display());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut cfg = match RunConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("invalid environment: {e}");
            return ExitCode::from(2);
        }
    };
    let mut all = false;
    let mut smoke = false;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--smoke" => smoke = true,
            "--no-cache" => cfg.use_cache = false,
            "--out-dir" => match it.next() {
                Some(dir) => cfg.out_dir = dir.into(),
                None => {
                    eprintln!("--out-dir needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}\n{}", usage());
                return ExitCode::from(2);
            }
            name => names.push(name.to_string()),
        }
    }
    if smoke {
        cfg = cfg.apply_smoke();
    }
    let experiments: Vec<Box<dyn Experiment>> = if all {
        if !names.is_empty() {
            eprintln!(
                "--all and explicit names are mutually exclusive\n{}",
                usage()
            );
            return ExitCode::from(2);
        }
        registry()
    } else {
        if names.is_empty() {
            eprintln!("nothing to run\n{}", usage());
            return ExitCode::from(2);
        }
        let mut exps = Vec::new();
        for name in &names {
            match find(name) {
                Some(exp) => exps.push(exp),
                None => {
                    eprintln!("unknown experiment {name:?} — try `ril-bench list`");
                    return ExitCode::from(2);
                }
            }
        }
        exps
    };

    let records = run_experiments(&experiments, &cfg);
    println!("\n== run summary ({}) ==", cfg.out_dir.display());
    let mut failures = 0usize;
    for r in &records {
        match &r.outcome {
            Ok(summary) => println!(
                "  ok   {:<15} {:>8.1}s  cached {:>3}  computed {:>3}  {}",
                r.name, r.wall_s, r.cached_cells, r.computed_cells, summary
            ),
            Err(e) => {
                failures += 1;
                println!("  FAIL {:<15} {:>8.1}s  {}", r.name, r.wall_s, e);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
