//! Table V — attack-resiliency matrix: every attack of the suite against
//! every locking scheme, measured by actually running the attacks. ✓ means
//! the defense held (timeout / failure / functionally-wrong key), ✗ means
//! the attack recovered a working key or a near-equivalent circuit.

use ril_attacks::{
    removal_attack, run_appsat, run_sat_attack, scansat_attack, AppSatConfig, SatAttackConfig,
};
use ril_bench::{cell_timeout, defense_held, lock_with_armed_se, print_table};
use ril_core::baselines::{antisat_lock, sfll_lock, xor_lock};
use ril_core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::generators;
use ril_sca::{key_recovery_rate, LutTechnology};

fn mark(held: bool) -> String {
    if held {
        "✓".into()
    } else {
        "✗".into()
    }
}

fn main() {
    println!(
        "Table V reproduction — attacks actually executed, timeout {:?} per cell",
        cell_timeout()
    );
    let host = generators::adder(12);

    let schemes: Vec<(&str, LockedCircuit)> = vec![
        // Wide point-function keys ⇒ exponentially many DIPs (the SFLL /
        // Anti-SAT SAT-resistance the paper credits them with).
        ("SFLL", sfll_lock(&host, 14, 1).expect("host large enough")),
        (
            "Anti-SAT (CAS-class)",
            antisat_lock(&host, 12, 2).expect("host large enough"),
        ),
        (
            "XOR (EPIC)",
            xor_lock(&generators::adder(8), 12, 3).expect("host large enough"),
        ),
        (
            "RIL (static)",
            // The Table-I-hard configuration: ten 8x8x8 blocks on the
            // c7552-class host.
            Obfuscator::new(RilBlockSpec::size_8x8x8())
                .blocks(10)
                .seed(4)
                .obfuscate(&generators::benchmark("c7552").expect("known benchmark"))
                .expect("host large enough"),
        ),
        (
            "RIL + SE",
            lock_with_armed_se(&generators::multiplier(6), RilBlockSpec::size_2x2(), 3, 40)
                .expect("armed lock"),
        ),
    ];

    let sat_cfg = SatAttackConfig {
        timeout: Some(cell_timeout()),
        ..SatAttackConfig::default()
    };
    let app_cfg = AppSatConfig {
        timeout: Some(cell_timeout()),
        error_threshold: 0.02,
        ..AppSatConfig::default()
    };

    let mut rows = Vec::new();
    for (name, locked) in &schemes {
        eprintln!("  scheme {name}");
        let sat = run_sat_attack(locked, &sat_cfg).expect("sim ok");
        let app = run_appsat(locked, &app_cfg).expect("sim ok");
        let rem = removal_attack(locked, 32, 5).expect("sim ok");
        let scan = scansat_attack(locked, &sat_cfg).expect("sim ok");
        // P-SCA: the LUT technology decides; RIL uses MRAM, baselines are
        // plain CMOS keys modeled as SRAM-class storage.
        let psca_rate = if name.starts_with("RIL") {
            key_recovery_rate(LutTechnology::Mram, 14, 400, 0.5, 9)
        } else {
            key_recovery_rate(LutTechnology::Sram, 14, 400, 0.5, 9)
        };
        rows.push(vec![
            name.to_string(),
            mark(defense_held(&sat.result, sat.functionally_correct)),
            mark(defense_held(&app.result, app.functionally_correct)),
            mark(!rem.succeeded(0.01)),
            mark(defense_held(&scan.result, scan.functionally_correct)),
            mark(psca_rate < 0.3),
        ]);
    }
    print_table(
        "Table V — does the DEFENSE hold? (✓ = attack defeated)",
        &["Scheme", "SAT", "AppSAT", "Removal", "ScanSAT", "P-SCA"],
        &rows,
    );
    println!(
        "\nPaper's qualitative claim: only the proposed RIL-Blocks (with SE and MRAM)\n\
         resist the whole suite; point-function locks fall to removal/AppSAT-class\n\
         attacks and none of the baselines addresses P-SCA."
    );
}
