//! The experiment framework: one trait, one registry, one driver.
//!
//! Every table and figure of the paper is an [`Experiment`]: a named unit
//! with a one-line description and a `run` that takes the validated
//! [`RunConfig`] plus a [`RunContext`] (event sink, cell cache, cell
//! accounting). The [`registry`] enumerates all of them; the `ril-bench`
//! binary is nothing but argument parsing over this module.
//!
//! Failure isolation: [`run_experiments`] wraps each experiment in
//! `catch_unwind`, so one failing (or even panicking) experiment is
//! recorded in its manifest and the remaining experiments still run —
//! `ril-bench run --all` never dies on the first bad cell.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ril_attacks::json::{escape, JsonValue};
use ril_attacks::AttackReport;

use crate::cache::{CacheKey, CellCache, Manifest};
use crate::config::{ConfigError, RunConfig};
use crate::events::{EventKind, EventSink};
use crate::CellOutcome;

/// What an experiment hands back on success.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// One-line human summary (shown in the run footer).
    pub summary: String,
    /// Files the experiment wrote (tables, JSON, CSV).
    pub files: Vec<PathBuf>,
}

impl ExperimentOutput {
    /// An output with a summary and no files.
    pub fn summary(text: impl Into<String>) -> ExperimentOutput {
        ExperimentOutput {
            summary: text.into(),
            files: Vec::new(),
        }
    }
}

/// A recoverable experiment failure. One failing experiment must not
/// abort `ril-bench run --all`, so everything that used to `unwrap()` in
/// the bench binaries now funnels into this type.
#[derive(Debug)]
pub enum ExperimentError {
    /// Rejected environment / configuration.
    Config(ConfigError),
    /// Netlist construction or simulation failure.
    Netlist(ril_netlist::NetlistError),
    /// Obfuscation failure (host too small, spec unsatisfiable, …).
    Obfuscate(ril_core::ObfuscateError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Anything else, with context.
    Other(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Config(e) => write!(f, "config: {e}"),
            ExperimentError::Netlist(e) => write!(f, "netlist: {e}"),
            ExperimentError::Obfuscate(e) => write!(f, "obfuscate: {e}"),
            ExperimentError::Io(e) => write!(f, "io: {e}"),
            ExperimentError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> ExperimentError {
        ExperimentError::Config(e)
    }
}

impl From<ril_netlist::NetlistError> for ExperimentError {
    fn from(e: ril_netlist::NetlistError) -> ExperimentError {
        ExperimentError::Netlist(e)
    }
}

impl From<ril_core::ObfuscateError> for ExperimentError {
    fn from(e: ril_core::ObfuscateError) -> ExperimentError {
        ExperimentError::Obfuscate(e)
    }
}

impl From<std::io::Error> for ExperimentError {
    fn from(e: std::io::Error) -> ExperimentError {
        ExperimentError::Io(e)
    }
}

impl From<String> for ExperimentError {
    fn from(msg: String) -> ExperimentError {
        ExperimentError::Other(msg)
    }
}

impl From<&str> for ExperimentError {
    fn from(msg: &str) -> ExperimentError {
        ExperimentError::Other(msg.to_string())
    }
}

/// One table or figure of the paper, as a runnable unit.
pub trait Experiment: Sync {
    /// The CLI name (`table1`, `fig6`, …).
    fn name(&self) -> &'static str;
    /// One-line description for `ril-bench list`.
    fn describe(&self) -> &'static str;
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Recoverable failures; the driver records them and moves on.
    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError>;
}

/// Shared run services handed to each experiment: the JSONL event sink,
/// the content-addressed cell cache, the run's [`ril_trace::Tracer`], and
/// cell accounting. All methods take `&self` (interior mutability) so
/// sweep cells can use the context from parallel worker threads.
pub struct RunContext {
    experiment: String,
    events: EventSink,
    cache: CellCache,
    out_dir: PathBuf,
    trace: ril_trace::Tracer,
    root_span: ril_trace::SpanId,
    cached: AtomicUsize,
    computed: AtomicUsize,
    failed: AtomicUsize,
}

impl RunContext {
    /// A context for `experiment` rooted at `cfg.out_dir`. When
    /// `cfg.trace` is set the context owns an enabled tracer with an open
    /// `experiment` root span; [`RunContext::finish_trace`] closes it and
    /// writes the span log and Chrome trace next to the tables.
    pub fn new(experiment: &str, cfg: &RunConfig) -> RunContext {
        let trace = if cfg.trace {
            ril_trace::Tracer::new()
        } else {
            ril_trace::Tracer::disabled()
        };
        let root_span = trace.open_root("experiment", ril_trace::Phase::Experiment);
        RunContext {
            experiment: experiment.to_string(),
            events: EventSink::open_with_level(&cfg.out_dir, experiment, cfg.log_level),
            cache: CellCache::new(&cfg.out_dir, cfg.use_cache),
            out_dir: cfg.out_dir.clone(),
            trace,
            root_span,
            cached: AtomicUsize::new(0),
            computed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        }
    }

    /// A silent context over a throwaway cache — for unit tests.
    pub fn null(experiment: &str) -> RunContext {
        let dir = std::env::temp_dir().join(format!("ril_null_ctx_{}", std::process::id()));
        RunContext {
            experiment: experiment.to_string(),
            events: EventSink::null(),
            cache: CellCache::new(&dir, false),
            out_dir: dir,
            trace: ril_trace::Tracer::disabled(),
            root_span: ril_trace::SpanId::NONE,
            cached: AtomicUsize::new(0),
            computed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
        }
    }

    /// The run's tracer (disabled when `RIL_TRACE=0`).
    pub fn trace(&self) -> &ril_trace::Tracer {
        &self.trace
    }

    /// The experiment's root span, parent for sweep-worker spans.
    pub fn root_span(&self) -> ril_trace::SpanId {
        self.root_span
    }

    /// Runs `job` over `items` on `workers` threads with this run's trace
    /// context installed on every worker, so cell/attack/solve spans
    /// opened inside the job attach under the experiment root span.
    pub fn sweep<T, R, F>(&self, workers: usize, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        crate::sweep::parallel_sweep_traced(workers, &self.trace, self.root_span, items, job)
    }

    /// Closes the experiment root span and writes the run's trace
    /// artifacts (`SPANS_<experiment>.jsonl` and `TRACE_<experiment>.json`)
    /// into the output directory. No-op (empty list) when tracing is
    /// disabled. Call once, after the experiment finishes (including
    /// after a panic — the driver does this).
    pub fn finish_trace(&self) -> Vec<PathBuf> {
        if !self.trace.is_enabled() {
            return Vec::new();
        }
        self.trace.close_with(
            self.root_span,
            vec![(
                "experiment",
                ril_trace::FieldValue::Str(self.experiment.clone()),
            )],
        );
        let spans = self
            .out_dir
            .join(format!("SPANS_{}.jsonl", self.experiment));
        let chrome = self.out_dir.join(format!("TRACE_{}.json", self.experiment));
        let mut written = Vec::new();
        let _ = std::fs::create_dir_all(&self.out_dir);
        match self.trace.write_spans_jsonl(&spans) {
            Ok(()) => written.push(spans),
            Err(e) => self.events.error(&format!("span log write failed: {e}")),
        }
        match self.trace.write_chrome_trace(&chrome) {
            Ok(()) => written.push(chrome),
            Err(e) => self
                .events
                .error(&format!("chrome trace write failed: {e}")),
        }
        written
    }

    /// Emits a `Note` event.
    pub fn note(&self, message: &str) {
        self.events.note(message);
    }

    /// Emits an `Error` event and bumps the failed-cell count.
    pub fn cell_failed(&self, message: &str) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        self.events.error(message);
    }

    /// Runs one cacheable cell: returns the cached payload when `key` is
    /// on disk, otherwise computes it, persists it atomically, and
    /// returns it. Cache stores and per-cell accounting both happen
    /// *inside* this call, which is what makes interrupted sweeps
    /// resumable — every completed cell is durable the moment it
    /// finishes, not when the table prints.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error (after recording it); cache-write
    /// failures are logged but do not fail the cell.
    pub fn cached_cell<F>(
        &self,
        key: &CacheKey,
        label: &str,
        compute: F,
    ) -> Result<String, ExperimentError>
    where
        F: FnOnce() -> Result<String, ExperimentError>,
    {
        let mut span = ril_trace::span("cell", ril_trace::Phase::Cell);
        span.record_str("label", label);
        if let Some(payload) = self.cache.get(key) {
            self.cached.fetch_add(1, Ordering::Relaxed);
            span.record_bool("cached", true);
            self.events.emit(EventKind::Cell, label, r#""cached":true"#);
            return Ok(payload);
        }
        span.record_bool("cached", false);
        let started = Instant::now();
        let payload = compute().inspect_err(|e| {
            self.cell_failed(&format!("{label}: {e}"));
        })?;
        let wall = started.elapsed().as_secs_f64();
        if let Err(e) = self.cache.put(key, &payload) {
            self.events
                .error(&format!("cache store failed for {label}: {e}"));
        }
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.events.emit(
            EventKind::Cell,
            label,
            &format!(r#""cached":false,"wall_s":{wall:.3}"#),
        );
        Ok(payload)
    }

    /// Writes a machine-readable output file into the run's output
    /// directory and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_output(&self, name: &str, content: &str) -> Result<PathBuf, ExperimentError> {
        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(name);
        std::fs::write(&path, content)?;
        Ok(path)
    }

    /// Cells served from cache so far.
    pub fn cached_cells(&self) -> usize {
        self.cached.load(Ordering::Relaxed)
    }

    /// Cells computed so far.
    pub fn computed_cells(&self) -> usize {
        self.computed.load(Ordering::Relaxed)
    }

    /// Cells failed so far.
    pub fn failed_cells(&self) -> usize {
        self.failed.load(Ordering::Relaxed)
    }

    /// The experiment this context belongs to.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }
}

/// Encodes a [`CellOutcome`] as a cache payload.
pub fn cell_payload(outcome: &CellOutcome) -> String {
    format!(
        r#"{{"cell":"{}","report":{}}}"#,
        escape(&outcome.cell),
        outcome.report_json()
    )
}

/// Decodes a cache payload back into a [`CellOutcome`].
///
/// # Errors
///
/// Returns a message when the payload is not a valid cell object (e.g. a
/// cache file from a different payload kind).
pub fn parse_cell_payload(payload: &str) -> Result<CellOutcome, String> {
    let v = JsonValue::parse(payload).map_err(|e| e.to_string())?;
    let cell = v
        .get("cell")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "cell payload missing \"cell\"".to_string())?
        .to_string();
    let report = match v.get("report") {
        None | Some(JsonValue::Null) => None,
        Some(r) => Some(AttackReport::from_json_value(r).map_err(|e| e.to_string())?),
    };
    Ok(CellOutcome { cell, report })
}

/// All experiments, in the order `run --all` executes them. Fast,
/// solver-free experiments first so a broken build fails early and
/// cheaply.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(crate::experiments::overhead::Overhead),
        Box::new(crate::experiments::table4::Table4),
        Box::new(crate::experiments::fig5::Fig5),
        Box::new(crate::experiments::fig6::Fig6),
        Box::new(crate::experiments::corruptibility::Corruptibility),
        Box::new(crate::experiments::key_redundancy::KeyRedundancy),
        Box::new(crate::experiments::fig1::Fig1),
        Box::new(crate::experiments::lut_scaling::LutScaling),
        Box::new(crate::experiments::scan_defense::ScanDefense),
        Box::new(crate::experiments::incremental_verify::IncrementalVerify),
        Box::new(crate::experiments::dynamic_defense::DynamicDefense),
        Box::new(crate::experiments::table1::Table1),
        Box::new(crate::experiments::table3::Table3),
        Box::new(crate::experiments::table5::Table5),
    ]
}

/// Looks an experiment up by CLI name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

/// The outcome of one experiment under [`run_experiments`].
#[derive(Debug)]
pub struct RunRecord {
    /// Experiment name.
    pub name: &'static str,
    /// `Ok(summary)` or `Err(rendered error)`.
    pub outcome: Result<String, String>,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Cells served from cache.
    pub cached_cells: usize,
    /// Cells computed.
    pub computed_cells: usize,
}

/// Runs `experiments` in order, isolating failures: an `Err` — or even a
/// panic — in one experiment is recorded and the next still runs. Each
/// experiment gets a manifest at `MANIFEST_<name>.json` recording its
/// config, cache accounting, and wall time.
pub fn run_experiments(experiments: &[Box<dyn Experiment>], cfg: &RunConfig) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for exp in experiments {
        let name = exp.name();
        let ctx = RunContext::new(name, cfg);
        ctx.note(&format!("start: {}", exp.describe()));
        let started = Instant::now();
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            // Spans opened by the experiment (and by the solver/attack
            // layers underneath it) attach to this run's root span. The
            // guard drops on unwind, so a panicking experiment still
            // leaves a balanced trace.
            let _trace_ctx = ctx.trace().install(ctx.root_span());
            exp.run(cfg, &ctx)
        })) {
            Ok(Ok(output)) => Ok(output.summary),
            Ok(Err(e)) => Err(e.to_string()),
            Err(panic) => Err(format!("panicked: {}", panic_message(&panic))),
        };
        let wall_s = started.elapsed().as_secs_f64();
        ctx.finish_trace();
        let manifest = Manifest {
            experiment: name.to_string(),
            config_json: cfg.to_json(),
            cached_cells: ctx.cached_cells(),
            computed_cells: ctx.computed_cells(),
            failed_cells: ctx.failed_cells(),
            wall_s,
            completed: outcome.is_ok(),
        };
        match &outcome {
            Ok(summary) => ctx.note(&format!("done in {wall_s:.1}s: {summary}")),
            Err(e) => ctx.cell_failed(&format!("experiment failed after {wall_s:.1}s: {e}")),
        }
        if let Err(e) = std::fs::create_dir_all(&cfg.out_dir).and_then(|()| {
            std::fs::write(Manifest::path_for(&cfg.out_dir, name), manifest.to_json())
        }) {
            ctx.note(&format!("manifest write failed: {e}"));
        }
        records.push(RunRecord {
            name,
            outcome,
            wall_s,
            cached_cells: manifest.cached_cells,
            computed_cells: manifest.computed_cells,
        });
    }
    records
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate experiment names");
        assert_eq!(names.len(), 14);
        for required in [
            "table1",
            "table3",
            "table4",
            "table5",
            "fig1",
            "fig5",
            "fig6",
            "overhead",
            "scan_defense",
            "incremental_verify",
            "dynamic_defense",
            "corruptibility",
            "key_redundancy",
            "lut_scaling",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn cell_payload_round_trips_bare() {
        let outcome = CellOutcome::bare("n/a");
        let parsed = parse_cell_payload(&cell_payload(&outcome)).unwrap();
        assert_eq!(parsed.cell, "n/a");
        assert!(parsed.report.is_none());
    }

    #[test]
    fn failing_experiment_does_not_stop_the_run() {
        struct Boom;
        impl Experiment for Boom {
            fn name(&self) -> &'static str {
                "boom"
            }
            fn describe(&self) -> &'static str {
                "always fails"
            }
            fn run(
                &self,
                _cfg: &RunConfig,
                _ctx: &RunContext,
            ) -> Result<ExperimentOutput, ExperimentError> {
                Err("intentional".into())
            }
        }
        struct Panics;
        impl Experiment for Panics {
            fn name(&self) -> &'static str {
                "panics"
            }
            fn describe(&self) -> &'static str {
                "always panics"
            }
            fn run(
                &self,
                _cfg: &RunConfig,
                _ctx: &RunContext,
            ) -> Result<ExperimentOutput, ExperimentError> {
                panic!("kaboom")
            }
        }
        struct Fine;
        impl Experiment for Fine {
            fn name(&self) -> &'static str {
                "fine"
            }
            fn describe(&self) -> &'static str {
                "succeeds"
            }
            fn run(
                &self,
                _cfg: &RunConfig,
                _ctx: &RunContext,
            ) -> Result<ExperimentOutput, ExperimentError> {
                Ok(ExperimentOutput::summary("ok"))
            }
        }
        let dir = std::env::temp_dir().join(format!("ril_run_isolation_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            out_dir: dir.clone(),
            ..RunConfig::default()
        };
        let exps: Vec<Box<dyn Experiment>> = vec![Box::new(Boom), Box::new(Panics), Box::new(Fine)];
        let records = run_experiments(&exps, &cfg);
        assert_eq!(records.len(), 3);
        assert!(records[0].outcome.is_err());
        assert!(records[1].outcome.as_ref().unwrap_err().contains("kaboom"));
        assert_eq!(records[2].outcome.as_deref(), Ok("ok"));
        // Every experiment — failed or not — left a manifest.
        for name in ["boom", "panics", "fine"] {
            let text = std::fs::read_to_string(Manifest::path_for(&dir, name)).unwrap();
            let m = Manifest::from_json(&text).unwrap();
            assert_eq!(m.completed, name == "fine");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
