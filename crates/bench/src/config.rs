//! Typed run configuration for the experiment framework.
//!
//! The former per-binary drivers each re-parsed `RIL_TIMEOUT_SECS`,
//! `RIL_THREADS`, `RIL_TABLE1_FULL`, … ad hoc, silently swallowing
//! malformed values. [`RunConfig`] parses the environment exactly once,
//! **validates** it (a typo'd `RIL_TIMEOUT_SECS=6O` is an error, not a
//! silent fall-back to the default), and is recorded verbatim into every
//! run manifest so a result can always be traced to the knobs that
//! produced it.

use crate::events::LogLevel;
use std::path::PathBuf;
use std::time::Duration;

/// A validated experiment-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Per-cell attack budget (`RIL_TIMEOUT_SECS`, default 60 s — the
    /// scaled-down stand-in for the paper's 5-day timeout).
    pub timeout: Duration,
    /// Sweep worker threads (`RIL_THREADS`, default: available
    /// parallelism).
    pub threads: usize,
    /// SAT-solver portfolio workers per solve (`RIL_SOLVER_THREADS`,
    /// default 1 = sequential; capped at
    /// [`ril_sat::MAX_SOLVER_THREADS`]).
    pub solver_threads: usize,
    /// Output directory for tables, manifests, events and the cell cache
    /// (`RIL_OUT_DIR`, default `exp_out`).
    pub out_dir: PathBuf,
    /// Run the paper's full 10-row Table I sweep (`RIL_TABLE1_FULL=1`).
    pub table1_full: bool,
    /// Monte-Carlo instance count for Fig. 6 (`RIL_MC_INSTANCES`,
    /// default 100).
    pub mc_instances: usize,
    /// CI-sized variants: tiny sweeps, capped budgets (`--smoke`).
    pub smoke: bool,
    /// Read/write the content-addressed cell cache (`--no-cache` turns
    /// this off; the cells are then always recomputed).
    pub use_cache: bool,
    /// Stderr verbosity for the event mirror (`RIL_LOG`, default `note`).
    /// The JSONL event file always records everything.
    pub log_level: LogLevel,
    /// Collect hierarchical trace spans and write `SPANS_*.jsonl` +
    /// `TRACE_*.json` per experiment (`RIL_TRACE`, default on; `0`
    /// disables for minimum overhead).
    pub trace: bool,
}

/// A rejected environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending variable.
    pub var: &'static str,
    /// Its value as found.
    pub value: String,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?}: {}", self.var, self.value, self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            timeout: Duration::from_secs(60),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            solver_threads: 1,
            out_dir: PathBuf::from("exp_out"),
            table1_full: false,
            mc_instances: 100,
            smoke: false,
            use_cache: true,
            log_level: LogLevel::Note,
            trace: true,
        }
    }
}

impl RunConfig {
    /// Parses and validates the `RIL_*` environment once. Unset variables
    /// take their documented defaults; set-but-malformed variables are
    /// **errors**.
    ///
    /// # Errors
    ///
    /// Returns the first offending variable.
    pub fn from_env() -> Result<RunConfig, ConfigError> {
        let mut cfg = RunConfig::default();
        if let Some(v) = read_env("RIL_TIMEOUT_SECS") {
            let secs: u64 = v.parse().map_err(|_| ConfigError {
                var: "RIL_TIMEOUT_SECS",
                value: v.clone(),
                reason: "expected a positive integer number of seconds",
            })?;
            if secs == 0 {
                return Err(ConfigError {
                    var: "RIL_TIMEOUT_SECS",
                    value: v,
                    reason: "must be at least 1",
                });
            }
            cfg.timeout = Duration::from_secs(secs);
        }
        if let Some(v) = read_env("RIL_THREADS") {
            let n: usize = v.parse().map_err(|_| ConfigError {
                var: "RIL_THREADS",
                value: v.clone(),
                reason: "expected a positive integer worker count",
            })?;
            if n == 0 {
                return Err(ConfigError {
                    var: "RIL_THREADS",
                    value: v,
                    reason: "must be at least 1",
                });
            }
            cfg.threads = n;
        }
        if let Some(v) = read_env("RIL_SOLVER_THREADS") {
            let n: usize = v.parse().map_err(|_| ConfigError {
                var: "RIL_SOLVER_THREADS",
                value: v.clone(),
                reason: "expected a positive integer solver worker count",
            })?;
            if n == 0 {
                return Err(ConfigError {
                    var: "RIL_SOLVER_THREADS",
                    value: v,
                    reason: "must be at least 1",
                });
            }
            if n > ril_sat::MAX_SOLVER_THREADS {
                return Err(ConfigError {
                    var: "RIL_SOLVER_THREADS",
                    value: v,
                    reason: "exceeds ril_sat::MAX_SOLVER_THREADS (16)",
                });
            }
            cfg.solver_threads = n;
        }
        if let Some(v) = read_env("RIL_OUT_DIR") {
            cfg.out_dir = PathBuf::from(v);
        }
        if let Some(v) = read_env("RIL_TABLE1_FULL") {
            cfg.table1_full = match v.as_str() {
                "1" => true,
                "0" => false,
                _ => {
                    return Err(ConfigError {
                        var: "RIL_TABLE1_FULL",
                        value: v,
                        reason: "expected 0 or 1",
                    })
                }
            };
        }
        if let Some(v) = read_env("RIL_MC_INSTANCES") {
            let n: usize = v.parse().map_err(|_| ConfigError {
                var: "RIL_MC_INSTANCES",
                value: v.clone(),
                reason: "expected a positive integer instance count",
            })?;
            if n == 0 {
                return Err(ConfigError {
                    var: "RIL_MC_INSTANCES",
                    value: v,
                    reason: "must be at least 1",
                });
            }
            cfg.mc_instances = n;
        }
        if let Some(v) = read_env("RIL_LOG") {
            cfg.log_level = LogLevel::parse(&v).ok_or(ConfigError {
                var: "RIL_LOG",
                value: v,
                reason: "expected one of off, error, note, debug",
            })?;
        }
        if let Some(v) = read_env("RIL_TRACE") {
            cfg.trace = match v.as_str() {
                "1" => true,
                "0" => false,
                _ => {
                    return Err(ConfigError {
                        var: "RIL_TRACE",
                        value: v,
                        reason: "expected 0 or 1",
                    })
                }
            };
        }
        Ok(cfg)
    }

    /// The per-attack wall-clock budget after oversubscription
    /// compensation. A portfolio racing more workers than the machine
    /// has cores gives each worker only a `1/factor` time-slice of the
    /// wall clock; stretching the deadline by that factor keeps the
    /// *per-worker effort* that `timeout` promises constant across
    /// hardware, so portfolio and sequential runs reach the same
    /// verdicts everywhere. With `solver_threads` ≤ available cores the
    /// factor is 1 and this is exactly [`RunConfig::timeout`].
    pub fn attack_timeout(&self) -> Duration {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let factor = self.solver_threads.div_ceil(cores).max(1);
        self.timeout * factor as u32
    }

    /// Applies the `--smoke` caps: per-cell budget ≤ 3 s, ≤ 20 MC
    /// instances, never the full Table I row set. Experiments additionally
    /// shrink their own sweeps when `smoke` is set.
    pub fn apply_smoke(mut self) -> RunConfig {
        self.smoke = true;
        self.timeout = self.timeout.min(Duration::from_secs(3));
        self.mc_instances = self.mc_instances.min(20);
        self.table1_full = false;
        self
    }

    /// The configuration as a JSON object, for manifests.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"timeout_s":{},"threads":{},"solver_threads":{},"out_dir":"{}","table1_full":{},"mc_instances":{},"smoke":{},"use_cache":{},"log_level":"{}","trace":{}}}"#,
            self.timeout.as_secs_f64(),
            self.threads,
            self.solver_threads,
            ril_attacks::json::escape(&self.out_dir.display().to_string()),
            self.table1_full,
            self.mc_instances,
            self.smoke,
            self.use_cache,
            self.log_level.as_str(),
            self.trace,
        )
    }
}

fn read_env(var: &str) -> Option<String> {
    std::env::var(var).ok().filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-mutation is unsafe under the parallel test harness, so the
    // parsing paths are covered via the pure helpers and defaults only;
    // `from_env` with a clean environment must yield the defaults.
    #[test]
    fn defaults_are_sane() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.timeout, Duration::from_secs(60));
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.solver_threads, 1);
        assert!(cfg.use_cache);
        assert!(!cfg.smoke);
    }

    #[test]
    fn smoke_caps_budgets() {
        let cfg = RunConfig {
            table1_full: true,
            ..RunConfig::default()
        }
        .apply_smoke();
        assert!(cfg.smoke);
        assert!(cfg.timeout <= Duration::from_secs(3));
        assert!(cfg.mc_instances <= 20);
        assert!(!cfg.table1_full);
    }

    #[test]
    fn smoke_respects_tighter_explicit_budget() {
        let cfg = RunConfig {
            timeout: Duration::from_secs(1),
            mc_instances: 5,
            ..RunConfig::default()
        }
        .apply_smoke();
        assert_eq!(cfg.timeout, Duration::from_secs(1));
        assert_eq!(cfg.mc_instances, 5);
    }

    #[test]
    fn attack_timeout_compensates_oversubscription() {
        let sequential = RunConfig::default();
        assert_eq!(sequential.attack_timeout(), sequential.timeout);

        let portfolio = RunConfig {
            solver_threads: 4,
            ..RunConfig::default()
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let factor = 4usize.div_ceil(cores).max(1);
        assert_eq!(
            portfolio.attack_timeout(),
            portfolio.timeout * factor as u32
        );
        assert!(portfolio.attack_timeout() >= portfolio.timeout);
    }

    #[test]
    fn config_json_parses_back() {
        let cfg = RunConfig::default();
        let v = ril_attacks::json::JsonValue::parse(&cfg.to_json()).unwrap();
        assert_eq!(v.get("timeout_s").unwrap().as_f64(), Some(60.0));
        assert_eq!(v.get("solver_threads").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("use_cache").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("log_level").unwrap().as_str(), Some("note"));
        assert_eq!(v.get("trace").unwrap().as_bool(), Some(true));
    }
}
