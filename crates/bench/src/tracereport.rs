//! Trace post-processing: integrity checking and per-phase breakdowns.
//!
//! Every experiment run leaves three machine-readable streams next to its
//! tables: `EVENTS_<exp>.jsonl` (progress events), `SPANS_<exp>.jsonl`
//! (hierarchical trace spans, see DESIGN.md §9) and `TRACE_<exp>.json`
//! (the same spans as a Chrome/Perfetto trace). This module is the
//! consumer side:
//!
//! - [`check_spans_jsonl`] / [`check_events_jsonl`] / [`check_chrome_trace`]
//!   verify stream integrity — every line parses, per-thread timestamps
//!   are monotonic, span begin/end records balance, parents resolve —
//!   which is what `ril-bench validate <run-dir>` (and the CI smoke
//!   stage) runs over a finished run directory.
//! - [`trace_report`] aggregates a run's spans into a per-phase
//!   *exclusive-time* breakdown (encode vs. DIP-solve vs. verify, per
//!   cell), flagging anomalies such as verify-dominated cells — the
//!   `ril-bench trace <run-dir>` subcommand.
//!
//! Exclusive time is a span's wall time minus the wall time of its direct
//! children, so a phase total never double-counts nested spans: the
//! `iteration` span's exclusive time is DIP-loop bookkeeping, not the
//! `solve` span it contains.

use std::collections::HashMap;
use std::path::Path;

use ril_attacks::json::JsonValue;
use ril_trace::Phase;

use crate::cache::Manifest;
use crate::print_table;

/// One reconstructed span from a `SPANS_*.jsonl` stream.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Span id (unique within the stream, never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name (`cell`, `solve`, …).
    pub name: String,
    /// The span's phase bucket.
    pub phase: Phase,
    /// Opening thread.
    pub tid: u64,
    /// Open timestamp, µs since tracer start.
    pub begin_us: u64,
    /// Close timestamp, µs since tracer start.
    pub end_us: u64,
    /// The `label` field recorded at close, if any (cells carry one).
    pub label: Option<String>,
}

impl SpanRec {
    /// Wall time in µs.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.begin_us)
    }
}

/// What a validated span stream contains.
#[derive(Debug, Clone)]
pub struct SpanStats {
    /// All spans, in begin order.
    pub spans: Vec<SpanRec>,
    /// Counter values from the final metrics record (sorted by name).
    pub counters: Vec<(String, u64)>,
}

fn field_u64(v: &JsonValue, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing/invalid \"{key}\""))
}

/// Validates a `SPANS_*.jsonl` stream and reconstructs its spans.
///
/// Checks, in order: every line is a JSON object with a known `ev` tag;
/// span ids are unique and non-zero; every `end` matches an open `begin`
/// and every `begin` is eventually ended (balance — this holds even for
/// runs that panicked, because span guards close on unwind); parents are
/// opened before their children; per-thread timestamps are monotonically
/// non-decreasing; the stream ends with exactly one `metrics` record.
///
/// # Errors
///
/// The first violated property, with its line number.
pub fn check_spans_jsonl(text: &str) -> Result<SpanStats, String> {
    let mut open: HashMap<u64, SpanRec> = HashMap::new();
    let mut done: Vec<(usize, SpanRec)> = Vec::new();
    let mut seen_ids: HashMap<u64, ()> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut begin_order: HashMap<u64, usize> = HashMap::new();
    let mut counters = Vec::new();
    let mut metrics_seen = false;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        lines = n;
        if metrics_seen {
            return Err(format!("line {n}: records after the metrics trailer"));
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {n}: not JSON: {e}"))?;
        let ev = v
            .get("ev")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {n}: missing \"ev\""))?;
        match ev {
            "begin" => {
                let id = field_u64(&v, "id", n)?;
                let parent = field_u64(&v, "parent", n)?;
                let tid = field_u64(&v, "tid", n)?;
                let ts = field_u64(&v, "ts_us", n)?;
                if id == 0 {
                    return Err(format!("line {n}: span id 0 is reserved"));
                }
                if seen_ids.insert(id, ()).is_some() {
                    return Err(format!("line {n}: duplicate span id {id}"));
                }
                if parent != 0 && !begin_order.contains_key(&parent) {
                    return Err(format!("line {n}: span {id} parent {parent} never began"));
                }
                let prev = last_ts.entry(tid).or_insert(0);
                if ts < *prev {
                    return Err(format!("line {n}: tid {tid} timestamp went backwards"));
                }
                *prev = ts;
                begin_order.insert(id, n);
                let name = v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("line {n}: missing \"name\""))?;
                let phase = v
                    .get("phase")
                    .and_then(JsonValue::as_str)
                    .and_then(Phase::parse)
                    .ok_or_else(|| format!("line {n}: missing/unknown \"phase\""))?;
                open.insert(
                    id,
                    SpanRec {
                        id,
                        parent,
                        name: name.to_string(),
                        phase,
                        tid,
                        begin_us: ts,
                        end_us: ts,
                        label: None,
                    },
                );
            }
            "end" => {
                let id = field_u64(&v, "id", n)?;
                let tid = field_u64(&v, "tid", n)?;
                let ts = field_u64(&v, "ts_us", n)?;
                let mut rec = open
                    .remove(&id)
                    .ok_or_else(|| format!("line {n}: end for span {id} which is not open"))?;
                if ts < rec.begin_us {
                    return Err(format!("line {n}: span {id} ends before it begins"));
                }
                let prev = last_ts.entry(tid).or_insert(0);
                if ts < *prev {
                    return Err(format!("line {n}: tid {tid} timestamp went backwards"));
                }
                *prev = ts;
                rec.end_us = ts;
                if let Some(l) = v
                    .get("fields")
                    .and_then(|f| f.get("label"))
                    .and_then(JsonValue::as_str)
                {
                    rec.label = Some(l.to_string());
                }
                done.push((begin_order[&id], rec));
            }
            "metrics" => {
                metrics_seen = true;
                if let Some(JsonValue::Obj(fields)) = v.get("counters") {
                    for (k, cv) in fields {
                        counters.push((
                            k.clone(),
                            cv.as_u64()
                                .ok_or_else(|| format!("line {n}: counter {k} not a u64"))?,
                        ));
                    }
                }
            }
            other => return Err(format!("line {n}: unknown ev {other:?}")),
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!("unbalanced stream: spans {ids:?} never ended"));
    }
    if !metrics_seen {
        return Err(format!(
            "missing metrics trailer (stream has {lines} lines)"
        ));
    }
    done.sort_by_key(|(order, _)| *order);
    Ok(SpanStats {
        spans: done.into_iter().map(|(_, rec)| rec).collect(),
        counters,
    })
}

/// Validates an `EVENTS_*.jsonl` stream: every line parses, carries the
/// envelope fields, has a known kind, and timestamps are monotonically
/// non-decreasing in file order (the sink stamps them under its write
/// lock) within each run segment — the file is appended across runs, so
/// `t` resets at each `start:` lifecycle event. Returns the event count.
///
/// # Errors
///
/// The first violated property, with its line number.
pub fn check_events_jsonl(text: &str) -> Result<usize, String> {
    let mut last_t = f64::NEG_INFINITY;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v = JsonValue::parse(line).map_err(|e| format!("line {n}: not JSON: {e}"))?;
        let t = v
            .get("t")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {n}: missing \"t\""))?;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {n}: missing \"kind\""))?;
        if !matches!(kind, "run" | "cell" | "note" | "error") {
            return Err(format!("line {n}: unknown kind {kind:?}"));
        }
        let message = v
            .get("message")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {n}: missing \"message\""))?;
        // The sink appends across runs (resume history) and `t` is
        // elapsed-since-sink-open, so it restarts at each run's `start:`
        // lifecycle event. Inside a segment it must never go backwards.
        if message.starts_with("start: ") {
            last_t = f64::NEG_INFINITY;
        }
        if t < last_t {
            return Err(format!("line {n}: timestamp went backwards"));
        }
        last_t = t;
        count = n;
    }
    Ok(count)
}

/// Validates a `TRACE_*.json` Chrome trace: top-level object with a
/// `traceEvents` array whose `B`/`E` events balance per thread with
/// matching names (proper nesting — what Perfetto requires to render).
/// Returns the event count.
///
/// # Errors
///
/// Describes the first structural violation.
pub fn check_chrome_trace(text: &str) -> Result<usize, String> {
    let v = JsonValue::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => {
                let top = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E with empty stack on tid {tid}"))?;
                if top != name {
                    return Err(format!(
                        "event {i}: E name {name:?} does not match open span {top:?}"
                    ));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} spans never closed", stack.len()));
        }
    }
    Ok(events.len())
}

/// Per-phase exclusive-time totals, in µs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotals {
    /// Encode-phase time (netlist→CNF, miter/DIP constraints, locking).
    pub encode_us: u64,
    /// Solve-phase time (the CDCL searches).
    pub solve_us: u64,
    /// Verify-phase time (key checks, error estimation, salvage scoring).
    pub verify_us: u64,
    /// Everything else (loop bookkeeping, oracle queries, framework).
    pub other_us: u64,
}

impl PhaseTotals {
    fn add(&mut self, phase: Phase, us: u64) {
        match phase {
            Phase::Encode => self.encode_us += us,
            Phase::Solve => self.solve_us += us,
            Phase::Verify => self.verify_us += us,
            _ => self.other_us += us,
        }
    }

    /// encode + solve + verify: the attributed fraction's numerator.
    pub fn attributed_us(&self) -> u64 {
        self.encode_us + self.solve_us + self.verify_us
    }

    /// Total across all buckets.
    pub fn total_us(&self) -> u64 {
        self.attributed_us() + self.other_us
    }
}

/// One cell's phase breakdown from [`breakdown`].
#[derive(Debug, Clone)]
pub struct CellBreakdown {
    /// The cell's `label` field (or its span name when unlabelled).
    pub label: String,
    /// The cell span's wall time in µs.
    pub wall_us: u64,
    /// Exclusive-time totals over the cell's subtree (including the cell
    /// span's own exclusive time, bucketed under `other`).
    pub phases: PhaseTotals,
}

impl CellBreakdown {
    /// Fraction of the cell wall attributed to encode+solve+verify.
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall_us == 0 {
            return 1.0;
        }
        self.phases.attributed_us() as f64 / self.wall_us as f64
    }

    /// Anomaly tag for the report (`verify-dominated`, `unattributed`),
    /// empty when the cell looks healthy. Cached cells are near-instant
    /// and fully unattributed by construction, so only cells that took
    /// real time are flagged.
    pub fn anomaly(&self) -> &'static str {
        if self.wall_us < 10_000 {
            return "";
        }
        let wall = self.wall_us as f64;
        if self.phases.verify_us as f64 > 0.5 * wall {
            "verify-dominated"
        } else if self.attributed_fraction() < 0.5 {
            "unattributed"
        } else {
            ""
        }
    }
}

/// Aggregates validated spans into per-cell and whole-run phase
/// breakdowns. Returns `(cells, run_totals)`; experiments without `cell`
/// spans still get run totals.
pub fn breakdown(stats: &SpanStats) -> (Vec<CellBreakdown>, PhaseTotals) {
    // Exclusive time: span duration minus direct children's durations.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for s in &stats.spans {
        if s.parent != 0 {
            *child_us.entry(s.parent).or_insert(0) += s.dur_us();
        }
    }
    let exclusive = |s: &SpanRec| -> u64 {
        s.dur_us()
            .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0))
    };

    let mut run_totals = PhaseTotals::default();
    for s in &stats.spans {
        run_totals.add(s.phase, exclusive(s));
    }

    // Attribute each span's exclusive time to its nearest enclosing cell.
    let by_id: HashMap<u64, usize> = stats
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i))
        .collect();
    let owning_cell = |s: &SpanRec| -> Option<u64> {
        let mut s = s;
        loop {
            if s.name == "cell" {
                return Some(s.id);
            }
            s = &stats.spans[*by_id.get(&s.parent)?];
        }
    };
    let mut cells: Vec<CellBreakdown> = Vec::new();
    let mut cell_index: HashMap<u64, usize> = HashMap::new();
    for s in &stats.spans {
        if s.name == "cell" {
            cell_index.insert(s.id, cells.len());
            cells.push(CellBreakdown {
                label: s.label.clone().unwrap_or_else(|| s.name.clone()),
                wall_us: s.dur_us(),
                phases: PhaseTotals::default(),
            });
        }
    }
    for s in &stats.spans {
        if let Some(cell_id) = owning_cell(s) {
            cells[cell_index[&cell_id]]
                .phases
                .add(s.phase, exclusive(s));
        }
    }
    (cells, run_totals)
}

fn ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".into();
    }
    format!("{:.0}%", 100.0 * part as f64 / whole as f64)
}

/// Renders the per-phase breakdown for every `SPANS_*.jsonl` in
/// `run_dir`, printing one table per experiment plus its headline
/// counters. Returns a one-line summary.
///
/// # Errors
///
/// When the directory has no span logs, or a span log fails validation.
pub fn trace_report(run_dir: &Path) -> Result<String, String> {
    let mut span_files = list_prefixed(run_dir, "SPANS_", ".jsonl")?;
    span_files.sort();
    if span_files.is_empty() {
        return Err(format!(
            "no SPANS_*.jsonl in {} — run an experiment first (RIL_TRACE=1 is the default)",
            run_dir.display()
        ));
    }
    let mut experiments = 0usize;
    let mut total_cells = 0usize;
    let mut anomalies = 0usize;
    for file in &span_files {
        let exp = file
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| {
                n.trim_start_matches("SPANS_")
                    .trim_end_matches(".jsonl")
                    .to_string()
            })
            .unwrap_or_default();
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let stats = check_spans_jsonl(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        let (cells, totals) = breakdown(&stats);
        experiments += 1;
        total_cells += cells.len();

        let mut rows: Vec<Vec<String>> = Vec::new();
        for c in &cells {
            let flag = c.anomaly();
            anomalies += usize::from(!flag.is_empty());
            rows.push(vec![
                c.label.clone(),
                ms(c.wall_us),
                format!(
                    "{} ({})",
                    ms(c.phases.encode_us),
                    pct(c.phases.encode_us, c.wall_us)
                ),
                format!(
                    "{} ({})",
                    ms(c.phases.solve_us),
                    pct(c.phases.solve_us, c.wall_us)
                ),
                format!(
                    "{} ({})",
                    ms(c.phases.verify_us),
                    pct(c.phases.verify_us, c.wall_us)
                ),
                pct(c.phases.attributed_us().min(c.wall_us), c.wall_us),
                flag.to_string(),
            ]);
        }
        rows.push(vec![
            "(run total)".into(),
            ms(totals.total_us()),
            ms(totals.encode_us),
            ms(totals.solve_us),
            ms(totals.verify_us),
            pct(totals.attributed_us(), totals.total_us()),
            String::new(),
        ]);
        print_table(
            &format!("{exp} — per-phase time, ms (exclusive)"),
            &[
                "cell", "wall", "encode", "solve", "verify", "attrib", "flags",
            ],
            &rows,
        );
        if !stats.counters.is_empty() {
            let counters: Vec<String> = stats
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!("counters: {}", counters.join("  "));
        }
    }
    Ok(format!(
        "{experiments} experiment(s), {total_cells} cell(s), {anomalies} anomalie(s)"
    ))
}

/// Validates every artifact of a run directory: each `MANIFEST_*.json`
/// parses, each `EVENTS_*.jsonl`, `SPANS_*.jsonl` and `TRACE_*.json`
/// passes its integrity checker. Returns a one-line summary.
///
/// # Errors
///
/// Lists every failing artifact (the whole directory is checked before
/// reporting).
pub fn validate_run_dir(run_dir: &Path) -> Result<String, String> {
    let mut checked = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut check = |files: Result<Vec<std::path::PathBuf>, String>,
                     f: &dyn Fn(&str) -> Result<(), String>| {
        let files = match files {
            Ok(fs) => fs,
            Err(e) => {
                failures.push(e);
                return;
            }
        };
        for file in files {
            checked += 1;
            let verdict = std::fs::read_to_string(&file)
                .map_err(|e| e.to_string())
                .and_then(|text| f(&text));
            if let Err(e) = verdict {
                failures.push(format!("{}: {e}", file.display()));
            }
        }
    };
    check(list_prefixed(run_dir, "MANIFEST_", ".json"), &|text| {
        Manifest::from_json(text).map(|_| ())
    });
    check(list_prefixed(run_dir, "EVENTS_", ".jsonl"), &|text| {
        check_events_jsonl(text).map(|_| ())
    });
    check(list_prefixed(run_dir, "SPANS_", ".jsonl"), &|text| {
        check_spans_jsonl(text).map(|_| ())
    });
    check(list_prefixed(run_dir, "TRACE_", ".json"), &|text| {
        check_chrome_trace(text).map(|_| ())
    });
    if checked == 0 {
        return Err(format!("no run artifacts in {}", run_dir.display()));
    }
    if failures.is_empty() {
        Ok(format!("{checked} artifact(s) valid"))
    } else {
        Err(failures.join("\n"))
    }
}

fn list_prefixed(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<std::path::PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with(prefix) && name.ends_with(suffix) {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_trace::Tracer;

    fn sample_stream() -> (String, String) {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        {
            let _ctx = tracer.install(root);
            let mut cell = ril_trace::span("cell", Phase::Cell);
            cell.record_str("label", "c7552/2x2/1");
            let _solve = ril_trace::span("solve", Phase::Solve);
        }
        tracer.close(root);
        (tracer.spans_jsonl(), tracer.chrome_trace_json())
    }

    #[test]
    fn real_streams_validate() {
        let (spans, chrome) = sample_stream();
        let stats = check_spans_jsonl(&spans).unwrap();
        assert_eq!(stats.spans.len(), 3);
        assert!(check_chrome_trace(&chrome).unwrap() >= 6);
    }

    #[test]
    fn breakdown_attributes_cell_subtree() {
        let (spans, _) = sample_stream();
        let stats = check_spans_jsonl(&spans).unwrap();
        let (cells, totals) = breakdown(&stats);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label, "c7552/2x2/1");
        // Solve exclusive + cell exclusive sum to the cell wall.
        assert!(cells[0].phases.total_us() <= cells[0].wall_us + 1);
        assert!(totals.total_us() > 0);
    }

    #[test]
    fn tampered_streams_are_rejected() {
        let (spans, _) = sample_stream();
        // Drop an end record: unbalanced.
        let dropped: Vec<&str> = spans
            .lines()
            .filter(|l| !(l.contains(r#""ev":"end""#) && l.contains(r#""id":2"#)))
            .collect();
        assert!(check_spans_jsonl(&dropped.join("\n")).is_err());
        // Truncate the metrics trailer.
        let no_metrics: Vec<&str> = spans
            .lines()
            .filter(|l| !l.contains(r#""ev":"metrics""#))
            .collect();
        assert!(check_spans_jsonl(&no_metrics.join("\n"))
            .unwrap_err()
            .contains("metrics"));
        // Corrupt a line.
        let garbled = spans.replacen("{\"ev\"", "{\"ev", 1);
        assert!(check_spans_jsonl(&garbled).is_err());
    }

    #[test]
    fn event_checker_rejects_bad_streams() {
        let good = "{\"t\":0.1,\"kind\":\"note\",\"experiment\":\"x\",\"message\":\"m\"}\n\
                    {\"t\":0.2,\"kind\":\"cell\",\"experiment\":\"x\",\"message\":\"m\"}";
        assert_eq!(check_events_jsonl(good), Ok(2));
        let backwards = "{\"t\":0.2,\"kind\":\"note\",\"experiment\":\"x\",\"message\":\"m\"}\n\
                         {\"t\":0.1,\"kind\":\"note\",\"experiment\":\"x\",\"message\":\"m\"}";
        assert!(check_events_jsonl(backwards)
            .unwrap_err()
            .contains("backwards"));
        // Appended re-runs restart the clock at their `start:` event.
        let two_runs = "{\"t\":5.0,\"kind\":\"note\",\"experiment\":\"x\",\"message\":\"done\"}\n\
                        {\"t\":0.1,\"kind\":\"note\",\"experiment\":\"x\",\"message\":\"start: again\"}\n\
                        {\"t\":0.2,\"kind\":\"cell\",\"experiment\":\"x\",\"message\":\"m\"}";
        assert_eq!(check_events_jsonl(two_runs), Ok(3));
        let bad_kind = "{\"t\":0.1,\"kind\":\"chatter\",\"experiment\":\"x\",\"message\":\"m\"}";
        assert!(check_events_jsonl(bad_kind).is_err());
    }
}
