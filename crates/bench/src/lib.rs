//! # ril-bench — experiment framework
//!
//! Every table and figure of the paper is an [`Experiment`] registered
//! with the framework and driven by the single `ril-bench` binary
//! (see DESIGN.md §8):
//!
//! | experiment | regenerates |
//! |---|---|
//! | `table1` | Table I — SAT seconds vs RIL-Block count/size on c7552 |
//! | `table3` | Table III — ISCAS/CEP benchmarks, 8×8×8 blocks, AppSAT ✗ |
//! | `table4` | Table IV — MRAM LUT energy |
//! | `table5` | Table V — attack-resiliency comparison matrix |
//! | `fig1` | Fig. 1 — MESO vs LUT-2 SAT-encoding runtimes |
//! | `fig5` | Fig. 5 — transient waveforms (AND → NOR → SE update) |
//! | `fig6` | Fig. 6 — Monte-Carlo PV distributions |
//! | `overhead` | §III-A overhead comparison |
//! | `scan_defense` | §III-C / IV-C Scan-Enable defense demonstration |
//! | `dynamic_defense` | Table V dynamic row — morph period vs SAT progress over `ril-serve` |
//! | `corruptibility` | output-corruption comparison vs point functions |
//! | `key_redundancy` | §III-A switch-box key-redundancy comparison |
//! | `lut_scaling` | §IV-B LUT-size / block-width scaling ablation |
//!
//! `ril-bench list` prints the registry; `ril-bench run <names…>` (or
//! `--all`, `--smoke`) executes experiments with a typed, validated
//! [`RunConfig`] (env knobs `RIL_TIMEOUT_SECS`, `RIL_THREADS`,
//! `RIL_SOLVER_THREADS`, `RIL_OUT_DIR`, `RIL_TABLE1_FULL`,
//! `RIL_MC_INSTANCES`, `RIL_LOG`, `RIL_TRACE` are parsed once, there),
//! a content-addressed cell cache
//! that makes interrupted sweeps resumable, per-run manifests, a JSONL
//! event stream, and hierarchical trace spans (`SPANS_<exp>.jsonl` +
//! Perfetto-loadable `TRACE_<exp>.json`, DESIGN.md §9). `ril-bench
//! trace <run-dir>` aggregates a finished run's spans into a per-phase
//! time breakdown; `ril-bench validate <run-dir>` integrity-checks every
//! artifact.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod events;
pub mod experiment;
pub mod experiments;
pub mod sweep;
pub mod tracereport;

pub use cache::{CacheKey, CellCache, Manifest, CACHE_VERSION};
pub use config::{ConfigError, RunConfig};
pub use events::{EventKind, EventSink, LogLevel};
pub use experiment::{
    registry, run_experiments, Experiment, ExperimentError, ExperimentOutput, RunContext,
};
pub use sweep::{parallel_sweep, parallel_sweep_traced, parallel_sweep_with, sweep_threads};
pub use tracereport::{
    breakdown, check_chrome_trace, check_events_jsonl, check_spans_jsonl, trace_report,
    validate_run_dir, CellBreakdown, PhaseTotals, SpanRec, SpanStats,
};

use ril_attacks::{run_attack, AttackConfig, AttackKind, AttackReport, AttackResult};
use ril_core::{LockedCircuit, Obfuscator, RilBlockSpec};
use ril_netlist::Netlist;
use ril_sat::SolverConfig;
use std::time::Duration;

/// Renders a markdown-ish table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        fmt_row(row);
    }
}

/// The per-cell attack budget (`RIL_TIMEOUT_SECS`, default 60 s — the
/// scaled-down stand-in for the paper's 5-day timeout).
pub fn cell_timeout() -> Duration {
    ril_attacks::default_timeout()
}

/// One table cell's outcome: the rendered cell plus, when an attack
/// actually ran, the full [`AttackReport`] (with per-iteration solver
/// statistics) for machine-readable output.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The table cell string (`seconds`, `∞`, `n/a`, `err:…`).
    pub cell: String,
    /// The underlying attack report, when one was produced.
    pub report: Option<AttackReport>,
}

impl CellOutcome {
    /// A cell with no attack behind it (`n/a`, `err:…`).
    pub fn bare(cell: impl Into<String>) -> CellOutcome {
        CellOutcome {
            cell: cell.into(),
            report: None,
        }
    }

    /// The cell's JSON value: the report object, or `null` for bare cells.
    pub fn report_json(&self) -> String {
        self.report
            .as_ref()
            .map(AttackReport::to_json)
            .unwrap_or_else(|| "null".to_string())
    }
}

/// Locks `host` with `blocks` RIL-Blocks of shape `spec` and runs the SAT
/// attack; returns the table cell string (`seconds`, `∞`, or `n/a` when the
/// host cannot host that many independent blocks).
pub fn attack_cell(host: &Netlist, spec: RilBlockSpec, blocks: usize, seed: u64) -> String {
    attack_cell_report(host, spec, blocks, seed).cell
}

/// Like [`attack_cell`], but keeps the full [`AttackReport`] (per-iteration
/// DIP statistics included) alongside the rendered cell.
pub fn attack_cell_report(
    host: &Netlist,
    spec: RilBlockSpec,
    blocks: usize,
    seed: u64,
) -> CellOutcome {
    attack_cell_report_with(
        host,
        spec,
        blocks,
        seed,
        cell_timeout(),
        ril_attacks::default_solver_threads(),
    )
}

/// [`attack_cell_report`] with an explicit attack budget and solver
/// portfolio width — the experiment framework passes
/// `RunConfig::timeout` / `RunConfig::solver_threads` here instead of
/// re-reading the environment per cell.
pub fn attack_cell_report_with(
    host: &Netlist,
    spec: RilBlockSpec,
    blocks: usize,
    seed: u64,
    timeout: Duration,
    solver_threads: usize,
) -> CellOutcome {
    let locked = {
        // Obfuscation is the cell's encode-side cost outside the attack
        // (the attack's own CNF building has its own `encode_*` spans).
        let _lock_span = ril_trace::span("lock", ril_trace::Phase::Encode);
        Obfuscator::new(spec)
            .blocks(blocks)
            .seed(seed)
            .obfuscate(host)
    };
    match locked {
        Err(_) => CellOutcome::bare("n/a"),
        Ok(locked) => {
            let cfg = AttackConfig {
                timeout: Some(timeout),
                solver: SolverConfig {
                    threads: solver_threads,
                    ..SolverConfig::default()
                },
                ..AttackConfig::default()
            };
            match run_attack(AttackKind::Sat, &locked, &cfg) {
                Err(e) => CellOutcome::bare(format!("err:{e}")),
                Ok(outcome) => {
                    let report = outcome.report;
                    let cell = if report.result.succeeded()
                        && report.functionally_correct == Some(false)
                    {
                        // Recovered a key that does not actually unlock.
                        format!("{}(✗)", report.table_cell())
                    } else {
                        report.table_cell()
                    };
                    CellOutcome {
                        cell,
                        report: Some(report),
                    }
                }
            }
        }
    }
}

/// Writes a benchmark's machine-readable output to
/// `$RIL_OUT_DIR/<name>` (default `exp_out/<name>`), creating the
/// directory if needed. Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_output_file(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("RIL_OUT_DIR").unwrap_or_else(|_| "exp_out".to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Obfuscates with the Scan-Enable stage on, retrying seeds until at least
/// one SE key bit is set (so the defense is actually armed).
pub fn lock_with_armed_se(
    host: &Netlist,
    spec: RilBlockSpec,
    blocks: usize,
    base_seed: u64,
) -> Option<LockedCircuit> {
    for seed in base_seed..base_seed + 50 {
        let locked = Obfuscator::new(spec)
            .blocks(blocks)
            .scan_obfuscation(true)
            .seed(seed)
            .obfuscate(host)
            .ok()?;
        let armed = locked
            .keys
            .kinds()
            .iter()
            .zip(locked.keys.bits())
            .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v);
        if armed {
            return Some(locked);
        }
    }
    None
}

/// Classifies an attack report into the ✓(defense held)/✗(broken) notation
/// used by Table V-style matrices, from the *defender's* perspective.
pub fn defense_held(result: &AttackResult, functionally_correct: Option<bool>) -> bool {
    match result {
        AttackResult::Timeout | AttackResult::Failed(_) => true,
        _ => functionally_correct == Some(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_netlist::generators;

    #[test]
    fn attack_cell_solves_trivial_config() {
        std::env::set_var("RIL_TIMEOUT_SECS", "30");
        let host = generators::adder(8);
        let cell = attack_cell(&host, RilBlockSpec::size_2x2(), 1, 3);
        assert_ne!(cell, "∞");
        assert_ne!(cell, "n/a");
        cell.parse::<f64>().expect("numeric cell");
    }

    #[test]
    fn attack_cell_reports_na_when_host_too_small() {
        let host = generators::adder(2);
        let cell = attack_cell(&host, RilBlockSpec::size_8x8(), 50, 1);
        assert_eq!(cell, "n/a");
    }

    #[test]
    fn armed_se_lock_found() {
        let host = generators::adder(8);
        let locked = lock_with_armed_se(&host, RilBlockSpec::size_2x2(), 2, 0).unwrap();
        assert!(locked
            .keys
            .kinds()
            .iter()
            .zip(locked.keys.bits())
            .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v));
    }

    #[test]
    fn defense_classification() {
        assert!(defense_held(&AttackResult::Timeout, None));
        assert!(defense_held(&AttackResult::Failed("x".into()), None));
        assert!(defense_held(&AttackResult::ExactKey(vec![]), Some(false)));
        assert!(!defense_held(&AttackResult::ExactKey(vec![]), Some(true)));
    }
}
