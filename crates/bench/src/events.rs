//! Structured JSONL event stream for experiment runs.
//!
//! The former binaries narrated progress with ad-hoc `eprintln!` lines that
//! were impossible to post-process. [`EventSink`] writes one JSON object per
//! line to `<out_dir>/EVENTS_<experiment>.jsonl` (and mirrors a short human
//! form to stderr), so a run leaves a machine-readable trace: which cells
//! were computed vs. served from cache, how long each took, and what failed.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use ril_attacks::json::escape;

/// Event severity / kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Run lifecycle (start / finish).
    Run,
    /// A sweep cell completed (computed or cached).
    Cell,
    /// Informational note.
    Note,
    /// A recoverable failure (the run continues).
    Error,
}

impl EventKind {
    fn tag(self) -> &'static str {
        match self {
            EventKind::Run => "run",
            EventKind::Cell => "cell",
            EventKind::Note => "note",
            EventKind::Error => "error",
        }
    }
}

/// A JSONL event writer scoped to one experiment run.
///
/// Events carry a monotonic timestamp (seconds since the sink was opened),
/// so interleaving across parallel sweep workers stays interpretable.
pub struct EventSink {
    file: Option<File>,
    started: Instant,
    experiment: String,
    mirror_stderr: bool,
}

impl EventSink {
    /// Opens (appends to) `<dir>/EVENTS_<experiment>.jsonl`. A sink that
    /// cannot be opened degrades to stderr-only rather than failing the
    /// run.
    pub fn open(dir: &Path, experiment: &str) -> EventSink {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("EVENTS_{experiment}.jsonl"));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok();
        EventSink {
            file,
            started: Instant::now(),
            experiment: experiment.to_string(),
            mirror_stderr: true,
        }
    }

    /// A sink that discards everything — for tests and `describe`.
    pub fn null() -> EventSink {
        EventSink {
            file: None,
            started: Instant::now(),
            experiment: String::new(),
            mirror_stderr: false,
        }
    }

    /// Emits one event. `fields` is a pre-rendered JSON fragment
    /// (`"k":v,...`) appended to the standard envelope; pass `""` for
    /// none.
    pub fn emit(&mut self, kind: EventKind, message: &str, fields: &str) {
        let t = self.started.elapsed().as_secs_f64();
        if let Some(f) = &mut self.file {
            let extra = if fields.is_empty() {
                String::new()
            } else {
                format!(",{fields}")
            };
            let line = format!(
                r#"{{"t":{t:.3},"kind":"{}","experiment":"{}","message":"{}"{extra}}}"#,
                kind.tag(),
                escape(&self.experiment),
                escape(message),
            );
            let _ = writeln!(f, "{line}");
        }
        if self.mirror_stderr {
            eprintln!("[{}] {} {}", self.experiment, kind.tag(), message);
        }
    }

    /// Convenience: a `Note` event with no extra fields.
    pub fn note(&mut self, message: &str) {
        self.emit(EventKind::Note, message, "");
    }

    /// Convenience: an `Error` event with no extra fields.
    pub fn error(&mut self, message: &str) {
        self.emit(EventKind::Error, message, "");
    }

    /// Seconds since the sink was opened.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_attacks::json::JsonValue;

    #[test]
    fn events_are_valid_jsonl() {
        let dir = std::env::temp_dir().join(format!("ril_events_test_{}", std::process::id()));
        let mut sink = EventSink::open(&dir, "unit");
        sink.mirror_stderr = false;
        sink.note("hello \"world\"");
        sink.emit(
            EventKind::Cell,
            "cell done",
            r#""cell":"2x2","cached":true"#,
        );
        drop(sink);
        let text = std::fs::read_to_string(dir.join("EVENTS_unit.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            JsonValue::parse(line).unwrap();
        }
        let second = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(second.get("kind").unwrap().as_str(), Some("cell"));
        assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_sink_is_silent() {
        let mut sink = EventSink::null();
        sink.note("nothing happens");
        assert!(sink.file.is_none());
    }
}
