//! Structured JSONL event stream for experiment runs.
//!
//! The former binaries narrated progress with ad-hoc `eprintln!` lines that
//! were impossible to post-process. [`EventSink`] writes one JSON object per
//! line to `<out_dir>/EVENTS_<experiment>.jsonl` (and mirrors a short human
//! form to stderr), so a run leaves a machine-readable trace: which cells
//! were computed vs. served from cache, how long each took, and what failed.
//!
//! The sink is safe to share by reference across parallel sweep workers:
//! the file handle and clock sit behind an internal [`Mutex`], every event
//! is written as one whole line under that lock (no interleaved fragments),
//! and timestamps are taken under the lock so file order is timestamp
//! order. The JSONL file always receives every event; only the stderr
//! mirror is filtered, by the [`LogLevel`] from `RIL_LOG`.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use ril_attacks::json::escape;

/// Stderr verbosity for the human-readable event mirror (`RIL_LOG`).
///
/// Levels are cumulative: `note` shows errors and notes, `debug` shows
/// everything including per-cell progress. The JSONL event file is *not*
/// affected — it always records every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing on stderr.
    Off,
    /// Only `error` events.
    Error,
    /// Errors plus run lifecycle and notes (the default).
    Note,
    /// Everything, including per-cell completion events.
    Debug,
}

impl LogLevel {
    /// Parses a `RIL_LOG` value. `None` for anything but the four level
    /// names (callers treat that as a hard configuration error).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "note" => Some(LogLevel::Note),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// The level's `RIL_LOG` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Note => "note",
            LogLevel::Debug => "debug",
        }
    }
}

/// Event severity / kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Run lifecycle (start / finish).
    Run,
    /// A sweep cell completed (computed or cached).
    Cell,
    /// Informational note.
    Note,
    /// A recoverable failure (the run continues).
    Error,
}

impl EventKind {
    fn tag(self) -> &'static str {
        match self {
            EventKind::Run => "run",
            EventKind::Cell => "cell",
            EventKind::Note => "note",
            EventKind::Error => "error",
        }
    }

    /// The minimum stderr [`LogLevel`] at which this kind is mirrored.
    fn level(self) -> LogLevel {
        match self {
            EventKind::Error => LogLevel::Error,
            EventKind::Run | EventKind::Note => LogLevel::Note,
            EventKind::Cell => LogLevel::Debug,
        }
    }
}

/// The lock-protected mutable half of an [`EventSink`]: clock and file
/// handle together, so a timestamp and its line hit the file in the same
/// critical section.
struct SinkInner {
    file: Option<File>,
    started: Instant,
}

/// A JSONL event writer scoped to one experiment run.
///
/// Events carry a monotonic timestamp (seconds since the sink was opened)
/// taken under the sink's internal lock, so line order in the file is
/// timestamp order even when parallel sweep workers share the sink.
pub struct EventSink {
    inner: Mutex<SinkInner>,
    experiment: String,
    stderr_level: LogLevel,
}

impl EventSink {
    /// Opens (appends to) `<dir>/EVENTS_<experiment>.jsonl` with the
    /// default stderr verbosity ([`LogLevel::Note`]). A sink that cannot
    /// be opened degrades to stderr-only rather than failing the run.
    pub fn open(dir: &Path, experiment: &str) -> EventSink {
        EventSink::open_with_level(dir, experiment, LogLevel::Note)
    }

    /// [`EventSink::open`] with an explicit stderr verbosity (from
    /// `RIL_LOG`). The JSONL file always receives every event regardless
    /// of level.
    pub fn open_with_level(dir: &Path, experiment: &str, level: LogLevel) -> EventSink {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("EVENTS_{experiment}.jsonl"));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok();
        EventSink {
            inner: Mutex::new(SinkInner {
                file,
                started: Instant::now(),
            }),
            experiment: experiment.to_string(),
            stderr_level: level,
        }
    }

    /// A sink that discards everything — for tests and `describe`.
    pub fn null() -> EventSink {
        EventSink {
            inner: Mutex::new(SinkInner {
                file: None,
                started: Instant::now(),
            }),
            experiment: String::new(),
            stderr_level: LogLevel::Off,
        }
    }

    /// Emits one event. `fields` is a pre-rendered JSON fragment
    /// (`"k":v,...`) appended to the standard envelope; pass `""` for
    /// none. The whole line is written inside one lock acquisition, so
    /// concurrent emitters never interleave within a line and timestamps
    /// are monotonic in file order.
    pub fn emit(&self, kind: EventKind, message: &str, fields: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let t = inner.started.elapsed().as_secs_f64();
        if let Some(f) = &mut inner.file {
            let extra = if fields.is_empty() {
                String::new()
            } else {
                format!(",{fields}")
            };
            let line = format!(
                r#"{{"t":{t:.6},"kind":"{}","experiment":"{}","message":"{}"{extra}}}"#,
                kind.tag(),
                escape(&self.experiment),
                escape(message),
            );
            let _ = writeln!(f, "{line}");
        }
        drop(inner);
        if kind.level() <= self.stderr_level && self.stderr_level != LogLevel::Off {
            eprintln!("[{}] {} {}", self.experiment, kind.tag(), message);
        }
    }

    /// Convenience: a `Note` event with no extra fields.
    pub fn note(&self, message: &str) {
        self.emit(EventKind::Note, message, "");
    }

    /// Convenience: an `Error` event with no extra fields.
    pub fn error(&self, message: &str) {
        self.emit(EventKind::Error, message, "");
    }

    /// Seconds since the sink was opened.
    pub fn elapsed_s(&self) -> f64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .started
            .elapsed()
            .as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_attacks::json::JsonValue;

    #[test]
    fn events_are_valid_jsonl() {
        let dir = std::env::temp_dir().join(format!("ril_events_test_{}", std::process::id()));
        let sink = EventSink::open_with_level(&dir, "unit", LogLevel::Off);
        sink.note("hello \"world\"");
        sink.emit(
            EventKind::Cell,
            "cell done",
            r#""cell":"2x2","cached":true"#,
        );
        drop(sink);
        let text = std::fs::read_to_string(dir.join("EVENTS_unit.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            JsonValue::parse(line).unwrap();
        }
        let second = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(second.get("kind").unwrap().as_str(), Some("cell"));
        assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_sink_is_silent() {
        let sink = EventSink::null();
        sink.note("nothing happens");
        assert!(sink.inner.lock().unwrap().file.is_none());
    }

    #[test]
    fn log_levels_parse_and_order() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("error"), Some(LogLevel::Error));
        assert_eq!(LogLevel::parse("note"), Some(LogLevel::Note));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert_eq!(LogLevel::parse("NOTE"), None);
        assert!(LogLevel::Error < LogLevel::Note);
        assert!(LogLevel::Note < LogLevel::Debug);
        assert_eq!(LogLevel::Debug.as_str(), "debug");
    }

    #[test]
    fn concurrent_emitters_keep_lines_whole_and_timestamps_monotonic() {
        let dir = std::env::temp_dir().join(format!("ril_events_mt_{}", std::process::id()));
        let sink = EventSink::open_with_level(&dir, "mt", LogLevel::Off);
        std::thread::scope(|s| {
            for w in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..50 {
                        sink.emit(
                            EventKind::Cell,
                            &format!("worker {w} item {i}"),
                            &format!(r#""worker":{w},"item":{i}"#),
                        );
                    }
                });
            }
        });
        drop(sink);
        let text = std::fs::read_to_string(dir.join("EVENTS_mt.jsonl")).unwrap();
        let mut last_t = -1.0;
        let mut n = 0;
        for line in text.lines() {
            let v = JsonValue::parse(line).expect("interleaved/torn line");
            let t = v.get("t").unwrap().as_f64().unwrap();
            assert!(t >= last_t, "timestamps must be monotonic in file order");
            last_t = t;
            n += 1;
        }
        assert_eq!(n, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
