//! Content-addressed cell cache and run manifests.
//!
//! Each sweep cell (one benchmark × one lock spec × one attack config ×
//! one seed) is addressed by a stable hash of its **full** configuration
//! plus a code-version tag. Finished cells are persisted as they complete,
//! so an interrupted sweep — even one killed with SIGKILL — resumes from
//! the cells already on disk instead of recomputing hours of SAT attacks.
//!
//! Layout under `<out_dir>/cache/`:
//!
//! ```text
//! cache/<fnv1a64-hex>.cell     first line: canonical key string
//!                              remainder:  the cell payload, verbatim
//! ```
//!
//! Writes go through a temp file + `rename`, which is atomic on POSIX:
//! a cell file either exists completely or not at all. The canonical key
//! stored on line 1 guards against the (astronomically unlikely, but
//! cheap to rule out) 64-bit hash collision and doubles as a debugging
//! aid — `head -1` on any cache file says exactly what it holds.

use std::fs;
use std::path::{Path, PathBuf};

use ril_attacks::json::{escape, JsonValue};

/// Bumped whenever attack semantics or cell payload encoding change, so
/// stale cells from older code versions can never satisfy a lookup.
pub const CACHE_VERSION: &str = "v1";

/// FNV-1a, 64-bit. Stable across platforms and runs (unlike
/// `DefaultHasher`, whose output is explicitly unspecified across
/// releases), which is what lets cache files survive upgrades until
/// [`CACHE_VERSION`] says otherwise.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A canonical cache key: ordered `name=value` fields under a version tag.
///
/// The canonical string — not the insertion-order-sensitive hash of some
/// struct — is the identity, so two call sites that build the same logical
/// key get the same cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    canonical: String,
}

impl CacheKey {
    /// Starts a key for one experiment.
    #[must_use]
    pub fn new(experiment: &str) -> CacheKey {
        CacheKey {
            canonical: format!("{CACHE_VERSION}|exp={experiment}"),
        }
    }

    /// Appends one `name=value` field. Values containing `|` would break
    /// the canonical form's injectivity, so they are percent-escaped.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl std::fmt::Display) -> CacheKey {
        let v = value.to_string().replace('%', "%25").replace('|', "%7c");
        self.canonical.push_str(&format!("|{name}={v}"));
        self
    }

    /// The canonical key string.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The content hash, as a fixed-width hex file stem.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical.as_bytes()))
    }
}

/// The on-disk cell cache for one run directory.
pub struct CellCache {
    dir: PathBuf,
    enabled: bool,
}

impl CellCache {
    /// A cache rooted at `<out_dir>/cache`. With `enabled = false` every
    /// lookup misses and every store is dropped (the `--no-cache` path).
    #[must_use]
    pub fn new(out_dir: &Path, enabled: bool) -> CellCache {
        CellCache {
            dir: out_dir.join("cache"),
            enabled,
        }
    }

    /// Where `key`'s cell lives (whether or not it exists yet).
    #[must_use]
    pub fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.cell", key.hash_hex()))
    }

    /// Fetches the payload for `key`, if a completed cell is on disk and
    /// its stored canonical key matches (hash-collision guard).
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let (stored_key, payload) = text.split_once('\n')?;
        if stored_key != key.canonical() {
            return None;
        }
        Some(payload.to_string())
    }

    /// Persists `payload` for `key` atomically (temp file + rename), so a
    /// kill at any instant leaves either the complete cell or nothing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; callers treat a failed store as
    /// non-fatal (the cell was still computed).
    pub fn put(&self, key: &CacheKey, payload: &str) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        fs::create_dir_all(&self.dir)?;
        let final_path = self.path_for(key);
        let tmp_path = self
            .dir
            .join(format!(".tmp-{}-{}", key.hash_hex(), std::process::id()));
        fs::write(&tmp_path, format!("{}\n{payload}", key.canonical()))?;
        fs::rename(&tmp_path, &final_path)
    }

    /// Number of completed cells currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no completed cells are on disk.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The record of one experiment run: configuration, cell accounting, and
/// wall time. Written to `<out_dir>/MANIFEST_<experiment>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Experiment name.
    pub experiment: String,
    /// The [`crate::config::RunConfig`] as JSON, verbatim.
    pub config_json: String,
    /// Cells served from the cache.
    pub cached_cells: usize,
    /// Cells computed this run.
    pub computed_cells: usize,
    /// Cells that failed (recoverable; recorded, not cached).
    pub failed_cells: usize,
    /// Total wall-clock seconds for the run.
    pub wall_s: f64,
    /// Whether the run completed (`false` only in manifests from crashed
    /// runs, which are never written — present for forward compatibility).
    pub completed: bool,
}

impl Manifest {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"experiment":"{}","cache_version":"{CACHE_VERSION}","config":{},"cached_cells":{},"computed_cells":{},"failed_cells":{},"wall_s":{:.3},"completed":{}}}"#,
            escape(&self.experiment),
            self.config_json,
            self.cached_cells,
            self.computed_cells,
            self.failed_cells,
            self.wall_s,
            self.completed,
        )
    }

    /// Parses a manifest back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field {name:?}"))
        };
        let count_field = |name: &str| -> Result<usize, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("manifest missing count field {name:?}"))
        };
        // `config` is kept as raw text by re-parsing position-free: we
        // only need it verbatim for display, so re-serialize the subtree
        // is unnecessary — store the whole original text's `config`
        // object by slicing is fragile; instead rebuild a minimal form.
        let config = v
            .get("config")
            .ok_or_else(|| "manifest missing config".to_string())?;
        Ok(Manifest {
            experiment: str_field("experiment")?,
            config_json: render(config),
            cached_cells: count_field("cached_cells")?,
            computed_cells: count_field("computed_cells")?,
            failed_cells: count_field("failed_cells")?,
            wall_s: v
                .get("wall_s")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| "manifest missing wall_s".to_string())?,
            completed: v
                .get("completed")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| "manifest missing completed".to_string())?,
        })
    }

    /// The manifest path for `experiment` under `out_dir`.
    #[must_use]
    pub fn path_for(out_dir: &Path, experiment: &str) -> PathBuf {
        out_dir.join(format!("MANIFEST_{experiment}.json"))
    }
}

/// Re-renders a parsed [`JsonValue`] as compact JSON (used to round-trip
/// the embedded config object, whose exact key order we control anyway).
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => format!("\"{}\"", escape(s)),
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, val)| format!("\"{}\":{}", escape(k), render(val)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ril_cache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn key_fields_are_injective() {
        let a = CacheKey::new("t").field("x", "1|y=2");
        let b = CacheKey::new("t").field("x", "1").field("y", "2");
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn cache_round_trips_payload() {
        let dir = temp_dir("roundtrip");
        let cache = CellCache::new(&dir, true);
        let key = CacheKey::new("table1")
            .field("bench", "c432")
            .field("seed", 7);
        assert!(cache.get(&key).is_none());
        cache.put(&key, "line1\nline2").unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some("line1\nline2"));
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_misses() {
        let dir = temp_dir("mismatch");
        let cache = CellCache::new(&dir, true);
        let key = CacheKey::new("table1").field("seed", 7);
        cache.put(&key, "payload").unwrap();
        // Corrupt the stored canonical key: the lookup must refuse it.
        let path = cache.path_for(&key);
        fs::write(&path, "v0|exp=other\npayload").unwrap();
        assert!(cache.get(&key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let dir = temp_dir("disabled");
        let cache = CellCache::new(&dir, false);
        let key = CacheKey::new("x").field("a", 1);
        cache.put(&key, "p").unwrap();
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            experiment: "table3".to_string(),
            config_json: crate::config::RunConfig::default().to_json(),
            cached_cells: 4,
            computed_cells: 28,
            failed_cells: 1,
            wall_s: 12.5,
            completed: true,
        };
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed.experiment, "table3");
        assert_eq!(parsed.cached_cells, 4);
        assert_eq!(parsed.computed_cells, 28);
        assert_eq!(parsed.failed_cells, 1);
        assert!(parsed.completed);
        assert!((parsed.wall_s - 12.5).abs() < 1e-9);
    }

    #[test]
    fn manifest_rejects_missing_fields() {
        assert!(Manifest::from_json(r#"{"experiment":"x"}"#).is_err());
    }
}
