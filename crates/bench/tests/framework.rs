//! Integration tests for the experiment framework: cache key semantics,
//! resume-after-partial-run, and the headline acceptance property — a
//! `ril-bench run table1` killed mid-sweep (SIGKILL) and re-invoked
//! completes from cached cells, strictly faster than a cold run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ril_bench::experiment::{find, run_experiments, Experiment};
use ril_bench::experiments::sat_cell_key;
use ril_bench::{CellCache, Manifest, RunConfig};
use ril_core::RilBlockSpec;

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ril_bench_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(out_dir: &Path) -> RunConfig {
    RunConfig {
        timeout: Duration::from_secs(2),
        threads: 2,
        solver_threads: 1,
        out_dir: out_dir.to_path_buf(),
        table1_full: false,
        mc_instances: 10,
        smoke: true,
        use_cache: true,
        log_level: ril_bench::LogLevel::Off,
        trace: true,
    }
}

fn read_manifest(out_dir: &Path, experiment: &str) -> Manifest {
    let text =
        std::fs::read_to_string(Manifest::path_for(out_dir, experiment)).expect("manifest exists");
    Manifest::from_json(&text).expect("manifest parses")
}

#[test]
fn cache_hits_on_identical_config_and_misses_on_any_change() {
    let timeout = Duration::from_secs(60);
    let base = sat_cell_key("c7552", RilBlockSpec::size_8x8(), 3, 7, timeout, 1);
    let same = sat_cell_key("c7552", RilBlockSpec::size_8x8(), 3, 7, timeout, 1);
    assert_eq!(base.canonical(), same.canonical());
    assert_eq!(base.hash_hex(), same.hash_hex());

    // Any coordinate change must produce a different cell identity.
    let variants = [
        sat_cell_key("c7552", RilBlockSpec::size_2x2(), 3, 7, timeout, 1),
        sat_cell_key(
            "c7552",
            RilBlockSpec::size_8x8().with_scan(true),
            3,
            7,
            timeout,
            1,
        ),
        sat_cell_key("c7552", RilBlockSpec::size_8x8(), 4, 7, timeout, 1),
        sat_cell_key("c7552", RilBlockSpec::size_8x8(), 3, 8, timeout, 1),
        sat_cell_key(
            "c7552",
            RilBlockSpec::size_8x8(),
            3,
            7,
            Duration::from_secs(61),
            1,
        ),
        sat_cell_key("b15", RilBlockSpec::size_8x8(), 3, 7, timeout, 1),
        sat_cell_key("c7552", RilBlockSpec::size_8x8(), 3, 7, timeout, 4),
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(
            base.canonical(),
            v.canonical(),
            "variant {i} should change the key"
        );
    }

    // And the on-disk cache agrees: a stored cell only answers its own key.
    let dir = temp_out("keying");
    let cache = CellCache::new(&dir, true);
    cache.put(&base, "payload").unwrap();
    assert_eq!(cache.get(&base).as_deref(), Some("payload"));
    assert_eq!(cache.get(&same).as_deref(), Some("payload"));
    for v in &variants {
        assert!(cache.get(v).is_none());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_partial_run_reuses_surviving_cells() {
    let dir = temp_out("partial");
    let cfg = test_config(&dir);
    let exps: Vec<Box<dyn Experiment>> = vec![find("scan_defense").expect("registered")];

    // Cold run: everything computed.
    let records = run_experiments(&exps, &cfg);
    assert!(records[0].outcome.is_ok(), "{:?}", records[0].outcome);
    let cold = read_manifest(&dir, "scan_defense");
    assert_eq!(cold.cached_cells, 0);
    assert!(cold.computed_cells >= 4, "expected a real sweep");

    // Simulate an interrupted sweep: delete half the finished cells.
    let cache_dir = dir.join("cache");
    let mut cells: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cell"))
        .collect();
    cells.sort();
    let half = cells.len() / 2;
    for path in &cells[..half] {
        std::fs::remove_file(path).unwrap();
    }

    // Resumed run: the survivors are served from cache, the rest recomputed.
    let records = run_experiments(&exps, &cfg);
    assert!(records[0].outcome.is_ok(), "{:?}", records[0].outcome);
    let resumed = read_manifest(&dir, "scan_defense");
    assert!(
        resumed.cached_cells > 0,
        "survivors should hit: {resumed:?}"
    );
    assert!(
        resumed.computed_cells > 0,
        "deleted cells recompute: {resumed:?}"
    );
    assert_eq!(
        resumed.cached_cells + resumed.computed_cells,
        cold.computed_cells
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn spawn_table1(out_dir: &Path) -> Child {
    // --smoke caps RIL_TIMEOUT_SECS at 3 s; the sweep is 6 cells (2 block
    // counts × 3 specs) whose 8x8x8 cells reliably run multi-second, so
    // killing after 4 finished cells lands mid-sweep with seconds of
    // margin on both sides.
    Command::new(env!("CARGO_BIN_EXE_ril-bench"))
        .args(["run", "--smoke", "table1"])
        .env("RIL_OUT_DIR", out_dir)
        .env("RIL_TIMEOUT_SECS", "3")
        .env("RIL_THREADS", "2")
        .env_remove("RIL_TABLE1_FULL")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ril-bench")
}

#[test]
fn sigkilled_table1_resumes_from_cache_and_beats_a_cold_run() {
    // Baseline: a cold, uninterrupted run.
    let cold_dir = temp_out("t1_cold");
    let status = spawn_table1(&cold_dir).wait().expect("wait");
    assert!(status.success());
    let cold = read_manifest(&cold_dir, "table1");
    assert!(cold.completed);
    assert_eq!(cold.cached_cells, 0);
    assert!(cold.computed_cells > 0);

    // Interrupted run: SIGKILL the sweep once at least one cell landed on
    // disk — no destructors, no flushing, the hardest interruption there is.
    let kill_dir = temp_out("t1_kill");
    let mut child = spawn_table1(&kill_dir);
    let cache = CellCache::new(&kill_dir, true);
    let deadline = Instant::now() + Duration::from_secs(240);
    // Kill only once most of the sweep is durable, so the resumed run's
    // saving dwarfs process-startup noise in the wall-clock comparison.
    let kill_after = (cold.computed_cells * 2).div_ceil(3);
    loop {
        if cache.len() >= kill_after {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("run finished (status {status}) before the test could kill it mid-sweep");
        }
        assert!(
            Instant::now() < deadline,
            "fewer than {kill_after} cells completed within 240s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    assert!(
        !Manifest::path_for(&kill_dir, "table1").exists(),
        "a killed run must not have written a manifest"
    );
    let survivors = cache.len();
    assert!(survivors >= 1);

    // Re-invocation completes, reports the survivors as cache hits, and is
    // strictly faster than the cold baseline.
    let status = spawn_table1(&kill_dir).wait().expect("wait");
    assert!(status.success());
    let resumed = read_manifest(&kill_dir, "table1");
    assert!(resumed.completed);
    assert!(
        resumed.cached_cells > 0,
        "resume must reuse the killed run's cells: {resumed:?}"
    );
    assert_eq!(
        resumed.cached_cells + resumed.computed_cells,
        cold.computed_cells,
        "resume must cover exactly the cold run's cell set"
    );
    assert!(
        resumed.wall_s < cold.wall_s,
        "resumed run ({:.3}s) must beat the cold run ({:.3}s)",
        resumed.wall_s,
        cold.wall_s
    );

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}
