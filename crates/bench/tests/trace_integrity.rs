//! Trace and event stream integrity, end to end: a real experiment run
//! leaves `SPANS_*.jsonl` / `TRACE_*.json` / `EVENTS_*.jsonl` that pass
//! the checkers (every line parses, per-thread timestamps monotonic,
//! begin/end balanced, parents resolve), spans stay balanced even when
//! the experiment panics mid-span, and a multi-worker sweep keeps both
//! streams whole.

use std::path::{Path, PathBuf};
use std::time::Duration;

use ril_bench::experiment::{find, run_experiments, Experiment, RunContext};
use ril_bench::experiment::{ExperimentError, ExperimentOutput};
use ril_bench::{
    breakdown, check_chrome_trace, check_events_jsonl, check_spans_jsonl, validate_run_dir,
    LogLevel, RunConfig,
};

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ril_trace_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(out_dir: &Path) -> RunConfig {
    RunConfig {
        timeout: Duration::from_secs(2),
        threads: 4,
        solver_threads: 1,
        out_dir: out_dir.to_path_buf(),
        table1_full: false,
        mc_instances: 10,
        smoke: true,
        use_cache: true,
        log_level: LogLevel::Off,
        trace: true,
    }
}

fn read_artifact(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn real_run_produces_valid_traced_artifacts() {
    let dir = temp_out("real");
    let cfg = test_config(&dir);
    let exps: Vec<Box<dyn Experiment>> = vec![find("scan_defense").expect("registered")];
    let records = run_experiments(&exps, &cfg);
    assert!(records[0].outcome.is_ok(), "{:?}", records[0].outcome);

    // Span stream: parses, balanced, monotonic per thread — and carries
    // the whole hierarchy (experiment root, labelled cells, solves).
    let spans = read_artifact(&dir, "SPANS_scan_defense.jsonl");
    let stats = check_spans_jsonl(&spans).unwrap_or_else(|e| panic!("spans: {e}"));
    let roots: Vec<_> = stats.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "experiment");
    let cells: Vec<_> = stats.spans.iter().filter(|s| s.name == "cell").collect();
    assert!(!cells.is_empty(), "sweep cells are traced");
    assert!(
        cells.iter().all(|c| c.label.is_some()),
        "cells carry labels"
    );
    assert!(
        stats.spans.iter().any(|s| s.name == "solve"),
        "CDCL solves are traced"
    );
    assert!(
        stats
            .counters
            .iter()
            .any(|(k, v)| k == "sat.solves" && *v > 0),
        "metrics trailer has solver counters: {:?}",
        stats.counters
    );

    // The attacks under the cells actually attribute their time: every
    // non-cached cell's subtree lands encode/solve/verify buckets.
    let (cell_breakdowns, totals) = breakdown(&stats);
    assert_eq!(cell_breakdowns.len(), cells.len());
    assert!(totals.solve_us > 0, "solve time attributed: {totals:?}");

    // Chrome trace: loads as JSON, B/E nest properly per thread.
    let chrome = read_artifact(&dir, "TRACE_scan_defense.json");
    let n = check_chrome_trace(&chrome).unwrap_or_else(|e| panic!("chrome: {e}"));
    assert_eq!(n, 2 * stats.spans.len(), "one B and one E per span");

    // Event stream: parses, monotonic in file order.
    let events = read_artifact(&dir, "EVENTS_scan_defense.jsonl");
    let count = check_events_jsonl(&events).unwrap_or_else(|e| panic!("events: {e}"));
    assert!(count >= 2, "run lifecycle events present");

    // And the directory-level validator agrees with all of the above.
    validate_run_dir(&dir).unwrap_or_else(|e| panic!("validate: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An experiment that opens nested spans and panics while they are open.
struct PanicsMidSpan;

impl Experiment for PanicsMidSpan {
    fn name(&self) -> &'static str {
        "panics_mid_span"
    }

    fn describe(&self) -> &'static str {
        "opens spans, then panics (test-only)"
    }

    fn run(&self, _cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let _outer = ril_trace::span("cell", ril_trace::Phase::Cell);
        let _inner = ril_trace::span("solve", ril_trace::Phase::Solve);
        ctx.note("about to panic with two spans open");
        panic!("trace streams must survive this");
    }
}

#[test]
fn spans_balance_even_when_the_experiment_panics() {
    let dir = temp_out("panic");
    let cfg = test_config(&dir);
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(PanicsMidSpan)];
    let records = run_experiments(&exps, &cfg);
    assert!(records[0].outcome.is_err(), "the panic is reported");

    let spans = read_artifact(&dir, "SPANS_panics_mid_span.jsonl");
    let stats = check_spans_jsonl(&spans).unwrap_or_else(|e| panic!("spans: {e}"));
    // Root + cell + solve, all closed: the guards unwound cleanly.
    assert_eq!(stats.spans.len(), 3, "{:?}", stats.spans);
    let chrome = read_artifact(&dir, "TRACE_panics_mid_span.json");
    check_chrome_trace(&chrome).unwrap_or_else(|e| panic!("chrome: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An experiment whose sweep fans spans out across worker threads.
struct WideSweep;

impl Experiment for WideSweep {
    fn name(&self) -> &'static str {
        "wide_sweep"
    }

    fn describe(&self) -> &'static str {
        "multi-worker span fan-out (test-only)"
    }

    fn run(&self, cfg: &RunConfig, ctx: &RunContext) -> Result<ExperimentOutput, ExperimentError> {
        let items: Vec<usize> = (0..32).collect();
        let done = ctx.sweep(cfg.threads, &items, |_, &i| {
            let mut cell = ril_trace::span("cell", ril_trace::Phase::Cell);
            cell.record_str("label", format!("item/{i}"));
            // Hold each cell open long enough that one worker cannot
            // drain the whole queue before the others start claiming.
            std::thread::sleep(Duration::from_millis(5));
            for _ in 0..4 {
                let _s = ril_trace::span("solve", ril_trace::Phase::Solve);
                ctx.note(&format!("worker note {i}"));
            }
            i
        });
        assert_eq!(done.len(), items.len());
        Ok(ExperimentOutput::summary("swept"))
    }
}

#[test]
fn concurrent_sweep_keeps_streams_whole() {
    let dir = temp_out("sweep");
    let cfg = test_config(&dir);
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(WideSweep)];
    let records = run_experiments(&exps, &cfg);
    assert!(records[0].outcome.is_ok(), "{:?}", records[0].outcome);

    let spans = read_artifact(&dir, "SPANS_wide_sweep.jsonl");
    let stats = check_spans_jsonl(&spans).unwrap_or_else(|e| panic!("spans: {e}"));
    // 1 root + 32 cells + 128 solves, every cell parented to the root,
    // every solve parented to a cell — across 4 worker threads.
    assert_eq!(stats.spans.len(), 1 + 32 + 128);
    let root = stats.spans.iter().find(|s| s.parent == 0).unwrap();
    for cell in stats.spans.iter().filter(|s| s.name == "cell") {
        assert_eq!(cell.parent, root.id, "cells parent to the run root");
    }
    let tids: std::collections::HashSet<u64> = stats
        .spans
        .iter()
        .filter(|s| s.name == "cell")
        .map(|s| s.tid)
        .collect();
    assert!(tids.len() > 1, "sweep actually ran on multiple threads");

    let events = read_artifact(&dir, "EVENTS_wide_sweep.jsonl");
    let count = check_events_jsonl(&events).unwrap_or_else(|e| panic!("events: {e}"));
    assert!(count >= 128, "concurrent notes all landed whole");
    let _ = std::fs::remove_dir_all(&dir);
}
