//! Criterion micro-bench behind Table I: SAT-attack time as the RIL-Block
//! count and size grow (small configurations only — the big ones time out
//! by design and are covered by the `table1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ril_attacks::{run_attack, AttackConfig, AttackKind};
use ril_core::{Obfuscator, RilBlockSpec};
use ril_netlist::generators;
use std::time::Duration;

fn bench_sat_attack(c: &mut Criterion) {
    let host = generators::adder(10);
    let mut group = c.benchmark_group("sat_attack");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    for blocks in [1usize, 2, 3] {
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(blocks)
            .seed(blocks as u64)
            .obfuscate(&host)
            .expect("lock");
        group.bench_with_input(
            BenchmarkId::new("2x2_blocks", blocks),
            &locked,
            |b, locked| {
                b.iter(|| {
                    let cfg = AttackConfig {
                        timeout: Some(Duration::from_secs(20)),
                        ..AttackConfig::default()
                    };
                    let outcome = run_attack(AttackKind::Sat, locked, &cfg).expect("sim ok");
                    assert!(outcome.report.result.succeeded());
                });
            },
        );
    }
    // One larger block: 4x4 keeps runtimes bench-friendly.
    let locked = Obfuscator::new(RilBlockSpec::parse("4x4").expect("valid spec"))
        .seed(9)
        .obfuscate(&host)
        .expect("lock");
    group.bench_function("4x4_single_block", |b| {
        b.iter(|| {
            let cfg = AttackConfig {
                timeout: Some(Duration::from_secs(20)),
                ..AttackConfig::default()
            };
            let outcome = run_attack(AttackKind::Sat, &locked, &cfg).expect("sim ok");
            assert!(outcome.report.result.succeeded());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sat_attack);
criterion_main!(benches);
