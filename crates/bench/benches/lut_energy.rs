//! Criterion bench behind Table IV: per-operation cost of the circuit-level
//! MRAM LUT model (program, read, SE read) and the SRAM baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ril_mram::{measure_mram_profile, MramLut2, SramLut2};
use std::hint::black_box;

fn bench_lut_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_energy");
    group.bench_function("mram_program", |b| {
        let mut lut = MramLut2::with_defaults();
        let mut tt = 0u8;
        b.iter(|| {
            tt = (tt + 1) & 0xf;
            black_box(lut.program(black_box(tt)));
        });
    });
    group.bench_function("mram_read", |b| {
        let mut lut = MramLut2::with_defaults();
        lut.program(0b0110);
        b.iter(|| black_box(lut.read(black_box(true), black_box(false), false)));
    });
    group.bench_function("mram_read_scan_enabled", |b| {
        let mut lut = MramLut2::with_defaults();
        lut.program(0b0110);
        lut.program_se(true);
        b.iter(|| black_box(lut.read(black_box(true), black_box(false), true)));
    });
    group.bench_function("sram_read", |b| {
        let mut lut = SramLut2::new();
        lut.program(0b0110);
        b.iter(|| black_box(lut.read(black_box(true), black_box(false))));
    });
    group.bench_function("table4_profile", |b| {
        b.iter(|| black_box(measure_mram_profile()));
    });
    group.finish();
}

criterion_group!(benches, bench_lut_ops);
criterion_main!(benches);
