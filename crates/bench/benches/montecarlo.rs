//! Criterion bench behind Fig. 6: Monte-Carlo process-variation campaigns
//! at the paper's 100-instance scale and above.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ril_mram::run_monte_carlo;
use std::hint::black_box;

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo");
    for instances in [100usize, 500] {
        group.bench_with_input(
            BenchmarkId::new("and_lut", instances),
            &instances,
            |b, &n| {
                b.iter(|| {
                    let report = run_monte_carlo(black_box(n), 0b1000, 7);
                    assert_eq!(report.write_errors, 0);
                    black_box(report)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monte_carlo);
criterion_main!(benches);
