//! Criterion bench behind the Section IV solver claim: the CaDiCaL-class
//! configuration (VSIDS + phase saving + minimization + restarts) vs a
//! weakened DPLL-era configuration — the paper reports ~1.8× between
//! solver generations. Measured on search-bound instances where heuristics
//! matter: random 3-SAT at and above the satisfiability phase transition
//! (trivially-propagating miters cannot separate the configs; pigeonhole
//! formulas mislead — static-order DPLL refutes them by accident of
//! symmetry).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_sat::{Cnf, Lit, Solver, SolverConfig};
use std::hint::black_box;

/// Random 3-SAT at clause/variable ratio `ratio`.
fn random_3sat(n: usize, ratio: f64, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (n as f64 * ratio) as usize;
    let mut cnf = Cnf::new();
    cnf.new_vars(n);
    for _ in 0..m {
        let mut lits: Vec<Lit> = Vec::with_capacity(3);
        while lits.len() < 3 {
            let l = Lit::new(rng.gen_range(0..n), rng.gen());
            if !lits.iter().any(|&x| x.var() == l.var()) {
                lits.push(l);
            }
        }
        cnf.add_clause(lits);
    }
    cnf
}

fn bench_solver_ablation(c: &mut Criterion) {
    // At the transition (likely SAT) and safely above it (likely UNSAT);
    // the reference outcome is computed once with the full configuration.
    let at_transition = random_3sat(120, 4.26, 42);
    let above_transition = random_3sat(100, 5.0, 7);
    let expected = |cnf: &Cnf| Solver::from_cnf(cnf).solve();
    let exp_at = expected(&at_transition);
    let exp_above = expected(&above_transition);
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(10);
    let configs: [(&str, SolverConfig); 4] = [
        ("full_cadical_class", SolverConfig::default()),
        ("weakened_dpll_class", SolverConfig::weakened()),
        (
            "no_restarts",
            SolverConfig {
                restarts: false,
                ..SolverConfig::default()
            },
        ),
        (
            "no_minimization",
            SolverConfig {
                clause_minimization: false,
                ..SolverConfig::default()
            },
        ),
    ];
    for (instance_name, cnf, expect) in [
        ("rand3sat_n120_r4.26", &at_transition, exp_at),
        ("rand3sat_n100_r5.0", &above_transition, exp_above),
    ] {
        for (name, config) in &configs {
            group.bench_with_input(BenchmarkId::new(name, instance_name), cnf, |b, cnf| {
                b.iter(|| {
                    let mut solver = Solver::from_cnf_with_config(cnf, config.clone());
                    let outcome = solver.solve();
                    assert_eq!(outcome, expect);
                    black_box(solver.stats())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solver_ablation);
criterion_main!(benches);
