//! Dynamic morphing: runtime re-keying that preserves functionality.
//!
//! Because RIL-Blocks are built from MRAM, the key can be *rewritten in the
//! field*. A morph changes the stored key while keeping the chip's I/O
//! behaviour identical, so any partial key knowledge an attacker
//! accumulated (power traces, probing, partial SAT progress) goes stale.
//! Three coordinated moves are used:
//!
//! 1. **Pair swap** — flip a last-stage switch box of the input banyan
//!    (it joins exactly the two lines feeding one LUT) and swap the LUT's
//!    truth-table halves to compensate.
//! 2. **Output re-route** (`N×N×N` blocks) — pick a different output-banyan
//!    key that still delivers each LUT's rail to its original port,
//!    complementing the LUT table when the complement rail is used.
//! 3. **SE re-roll** — re-randomize the Scan-Enable keys (they only shape
//!    scan-mode responses, never functional outputs).

use crate::banyan::BanyanNetwork;
use crate::block::BlockMeta;
use crate::key::KeyStore;
use crate::lut::{complement_lut, swap_lut_inputs};
use crate::obfuscate::LockedCircuit;
use rand::Rng;
use ril_netlist::Netlist;

/// The *net* effect of a morph on the stored key: which key-bit indices
/// (netlist key-input order) hold a different value than before.
///
/// This differs from [`MorphReport::bits_changed`], which counts bit
/// *transitions* across the morph's moves — a bit toggled twice (say by a
/// pair swap and then a table complement) contributes two transitions but
/// does not appear in the delta. The delta is what downstream consumers
/// care about: combined with the netlist's cached key analysis
/// ([`ril_netlist::KeyAnalysis`]) it names exactly the output cones whose
/// logic changed, so post-morph formal checks and attack re-encodings can
/// touch only those.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MorphDelta {
    changed_bits: Vec<usize>,
}

impl MorphDelta {
    /// The delta between two key snapshots of equal width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn between(before: &[bool], after: &[bool]) -> MorphDelta {
        assert_eq!(before.len(), after.len(), "key width mismatch");
        MorphDelta {
            changed_bits: before
                .iter()
                .zip(after)
                .enumerate()
                .filter(|(_, (b, a))| b != a)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// A delta from explicit bit indices (e.g. received off the wire from
    /// a morph server). Indices are sorted and deduplicated.
    pub fn from_changed_bits(bits: impl IntoIterator<Item = usize>) -> MorphDelta {
        let mut changed_bits: Vec<usize> = bits.into_iter().collect();
        changed_bits.sort_unstable();
        changed_bits.dedup();
        MorphDelta { changed_bits }
    }

    /// Changed key-bit indices, sorted ascending.
    pub fn changed_bits(&self) -> &[usize] {
        &self.changed_bits
    }

    /// Number of key bits whose value changed (Hamming distance).
    pub fn len(&self) -> usize {
        self.changed_bits.len()
    }

    /// Whether the morph was a no-op on the key.
    pub fn is_empty(&self) -> bool {
        self.changed_bits.is_empty()
    }

    /// Folds another delta in (set union of changed bits) — accumulates
    /// the dirty set across several morph rounds between re-checks.
    pub fn merge(&mut self, other: &MorphDelta) {
        self.changed_bits.extend_from_slice(&other.changed_bits);
        self.changed_bits.sort_unstable();
        self.changed_bits.dedup();
    }

    /// Output indices of `nl` (its [`Netlist::outputs`] order) whose fan-in
    /// cone reads at least one changed key bit — the outputs a post-morph
    /// check must revisit. Uses the netlist's cached key analysis.
    pub fn dirty_outputs(&self, nl: &Netlist) -> Vec<usize> {
        ril_netlist::cone::dirty_outputs(nl, &self.changed_bits)
    }
}

/// What a morph operation changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorphReport {
    /// Input-banyan pair swaps applied (with truth-table compensation).
    pub pair_swaps: usize,
    /// Whether the output banyan was re-keyed.
    pub output_rerouted: usize,
    /// LUT tables complemented during output re-routing.
    pub complemented: usize,
    /// Scan-Enable keys re-rolled.
    pub se_rerolled: usize,
    /// Total key bits whose value changed.
    pub bits_changed: usize,
}

impl MorphReport {
    fn merge(&mut self, other: MorphReport) {
        self.pair_swaps += other.pair_swaps;
        self.output_rerouted += other.output_rerouted;
        self.complemented += other.complemented;
        self.se_rerolled += other.se_rerolled;
        self.bits_changed += other.bits_changed;
    }
}

fn read_tt(keys: &KeyStore, meta: &BlockMeta, lut: usize) -> u8 {
    let mut tt = 0u8;
    for bit in 0..4 {
        if keys.bits()[meta.lut_key(lut, bit)] {
            tt |= 1 << bit;
        }
    }
    tt
}

fn write_tt(keys: &mut KeyStore, meta: &BlockMeta, lut: usize, tt: u8) -> usize {
    let mut changed = 0;
    for bit in 0..4 {
        let idx = meta.lut_key(lut, bit);
        let v = (tt >> bit) & 1 == 1;
        if keys.bits()[idx] != v {
            keys.set_bit(idx, v);
            changed += 1;
        }
    }
    changed
}

/// Morphs one block in place (mutates `locked.keys`). Functionality under
/// the new key is preserved by construction; tests verify it by simulation.
pub fn morph_block<R: Rng>(locked: &mut LockedCircuit, block: usize, rng: &mut R) -> MorphReport {
    let meta = locked.block_meta[block].clone();
    let banyan = BanyanNetwork::new(meta.spec.width);
    let mut report = MorphReport::default();

    // 1. Random pair swaps through the last input-banyan stage.
    for lut in 0..meta.spec.luts() {
        if rng.gen() {
            let key_idx = meta.first_key + banyan.last_stage_key_for_pair(lut);
            let old = locked.keys.bits()[key_idx];
            locked.keys.set_bit(key_idx, !old);
            let tt = read_tt(&locked.keys, &meta, lut);
            report.bits_changed += 1 + write_tt(&mut locked.keys, &meta, lut, swap_lut_inputs(tt));
            report.pair_swaps += 1;
        }
    }

    // 2. Output-banyan re-route (double-routing blocks only).
    if meta.spec.double_routing {
        let out_keys = meta.out_routing_keys();
        let current: Vec<bool> = out_keys.iter().map(|&i| locked.keys.bits()[i]).collect();
        // A key K2 is valid iff for every LUT slot j, its true rail (port
        // 2j) or complement rail (port 2j+1) routes to out_ports[j].
        let valid = |keys: &[bool]| -> Option<Vec<bool>> {
            let perm = banyan.route(keys);
            let mut complement = Vec::with_capacity(meta.spec.luts());
            for (j, &port) in meta.out_ports.iter().enumerate() {
                if perm[2 * j] == port {
                    complement.push(false);
                } else if perm[2 * j + 1] == port {
                    complement.push(true);
                } else {
                    return None;
                }
            }
            Some(complement)
        };
        let nk = out_keys.len();
        let mut candidates: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        if nk <= 16 {
            for mask in 0u64..(1 << nk) {
                let cand: Vec<bool> = (0..nk).map(|i| (mask >> i) & 1 == 1).collect();
                if cand == current {
                    continue;
                }
                if let Some(comp) = valid(&cand) {
                    candidates.push((cand, comp));
                }
            }
        } else {
            for _ in 0..4096 {
                let cand: Vec<bool> = (0..nk).map(|_| rng.gen()).collect();
                if cand == current {
                    continue;
                }
                if let Some(comp) = valid(&cand) {
                    candidates.push((cand, comp));
                }
            }
        }
        if !candidates.is_empty() {
            let (new_k2, comp) = candidates[rng.gen_range(0..candidates.len())].clone();
            let old_comp = valid(&current).expect("current key is valid");
            for (i, (&idx, &v)) in out_keys.iter().zip(&new_k2).enumerate() {
                let _ = i;
                if locked.keys.bits()[idx] != v {
                    locked.keys.set_bit(idx, v);
                    report.bits_changed += 1;
                }
            }
            for (j, (&new_c, &old_c)) in comp.iter().zip(&old_comp).enumerate() {
                if new_c != old_c {
                    let tt = read_tt(&locked.keys, &meta, j);
                    report.bits_changed += write_tt(&mut locked.keys, &meta, j, complement_lut(tt));
                    report.complemented += 1;
                }
            }
            report.output_rerouted = 1;
        }
    }

    // 3. Re-roll SE keys.
    if meta.spec.scan_obfuscation {
        for lut in 0..meta.spec.luts() {
            let idx = meta.se_key(lut);
            let new: bool = rng.gen();
            if locked.keys.bits()[idx] != new {
                locked.keys.set_bit(idx, new);
                report.bits_changed += 1;
            }
            report.se_rerolled += 1;
        }
    }
    report
}

/// Morphs every block of the design. Returns the merged report.
pub fn morph_all<R: Rng>(locked: &mut LockedCircuit, rng: &mut R) -> MorphReport {
    morph_all_delta(locked, rng).0
}

/// Like [`morph_all`] but also returns the [`MorphDelta`] — the net
/// before/after key diff that names the dirty output cones for
/// incremental re-verification and generation-aware attack re-encoding.
pub fn morph_all_delta<R: Rng>(
    locked: &mut LockedCircuit,
    rng: &mut R,
) -> (MorphReport, MorphDelta) {
    let before = locked.keys.bits().to_vec();
    let mut report = MorphReport::default();
    for b in 0..locked.block_meta.len() {
        report.merge(morph_block(locked, b, rng));
    }
    let delta = MorphDelta::between(&before, locked.keys.bits());
    (report, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RilBlockSpec;
    use crate::obfuscate::Obfuscator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_netlist::generators;

    fn morph_roundtrip(spec: RilBlockSpec, blocks: usize, seed: u64) {
        let host = generators::multiplier(6);
        let mut locked = Obfuscator::new(spec)
            .blocks(blocks)
            .seed(seed)
            .obfuscate(&host)
            .unwrap();
        assert!(locked.verify(16).unwrap());
        let before = locked.keys.bits().to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let mut total_changed = 0;
        for round in 0..5 {
            let report = morph_all(&mut locked, &mut rng);
            total_changed += report.bits_changed;
            assert!(
                locked.verify(16).unwrap(),
                "{spec} morph round {round} broke equivalence"
            );
        }
        assert!(total_changed > 0, "{spec}: morphing never changed the key");
        assert_ne!(locked.keys.bits(), before.as_slice());
    }

    #[test]
    fn morph_preserves_function_2x2() {
        morph_roundtrip(RilBlockSpec::size_2x2(), 3, 1);
    }

    #[test]
    fn morph_preserves_function_8x8() {
        morph_roundtrip(RilBlockSpec::size_8x8(), 1, 2);
    }

    #[test]
    fn morph_preserves_function_8x8x8() {
        morph_roundtrip(RilBlockSpec::size_8x8x8(), 1, 3);
    }

    #[test]
    fn morph_preserves_function_with_scan() {
        morph_roundtrip(RilBlockSpec::size_8x8x8().with_scan(true), 1, 4);
    }

    #[test]
    fn morph_produces_distinct_equivalent_keys() {
        // Collect several morphs; all must be pairwise-distinct keys that
        // all unlock the circuit — the "many correct keys over time"
        // property of dynamic obfuscation.
        let host = generators::multiplier(6);
        let mut locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .seed(9)
            .obfuscate(&host)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut seen = std::collections::HashSet::new();
        seen.insert(locked.keys.bits().to_vec());
        for _ in 0..6 {
            morph_all(&mut locked, &mut rng);
            assert!(locked.verify(8).unwrap());
            seen.insert(locked.keys.bits().to_vec());
        }
        assert!(seen.len() >= 3, "expected several distinct equivalent keys");
    }

    #[test]
    fn delta_is_the_net_key_diff_and_names_dirty_cones() {
        let host = generators::multiplier(6);
        let mut locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(3)
            .seed(11)
            .obfuscate(&host)
            .unwrap();
        let before = locked.keys.bits().to_vec();
        let mut rng = StdRng::seed_from_u64(42);
        let (report, delta) = morph_all_delta(&mut locked, &mut rng);
        let expect: Vec<usize> = before
            .iter()
            .zip(locked.keys.bits())
            .enumerate()
            .filter(|(_, (b, a))| b != a)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(delta.changed_bits(), expect.as_slice());
        assert_eq!(delta.len(), expect.len());
        // Transitions can only over-count the net diff (double toggles).
        assert!(delta.len() <= report.bits_changed);
        // Dirty outputs are exactly those whose key support intersects the
        // changed bits, per the netlist's cached key analysis.
        let keys = locked.netlist.key_analysis();
        let dirty = delta.dirty_outputs(&locked.netlist);
        for out in 0..locked.netlist.outputs().len() {
            let touched = keys
                .output_support(out)
                .iter()
                .any(|b| delta.changed_bits().contains(b));
            assert_eq!(dirty.contains(&out), touched, "output {out}");
        }
    }

    #[test]
    fn delta_merge_unions_changed_bits() {
        let mut a = MorphDelta::between(&[false, false, true], &[true, false, true]);
        let b = MorphDelta::between(&[false, false, true], &[true, false, false]);
        a.merge(&b);
        assert_eq!(a.changed_bits(), &[0, 2]);
        assert!(!a.is_empty());
        assert!(MorphDelta::default().is_empty());
    }

    #[test]
    fn output_reroute_happens_for_double_routing() {
        let host = generators::multiplier(6);
        let mut locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let mut rerouted = 0;
        for _ in 0..5 {
            let r = morph_block(&mut locked, 0, &mut rng);
            rerouted += r.output_rerouted;
            assert!(locked.verify(8).unwrap());
        }
        assert!(rerouted > 0, "output banyan was never re-keyed");
    }
}
