//! # ril-core — RIL-Blocks: Reconfigurable Interconnect and Logic Blocks
//!
//! The paper's primary contribution: dynamic hardware obfuscation built
//! from MRAM-based 2-input LUTs ([`lut`]), logarithmic banyan routing
//! networks ([`banyan`]), and their composition into `N×N` / `N×N×N`
//! RIL-Blocks ([`block`]) inserted into gate-level netlists
//! ([`insertion`], [`obfuscate`]). Scan-Enable output obfuscation is part
//! of the block construction; dynamic morphing lives in [`morph`];
//! security/overhead metrics in [`metrics`]; and published baseline locks
//! (XOR, Anti-SAT, SFLL) in [`baselines`].
//!
//! ## Quickstart
//!
//! ```
//! use ril_core::{Obfuscator, RilBlockSpec};
//! use ril_netlist::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let host = generators::benchmark("c7552").expect("known benchmark");
//! let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
//!     .blocks(3)
//!     .scan_obfuscation(true)
//!     .seed(1)
//!     .obfuscate(&host)?;
//! assert!(locked.verify(8)?);
//! println!("{} key bits, {} extra gates", locked.key_width(), locked.gate_overhead());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod banyan;
pub mod baselines;
pub mod block;
pub mod insertion;
pub mod key;
pub mod lut;
pub mod metrics;
pub mod morph;
pub mod obfuscate;

pub use banyan::BanyanNetwork;
pub use block::{BlockMeta, ObfuscateError, RilBlockSpec};
pub use insertion::InsertionPolicy;
pub use key::{KeyBitKind, KeyStore};
pub use metrics::{output_corruptibility, ril_overhead, OverheadEstimate};
pub use morph::{morph_all, morph_all_delta, morph_block, MorphDelta, MorphReport};
pub use obfuscate::{LockedCircuit, MorphVerifier, Obfuscator, SE_PIN};
