//! Baseline logic-locking schemes for the Table V comparison.
//!
//! Three published families, each locked onto the same [`LockedCircuit`]
//! interface so the attack suite runs unchanged:
//!
//! * [`xor_lock`] — EPIC-style random XOR/XNOR key gates: high
//!   corruptibility, but falls to the SAT attack in few iterations.
//! * [`antisat_lock`] — Anti-SAT point function: `flip = g(x ⊕ k1) ∧
//!   !g(x ⊕ k2)` forces exponentially many DIPs but corrupts almost
//!   nothing.
//! * [`sfll_lock`] — SFLL-HD0-style stripped functionality: one protected
//!   input pattern is flipped in the stripped circuit and restored by a
//!   key comparator.

use crate::block::RilBlockSpec;
use crate::key::{KeyBitKind, KeyStore};
use crate::obfuscate::LockedCircuit;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ril_netlist::{GateKind, NetId, Netlist, NetlistError};

fn baseline_spec() -> RilBlockSpec {
    // Marker spec for baseline locks (no RIL blocks present).
    RilBlockSpec {
        width: 2,
        double_routing: false,
        scan_obfuscation: false,
    }
}

fn wrap(original: &Netlist, locked: Netlist, keys: KeyStore) -> LockedCircuit {
    LockedCircuit {
        original: original.clone(),
        netlist: locked,
        keys,
        spec: baseline_spec(),
        blocks: 0,
        block_meta: Vec::new(),
    }
}

/// EPIC-style XOR/XNOR locking: `key_bits` random internal nets each get an
/// XOR (correct key bit 0) or XNOR (correct key bit 1) key gate spliced in.
///
/// # Errors
///
/// Propagates netlist errors; fails if the host has fewer nets than keys.
pub fn xor_lock(
    original: &Netlist,
    key_bits: usize,
    seed: u64,
) -> Result<LockedCircuit, NetlistError> {
    let mut nl = original.clone();
    nl.set_name(format!("{}_xorlock", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    // Lockable sites: outputs of gates (splice between driver and fanout).
    let mut sites: Vec<NetId> = nl
        .gates()
        .filter(|(_, g)| g.kind().is_combinational())
        .map(|(_, g)| g.output())
        .collect();
    sites.shuffle(&mut rng);
    for site in sites.into_iter().take(key_bits) {
        let invert: bool = rng.gen();
        let key_net = nl.add_key_input(format!("keyinput{}", keys.len()))?;
        keys.push(KeyBitKind::Baseline, invert);
        // Splice: consumers of `site` now read the key gate's output.
        let spliced = nl.fresh_net("xlk");
        nl.redirect_consumers(site, spliced);
        let kind = if invert {
            GateKind::Xnor
        } else {
            GateKind::Xor
        };
        nl.add_gate(kind, &[site, key_net], spliced)?;
    }
    Ok(wrap(original, nl, keys))
}

/// Anti-SAT locking over `n` selected primary inputs: the flip signal
/// `g(x ⊕ k1) ∧ !g(x ⊕ k2)` (with `g` = AND) XORs one primary output.
/// Correct keys satisfy `k1 = k2` (we emit the all-equal random pair).
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if the host has fewer than `n` data inputs or no outputs.
pub fn antisat_lock(
    original: &Netlist,
    n: usize,
    seed: u64,
) -> Result<LockedCircuit, NetlistError> {
    let mut nl = original.clone();
    nl.set_name(format!("{}_antisat", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    let data = nl.data_inputs();
    assert!(data.len() >= n, "host too small for {n}-bit Anti-SAT");
    let xs: Vec<NetId> = data[..n].to_vec();

    let secret: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut k1_nets = Vec::new();
    let mut k2_nets = Vec::new();
    for half in 0..2 {
        for &s in &secret {
            let net = nl.add_key_input(format!("keyinput{}", keys.len()))?;
            keys.push(KeyBitKind::Baseline, s);
            if half == 0 {
                k1_nets.push(net);
            } else {
                k2_nets.push(net);
            }
        }
    }
    // g = AND(x ⊕ k1), gbar = NAND(x ⊕ k2); flip = g ∧ gbar.
    let mut g_in = Vec::new();
    let mut gbar_in = Vec::new();
    for i in 0..n {
        g_in.push(nl.add_gate_fresh(GateKind::Xor, &[xs[i], k1_nets[i]], "as")?);
        gbar_in.push(nl.add_gate_fresh(GateKind::Xor, &[xs[i], k2_nets[i]], "as")?);
    }
    let g = nl.add_gate_fresh(GateKind::And, &g_in, "asg")?;
    let gbar = nl.add_gate_fresh(GateKind::Nand, &gbar_in, "asgb")?;
    let flip = nl.add_gate_fresh(GateKind::And, &[g, gbar], "asf")?;
    // XOR the flip into the first primary output.
    let target = nl.outputs()[0];
    let spliced = nl.fresh_net("aso");
    nl.redirect_consumers(target, spliced);
    nl.add_gate(GateKind::Xor, &[target, flip], spliced)?;
    Ok(wrap(original, nl, keys))
}

/// SFLL-HD0-style locking over `n` selected primary inputs: the stripped
/// circuit inverts one protected pattern; a key comparator restores it.
/// Correct key = the protected pattern itself.
///
/// # Errors
///
/// Propagates netlist errors.
///
/// # Panics
///
/// Panics if the host has fewer than `n` data inputs or no outputs.
pub fn sfll_lock(original: &Netlist, n: usize, seed: u64) -> Result<LockedCircuit, NetlistError> {
    let mut nl = original.clone();
    nl.set_name(format!("{}_sfll", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    let data = nl.data_inputs();
    assert!(data.len() >= n, "host too small for {n}-bit SFLL");
    let xs: Vec<NetId> = data[..n].to_vec();
    let pattern: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

    // Stripped-functionality flip: XNOR-compare x against the hard-coded
    // protected pattern.
    let mut strip_in = Vec::new();
    for (i, &p) in pattern.iter().enumerate() {
        let c = ril_netlist::generators::const_net(&mut nl, p);
        strip_in.push(nl.add_gate_fresh(GateKind::Xnor, &[xs[i], c], "sfs")?);
    }
    let strip = nl.add_gate_fresh(GateKind::And, &strip_in, "sfstrip")?;

    // Restore unit: XNOR-compare x against the key.
    let mut restore_in = Vec::new();
    for (i, &p) in pattern.iter().enumerate() {
        let knet = nl.add_key_input(format!("keyinput{}", keys.len()))?;
        keys.push(KeyBitKind::Baseline, p);
        restore_in.push(nl.add_gate_fresh(GateKind::Xnor, &[xs[i], knet], "sfr")?);
    }
    let restore = nl.add_gate_fresh(GateKind::And, &restore_in, "sfrest")?;

    // y = y_orig ⊕ strip ⊕ restore — correct key cancels the strip flip.
    let target = nl.outputs()[0];
    let spliced = nl.fresh_net("sfo");
    nl.redirect_consumers(target, spliced);
    let tmp = nl.add_gate_fresh(GateKind::Xor, &[target, strip], "sft")?;
    nl.add_gate(GateKind::Xor, &[tmp, restore], spliced)?;
    Ok(wrap(original, nl, keys))
}

/// FullLock-style routing obfuscation (the paper's ref \[10\] baseline):
/// `width` structurally independent wires are cut and routed through one
/// `width × width` banyan whose switch boxes carry **two key bits, three
/// MUXes and an inverter** each (see
/// [`crate::banyan::BanyanNetwork::materialize_fulllock`]). The correct
/// key routes the identity with no inversions (all zeros).
///
/// The paper's Section III-A critique is measurable here: a wrong
/// inversion in one box can be undone by a later box, so FullLock carries
/// *more functionally equivalent keys per key bit* than the RIL switch box
/// (see [`crate::metrics::count_equivalent_keys`] and the
/// `key_redundancy` bench).
///
/// # Errors
///
/// Returns an error when the host lacks `width` independent wires.
pub fn fulllock_lock(
    original: &Netlist,
    width: usize,
    seed: u64,
) -> Result<LockedCircuit, crate::block::ObfuscateError> {
    routing_lock(original, width, seed, SwitchBoxStyle::FullLock)
}

/// Routing-only locking with RIL switch boxes (2 MUXes, one key bit per
/// box) — the apples-to-apples counterpart of [`fulllock_lock`] for the
/// switch-box comparison of Section III-A.
///
/// # Errors
///
/// Returns an error when the host lacks `width` independent wires.
pub fn ril_routing_lock(
    original: &Netlist,
    width: usize,
    seed: u64,
) -> Result<LockedCircuit, crate::block::ObfuscateError> {
    routing_lock(original, width, seed, SwitchBoxStyle::Ril)
}

/// Switch-box flavour for [`routing_lock`]-built baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SwitchBoxStyle {
    Ril,
    FullLock,
}

fn routing_lock(
    original: &Netlist,
    width: usize,
    seed: u64,
    style: SwitchBoxStyle,
) -> Result<LockedCircuit, crate::block::ObfuscateError> {
    use crate::banyan::BanyanNetwork;
    use crate::insertion::{select_gates, InsertionPolicy};

    assert!(width.is_power_of_two() && width >= 2, "width must be 2^k");
    let mut nl = original.clone();
    nl.set_name(format!("{}_route{width}_{style:?}", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    // Independent wires = outputs of structurally independent gates.
    let gates = select_gates(&nl, width, InsertionPolicy::Random, &mut rng)?;
    let wires: Vec<NetId> = gates.iter().map(|&g| nl.gate(g).output()).collect();

    // Detach consumers onto stubs that the network will re-drive.
    let stubs: Vec<NetId> = wires
        .iter()
        .map(|&w| {
            let s = nl.fresh_net("flk");
            nl.redirect_consumers(w, s);
            s
        })
        .collect();

    let network = BanyanNetwork::new(width);
    let n_keys = match style {
        SwitchBoxStyle::Ril => network.num_keys(),
        SwitchBoxStyle::FullLock => 2 * network.num_keys(),
    };
    let mut key_nets = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        let net = nl
            .add_key_input(format!("keyinput{}", keys.len()))
            .map_err(crate::block::ObfuscateError::Netlist)?;
        keys.push(KeyBitKind::Baseline, false); // identity route, no inversion
        key_nets.push(net);
    }
    let lines = match style {
        SwitchBoxStyle::Ril => network.materialize(&mut nl, &wires, &key_nets),
        SwitchBoxStyle::FullLock => network.materialize_fulllock(&mut nl, &wires, &key_nets),
    }
    .map_err(crate::block::ObfuscateError::Netlist)?;
    for (line, stub) in lines.into_iter().zip(stubs) {
        nl.add_gate(GateKind::Buf, &[line], stub)
            .map_err(crate::block::ObfuscateError::Netlist)?;
    }
    Ok(wrap(original, nl, keys))
}

/// Plain LUT-based locking (the custom-LUT obfuscation of the paper's
/// refs \[8\]/\[12\], and its Section IV-B "increase the LUT size" argument):
/// `count` gates are each replaced by an `m`-input key-programmable LUT
/// whose first two inputs are the gate's fan-ins and whose remaining
/// `m − 2` inputs are random key-independent nets (decoy support). The
/// correct key programs the original function, ignoring the decoys —
/// `2^m` key bits per gate.
///
/// # Errors
///
/// Propagates netlist errors; fails if the host lacks suitable gates or
/// decoy nets.
///
/// # Panics
///
/// Panics if `m < 2`.
pub fn lutm_lock(
    original: &Netlist,
    count: usize,
    m: usize,
    seed: u64,
) -> Result<LockedCircuit, NetlistError> {
    assert!(m >= 2, "LUT size must be at least 2");
    let mut nl = original.clone();
    nl.set_name(format!("{}_lut{m}lock", original.name()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys = KeyStore::new();
    let mut victims: Vec<ril_netlist::GateId> = nl
        .gates()
        .filter(|(_, g)| {
            g.inputs().len() == 2 && ril_netlist::gate::truth_table_of(g.kind()).is_some()
        })
        .map(|(id, _)| id)
        .collect();
    victims.shuffle(&mut rng);
    victims.truncate(count);
    for gid in victims {
        let gate = nl.gate(gid);
        let (a, b, out) = (gate.inputs()[0], gate.inputs()[1], gate.output());
        let tt2 = ril_netlist::gate::truth_table_of(gate.kind()).expect("filtered");
        // Decoy inputs: any net outside the gate's fan-out cone.
        let forbidden = ril_netlist::cone::fanout_cone(&nl, out);
        let forbidden_nets: std::collections::HashSet<NetId> = forbidden
            .iter()
            .map(|&g| nl.gate(g).output())
            .chain(std::iter::once(out))
            .collect();
        let mut decoy_pool: Vec<NetId> = nl
            .nets()
            .filter(|(id, net)| {
                !forbidden_nets.contains(id)
                    && !nl.is_key_input(*id)
                    && (net.driver().is_some() || nl.is_input(*id))
            })
            .map(|(id, _)| id)
            .collect();
        decoy_pool.shuffle(&mut rng);
        let decoys: Vec<NetId> = decoy_pool.into_iter().take(m - 2).collect();
        if decoys.len() < m - 2 {
            return Err(NetlistError::InvalidId("not enough decoy nets".into()));
        }
        nl.remove_gate(gid);
        let mut inputs = vec![a, b];
        inputs.extend(decoys);
        let mut key_nets = Vec::with_capacity(1 << m);
        for minterm in 0..(1usize << m) {
            // Correct function ignores the decoy inputs.
            let value = (tt2 >> (minterm & 0b11)) & 1 == 1;
            let net = nl.add_key_input(format!("keyinput{}", keys.len()))?;
            keys.push(KeyBitKind::Baseline, value);
            key_nets.push(net);
        }
        let lut_out = crate::lut::materialize_lutm(&mut nl, &inputs, &key_nets)?;
        nl.add_gate(GateKind::Buf, &[lut_out], out)?;
    }
    Ok(wrap(original, nl, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::output_corruptibility;
    use ril_netlist::generators;

    #[test]
    fn xor_lock_correct_key_unlocks() {
        let host = generators::adder(8);
        let locked = xor_lock(&host, 16, 1).unwrap();
        locked.netlist.validate().unwrap();
        assert_eq!(locked.key_width(), 16);
        assert!(locked.verify(16).unwrap());
        // Flipping any key bit breaks it (XOR locks corrupt heavily).
        let mut wrong = locked.keys.bits().to_vec();
        wrong[0] = !wrong[0];
        assert!(!locked.equivalent_under_key(&wrong, 16).unwrap());
    }

    #[test]
    fn antisat_correct_key_unlocks() {
        let host = generators::adder(8);
        let locked = antisat_lock(&host, 8, 2).unwrap();
        locked.netlist.validate().unwrap();
        assert_eq!(locked.key_width(), 16);
        assert!(locked.verify(32).unwrap());
    }

    #[test]
    fn antisat_equal_halves_are_also_correct() {
        // Any key with k1 == k2 makes flip ≡ 0: Anti-SAT's many-correct-keys
        // property.
        let host = generators::adder(8);
        let locked = antisat_lock(&host, 6, 3).unwrap();
        let mut key = vec![false; 12];
        for i in 0..6 {
            key[i] = i % 2 == 0;
            key[i + 6] = i % 2 == 0;
        }
        assert!(locked.equivalent_under_key(&key, 32).unwrap());
    }

    #[test]
    fn sfll_correct_key_unlocks_and_wrong_key_barely_corrupts() {
        let host = generators::adder(8);
        let locked = sfll_lock(&host, 8, 4).unwrap();
        locked.netlist.validate().unwrap();
        assert!(locked.verify(32).unwrap());
        // One-point function ⇒ tiny corruption under wrong keys.
        let mut rng = StdRng::seed_from_u64(5);
        let c = output_corruptibility(&locked, 4, 8, &mut rng).unwrap();
        assert!(c < 0.01, "SFLL corruption should be tiny, got {c}");
    }

    #[test]
    fn xor_lock_corrupts_much_more_than_point_functions() {
        let host = generators::adder(8);
        let xl = xor_lock(&host, 16, 6).unwrap();
        let sf = sfll_lock(&host, 8, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let cx = output_corruptibility(&xl, 4, 8, &mut rng).unwrap();
        let cs = output_corruptibility(&sf, 4, 8, &mut rng).unwrap();
        assert!(cx > 10.0 * cs, "xor {cx} vs sfll {cs}");
    }

    #[test]
    fn lutm_lock_preserves_function_for_all_sizes() {
        let host = generators::adder(8);
        for m in 2..=5 {
            let locked = lutm_lock(&host, 3, m, 10 + m as u64).unwrap();
            locked.netlist.validate().unwrap();
            assert_eq!(locked.key_width(), 3 * (1 << m), "m={m}");
            assert!(locked.verify(16).unwrap(), "m={m}");
        }
    }

    #[test]
    fn lutm_lock_wrong_key_corrupts() {
        let host = generators::adder(8);
        let locked = lutm_lock(&host, 4, 3, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let c = output_corruptibility(&locked, 8, 4, &mut rng).unwrap();
        assert!(c > 0.01, "corruption {c}");
    }

    #[test]
    fn wrong_antisat_key_flips_one_point_only() {
        let host = generators::adder(8);
        let locked = antisat_lock(&host, 8, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let c = output_corruptibility(&locked, 4, 8, &mut rng).unwrap();
        assert!(c < 0.02, "Anti-SAT corruption should be tiny, got {c}");
    }
}
