//! RIL-Block construction: routing networks + key-programmable LUTs.
//!
//! The block micro-architecture follows DESIGN.md §6: an `N×N` block
//! absorbs `N/2` selected two-input gates behind an input banyan; the
//! `N×N×N` variant adds an output banyan over the true/complement rails of
//! every LUT output, so the position *and polarity* of each block output is
//! key-dependent. All key material is emitted as `KEYINPUT` nets of the
//! locked netlist and recorded in a [`KeyStore`].

use crate::banyan::BanyanNetwork;
use crate::key::{KeyBitKind, KeyStore};
use crate::lut::{materialize_lut2, swap_lut_inputs};
use rand::Rng;
use ril_netlist::gate::truth_table_of;
use ril_netlist::{GateId, GateKind, NetId, Netlist, NetlistError};
use std::error::Error;
use std::fmt;

/// Shape of one RIL-Block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RilBlockSpec {
    /// Routing-network width `N` (power of two ≥ 2). The block absorbs
    /// `N/2` gates.
    pub width: usize,
    /// `true` for the `N×N×N` variant (output-side banyan).
    pub double_routing: bool,
    /// Add the per-LUT Scan-Enable obfuscation stage.
    pub scan_obfuscation: bool,
}

impl RilBlockSpec {
    /// The paper's `2×2` block: one switch box, one LUT.
    pub fn size_2x2() -> RilBlockSpec {
        RilBlockSpec {
            width: 2,
            double_routing: false,
            scan_obfuscation: false,
        }
    }

    /// The paper's `8×8` block.
    pub fn size_8x8() -> RilBlockSpec {
        RilBlockSpec {
            width: 8,
            double_routing: false,
            scan_obfuscation: false,
        }
    }

    /// The paper's `8×8×8` block.
    pub fn size_8x8x8() -> RilBlockSpec {
        RilBlockSpec {
            width: 8,
            double_routing: true,
            scan_obfuscation: false,
        }
    }

    /// Parses a spec from the paper's notation: `"2x2"`, `"8x8"`,
    /// `"8x8x8"`, also `"4x4"`, `"16x16x16"`, …
    pub fn parse(s: &str) -> Option<RilBlockSpec> {
        let parts: Vec<&str> = s.split(['x', 'X', '×']).collect();
        if parts.len() < 2 || parts.len() > 3 {
            return None;
        }
        let width: usize = parts[0].parse().ok()?;
        if !width.is_power_of_two() || width < 2 {
            return None;
        }
        if parts.iter().any(|p| p.parse::<usize>() != Ok(width)) {
            return None;
        }
        Some(RilBlockSpec {
            width,
            double_routing: parts.len() == 3,
            scan_obfuscation: false,
        })
    }

    /// Enables/disables the Scan-Enable stage (builder style).
    pub fn with_scan(mut self, on: bool) -> RilBlockSpec {
        self.scan_obfuscation = on;
        self
    }

    /// Number of 2-input LUTs (= gates absorbed) per block.
    pub fn luts(&self) -> usize {
        (self.width / 2).max(1)
    }

    /// A canonical, collision-free textual form for content-addressed
    /// cache keys: the [`fmt::Display`] shape plus the Scan-Enable flag
    /// (`"8x8x8+se"`). `Display` alone matches the paper's notation and
    /// drops the scan flag, which changes the key logic entirely.
    pub fn cache_token(&self) -> String {
        format!("{}{}", self, if self.scan_obfuscation { "+se" } else { "" })
    }

    /// Total key bits per block.
    pub fn keys_per_block(&self) -> usize {
        let input_net = BanyanNetwork::new(self.width).num_keys();
        let output_net = if self.double_routing {
            BanyanNetwork::new(self.width).num_keys()
        } else {
            0
        };
        let lut_keys = 4 * self.luts();
        let se = if self.scan_obfuscation {
            self.luts()
        } else {
            0
        };
        input_net + output_net + lut_keys + se
    }
}

impl fmt::Display for RilBlockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.double_routing {
            write!(f, "{0}x{0}x{0}", self.width)
        } else {
            write!(f, "{0}x{0}", self.width)
        }
    }
}

/// Errors during obfuscation.
#[derive(Debug, Clone, PartialEq)]
pub enum ObfuscateError {
    /// The selected gate cannot be absorbed into a 2-input LUT.
    NotLutCompatible(String),
    /// Not enough suitable, structurally independent gates in the host.
    NotEnoughGates {
        /// Gates needed per block.
        needed: usize,
        /// Gates found.
        found: usize,
    },
    /// Wrong number of gates passed for the block width.
    WrongGateCount {
        /// Expected `spec.luts()`.
        expected: usize,
        /// Provided.
        got: usize,
    },
    /// Underlying netlist error.
    Netlist(NetlistError),
}

impl fmt::Display for ObfuscateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObfuscateError::NotLutCompatible(n) => {
                write!(f, "gate driving `{n}` is not a 2-input boolean function")
            }
            ObfuscateError::NotEnoughGates { needed, found } => {
                write!(f, "need {needed} independent 2-input gates, found {found}")
            }
            ObfuscateError::WrongGateCount { expected, got } => {
                write!(f, "block expects {expected} gates, got {got}")
            }
            ObfuscateError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for ObfuscateError {}

impl From<NetlistError> for ObfuscateError {
    fn from(e: NetlistError) -> Self {
        ObfuscateError::Netlist(e)
    }
}

/// Metadata of one materialized block — everything dynamic morphing needs
/// to re-key the block without re-tracing the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block shape.
    pub spec: RilBlockSpec,
    /// Index of the block's first key bit in the [`KeyStore`].
    pub first_key: usize,
    /// For double-routing blocks: the output-banyan line index wired to
    /// each absorbed gate's fan-out (per LUT slot). Empty otherwise.
    pub out_ports: Vec<usize>,
    /// Nets entering the input banyan, port order (the routing element's
    /// structural boundary — what an attacker recovers by inspecting the
    /// MUX trees, used by the one-layer linear re-encoding).
    pub in_port_nets: Vec<NetId>,
    /// Nets leaving the input banyan, line order.
    pub in_line_nets: Vec<NetId>,
    /// Nets entering the output banyan (true/complement rails), port order.
    /// Empty for single-routing blocks.
    pub out_rail_nets: Vec<NetId>,
    /// Nets leaving the output banyan, line order. Empty for single-routing
    /// blocks.
    pub out_line_nets: Vec<NetId>,
}

impl BlockMeta {
    fn banyan(&self) -> BanyanNetwork {
        BanyanNetwork::new(self.spec.width)
    }

    /// Global key index of input-network routing bit (`stage`, `box`).
    pub fn in_routing_key(&self, stage: usize, switchbox: usize) -> usize {
        self.first_key + self.banyan().key_index(stage, switchbox)
    }

    /// Global key indices of the whole input routing network, layout order.
    pub fn in_routing_keys(&self) -> Vec<usize> {
        let n = self.banyan().num_keys();
        (self.first_key..self.first_key + n).collect()
    }

    /// Key bits consumed by each LUT group (4 truth-table bits plus the SE
    /// bit when scan obfuscation is on).
    fn lut_group_width(&self) -> usize {
        4 + usize::from(self.spec.scan_obfuscation)
    }

    /// Global key index of LUT `lut`'s truth-table bit `bit`.
    pub fn lut_key(&self, lut: usize, bit: usize) -> usize {
        self.first_key + self.banyan().num_keys() + lut * self.lut_group_width() + bit
    }

    /// Global key index of LUT `lut`'s Scan-Enable bit.
    ///
    /// # Panics
    ///
    /// Panics if the block has no scan obfuscation.
    pub fn se_key(&self, lut: usize) -> usize {
        assert!(self.spec.scan_obfuscation, "block has no SE stage");
        self.first_key + self.banyan().num_keys() + lut * self.lut_group_width() + 4
    }

    /// Global key indices of the output routing network (empty for single
    /// routing blocks).
    pub fn out_routing_keys(&self) -> Vec<usize> {
        if !self.spec.double_routing {
            return Vec::new();
        }
        let n = self.banyan().num_keys();
        let start = self.first_key + n + self.spec.luts() * self.lut_group_width();
        (start..start + n).collect()
    }

    /// Total key bits of this block.
    pub fn key_width(&self) -> usize {
        self.spec.keys_per_block()
    }
}

/// Adds a key input named after its global index and records it.
fn add_key(
    nl: &mut Netlist,
    keys: &mut KeyStore,
    kind: KeyBitKind,
    value: bool,
) -> Result<NetId, NetlistError> {
    let name = format!("keyinput{}", keys.len());
    let net = nl.add_key_input(name)?;
    keys.push(kind, value);
    Ok(net)
}

/// Materializes one RIL-Block over the given already-selected gates
/// (`spec.luts()` two-input gates, pairwise structurally independent).
/// The gates are removed and replaced by the block; all block key bits are
/// appended to `keys` in netlist order.
///
/// `se_net` is the global scan-enable input (required when
/// `spec.scan_obfuscation`).
///
/// # Errors
///
/// Returns [`ObfuscateError::WrongGateCount`] /
/// [`ObfuscateError::NotLutCompatible`] on bad selections, and propagates
/// netlist errors.
pub fn insert_block<R: Rng>(
    nl: &mut Netlist,
    keys: &mut KeyStore,
    block_idx: usize,
    spec: &RilBlockSpec,
    gates: &[GateId],
    se_net: Option<NetId>,
    rng: &mut R,
) -> Result<BlockMeta, ObfuscateError> {
    let first_key = keys.len();
    if gates.len() != spec.luts() {
        return Err(ObfuscateError::WrongGateCount {
            expected: spec.luts(),
            got: gates.len(),
        });
    }
    // Harvest the absorbed gates.
    struct Absorbed {
        fanin_a: NetId,
        fanin_b: NetId,
        tt: u8,
        out: NetId,
    }
    let mut absorbed = Vec::with_capacity(gates.len());
    for &gid in gates {
        let gate = nl.gate(gid);
        let tt = truth_table_of(gate.kind()).ok_or_else(|| {
            ObfuscateError::NotLutCompatible(nl.net(gate.output()).name().to_string())
        })?;
        if gate.inputs().len() != 2 {
            return Err(ObfuscateError::NotLutCompatible(
                nl.net(gate.output()).name().to_string(),
            ));
        }
        absorbed.push(Absorbed {
            fanin_a: gate.inputs()[0],
            fanin_b: gate.inputs()[1],
            tt,
            out: gate.output(),
        });
    }
    for &gid in gates {
        nl.remove_gate(gid);
    }

    let banyan = BanyanNetwork::new(spec.width);

    // Randomly swap each gate's fan-in pair (compensated in the LUT table).
    for a in &mut absorbed {
        if rng.gen() {
            std::mem::swap(&mut a.fanin_a, &mut a.fanin_b);
            a.tt = swap_lut_inputs(a.tt);
        }
    }

    // --- Input routing network -------------------------------------------
    // Desired wire at banyan output line 2j / 2j+1 = fan-ins of gate j.
    let mut desired = vec![None; spec.width];
    for (j, a) in absorbed.iter().enumerate() {
        desired[2 * j] = Some(a.fanin_a);
        desired[2 * j + 1] = Some(a.fanin_b);
    }
    // Any random key is realizable: feed port p with the wire destined for
    // line perm[p].
    let k1: Vec<bool> = (0..banyan.num_keys()).map(|_| rng.gen()).collect();
    let perm1 = banyan.route(&k1);
    let ports: Vec<NetId> = (0..spec.width)
        .map(|p| desired[perm1[p]].expect("all lines assigned"))
        .collect();
    let mut k1_nets = Vec::with_capacity(k1.len());
    for stage in 0..banyan.num_stages() {
        for b in 0..banyan.boxes_per_stage() {
            let idx = banyan.key_index(stage, b);
            k1_nets.push(add_key(
                nl,
                keys,
                KeyBitKind::Routing {
                    block: block_idx,
                    network: 0,
                    stage,
                    switchbox: b,
                },
                k1[idx],
            )?);
        }
    }
    let lines = banyan.materialize(nl, &ports, &k1_nets)?;

    // --- LUT stage ---------------------------------------------------------
    let mut lut_outs = Vec::with_capacity(absorbed.len());
    for (j, a) in absorbed.iter().enumerate() {
        let mut key_nets = [lines[0]; 4];
        for bit in 0..4u8 {
            key_nets[bit as usize] = add_key(
                nl,
                keys,
                KeyBitKind::LutConfig {
                    block: block_idx,
                    lut: j,
                    bit,
                },
                (a.tt >> bit) & 1 == 1,
            )?;
        }
        let mut o = materialize_lut2(nl, lines[2 * j], lines[2 * j + 1], key_nets)?;
        // Scan-Enable stage: OUT = O ⊕ (SE ∧ K_SE).
        if spec.scan_obfuscation {
            let se = se_net.expect("scan obfuscation requires the SE net");
            let k_se = add_key(
                nl,
                keys,
                KeyBitKind::ScanEnable {
                    block: block_idx,
                    lut: j,
                },
                rng.gen(),
            )?;
            let gate_se = nl.add_gate_fresh(GateKind::And, &[se, k_se], "seand")?;
            o = nl.add_gate_fresh(GateKind::Xor, &[o, gate_se], "seout")?;
        }
        lut_outs.push(o);
    }

    // --- Output side ---------------------------------------------------------
    if spec.double_routing {
        // True/complement rails of every LUT output enter the second banyan.
        let mut rails = Vec::with_capacity(spec.width);
        for &o in &lut_outs {
            rails.push(o);
            rails.push(nl.add_gate_fresh(GateKind::Not, &[o], "rail")?);
        }
        let k2: Vec<bool> = (0..banyan.num_keys()).map(|_| rng.gen()).collect();
        let perm2 = banyan.route(&k2);
        let mut k2_nets = Vec::with_capacity(k2.len());
        for stage in 0..banyan.num_stages() {
            for b in 0..banyan.boxes_per_stage() {
                let idx = banyan.key_index(stage, b);
                k2_nets.push(add_key(
                    nl,
                    keys,
                    KeyBitKind::Routing {
                        block: block_idx,
                        network: 1,
                        stage,
                        switchbox: b,
                    },
                    k2[idx],
                )?);
            }
        }
        let out_lines = banyan.materialize(nl, &rails, &k2_nets)?;
        // Gate j's true rail entered at port 2j and lands on line perm2[2j].
        let mut out_ports = Vec::with_capacity(absorbed.len());
        for (j, a) in absorbed.iter().enumerate() {
            nl.add_gate(GateKind::Buf, &[out_lines[perm2[2 * j]]], a.out)?;
            out_ports.push(perm2[2 * j]);
        }
        Ok(BlockMeta {
            spec: *spec,
            first_key,
            out_ports,
            in_port_nets: ports,
            in_line_nets: lines,
            out_rail_nets: rails,
            out_line_nets: out_lines,
        })
    } else {
        for (j, a) in absorbed.iter().enumerate() {
            nl.add_gate(GateKind::Buf, &[lut_outs[j]], a.out)?;
        }
        Ok(BlockMeta {
            spec: *spec,
            first_key,
            out_ports: Vec::new(),
            in_port_nets: ports,
            in_line_nets: lines,
            out_rail_nets: Vec::new(),
            out_line_nets: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_netlist::{generators, Simulator};

    #[test]
    fn spec_parsing_and_counts() {
        let s = RilBlockSpec::parse("2x2").unwrap();
        assert_eq!(s, RilBlockSpec::size_2x2());
        assert_eq!(s.luts(), 1);
        assert_eq!(s.keys_per_block(), 1 + 4);
        let s = RilBlockSpec::parse("8x8").unwrap();
        assert_eq!(s.luts(), 4);
        assert_eq!(s.keys_per_block(), 12 + 16);
        let s = RilBlockSpec::parse("8x8x8").unwrap();
        assert!(s.double_routing);
        assert_eq!(s.keys_per_block(), 12 + 16 + 12);
        assert_eq!(s.with_scan(true).keys_per_block(), 12 + 16 + 12 + 4);
        assert!(RilBlockSpec::parse("3x3").is_none());
        assert!(RilBlockSpec::parse("8x4").is_none());
        assert!(RilBlockSpec::parse("8").is_none());
        assert_eq!(RilBlockSpec::size_8x8x8().to_string(), "8x8x8");
    }

    /// Inserts one block over the first `k` independent 2-input gates of a
    /// small host and checks functional equivalence under the correct key.
    fn check_block_equivalence(spec: RilBlockSpec, seed: u64) {
        let original = generators::adder(6);
        let mut locked = original.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let se = if spec.scan_obfuscation {
            Some(locked.add_input("SE").unwrap())
        } else {
            None
        };
        // Pick independent 2-input gates (no path between them): use
        // same-level XOR gates of the adder's first stage — simplest is to
        // take the a[i]&b[i] AND gates, which are pairwise independent.
        let candidates: Vec<GateId> = locked
            .gates()
            .filter(|(_, g)| {
                g.kind() == GateKind::And
                    && g.inputs().len() == 2
                    && g.inputs().iter().all(|&n| locked.is_input(n))
            })
            .map(|(id, _)| id)
            .take(spec.luts())
            .collect();
        assert_eq!(candidates.len(), spec.luts(), "host too small for test");
        let mut keys = KeyStore::new();
        insert_block(&mut locked, &mut keys, 0, &spec, &candidates, se, &mut rng).unwrap();
        locked.validate().unwrap();
        assert_eq!(keys.len(), spec.keys_per_block());
        assert_eq!(locked.key_inputs().len(), keys.len());

        // Equivalence under the correct key (SE = 0).
        let mut sim_orig = Simulator::new(&original).unwrap();
        let mut sim_lock = Simulator::new(&locked).unwrap();
        let kw = keys.as_words();
        for trial in 0..20 {
            let mut trng = StdRng::seed_from_u64(seed * 1000 + trial);
            let data_orig: Vec<u64> = (0..original.data_inputs().len())
                .map(|_| trng.gen())
                .collect();
            let mut data_lock = data_orig.clone();
            if se.is_some() {
                data_lock.push(0); // SE pin low in functional mode
            }
            let o1 = sim_orig.eval_words(&original, &data_orig, &[]);
            let o2 = sim_lock.eval_words(&locked, &data_lock, &kw);
            assert_eq!(o1, o2, "{spec} trial {trial}");
        }

        // A random wrong key corrupts at least one output somewhere.
        let mut corrupted = false;
        for trial in 0..10 {
            let mut trng = StdRng::seed_from_u64(seed * 77 + trial);
            let wrong: Vec<u64> = (0..keys.len()).map(|_| trng.gen()).collect();
            let data_orig: Vec<u64> = (0..original.data_inputs().len())
                .map(|_| trng.gen())
                .collect();
            let mut data_lock = data_orig.clone();
            if se.is_some() {
                data_lock.push(0);
            }
            let o1 = sim_orig.eval_words(&original, &data_orig, &[]);
            let o2 = sim_lock.eval_words(&locked, &data_lock, &wrong);
            if o1 != o2 {
                corrupted = true;
                break;
            }
        }
        assert!(corrupted, "{spec}: wrong keys never corrupt outputs");
    }

    #[test]
    fn block_2x2_preserves_function() {
        check_block_equivalence(RilBlockSpec::size_2x2(), 1);
        check_block_equivalence(RilBlockSpec::size_2x2().with_scan(true), 2);
    }

    #[test]
    fn block_4x4_preserves_function() {
        check_block_equivalence(RilBlockSpec::parse("4x4").unwrap(), 3);
        check_block_equivalence(RilBlockSpec::parse("4x4x4").unwrap(), 4);
    }

    #[test]
    fn block_8x8_and_8x8x8_preserve_function() {
        // adder(6) has 6 independent first-stage AND gates — enough for
        // width 8 (4 LUTs).
        check_block_equivalence(RilBlockSpec::size_8x8(), 5);
        check_block_equivalence(RilBlockSpec::size_8x8x8(), 6);
        check_block_equivalence(RilBlockSpec::size_8x8x8().with_scan(true), 7);
    }

    #[test]
    fn se_assertion_corrupts_outputs_for_se_keyed_luts() {
        // With scan obfuscation and at least one SE key = 1, asserting SE
        // under the CORRECT key must corrupt outputs (that's the defense).
        let spec = RilBlockSpec::size_8x8().with_scan(true);
        for seed in 0..20 {
            let original = generators::adder(6);
            let mut locked = original.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let se = locked.add_input("SE").unwrap();
            let candidates: Vec<GateId> = locked
                .gates()
                .filter(|(_, g)| {
                    g.kind() == GateKind::And
                        && g.inputs().len() == 2
                        && g.inputs().iter().all(|&n| locked.is_input(n))
                })
                .map(|(id, _)| id)
                .take(spec.luts())
                .collect();
            let mut keys = KeyStore::new();
            insert_block(
                &mut locked,
                &mut keys,
                0,
                &spec,
                &candidates,
                Some(se),
                &mut rng,
            )
            .unwrap();
            let any_se_key_set = keys
                .kinds()
                .iter()
                .zip(keys.bits())
                .any(|(k, &v)| matches!(k, KeyBitKind::ScanEnable { .. }) && v);
            if !any_se_key_set {
                continue; // all SE keys drew 0 — no inversion expected
            }
            let mut sim_orig = Simulator::new(&original).unwrap();
            let mut sim_lock = Simulator::new(&locked).unwrap();
            let kw = keys.as_words();
            let mut trng = StdRng::seed_from_u64(seed + 999);
            let data_orig: Vec<u64> = (0..original.data_inputs().len())
                .map(|_| trng.gen())
                .collect();
            let mut data_se = data_orig.clone();
            data_se.push(u64::MAX); // SE asserted
            let o1 = sim_orig.eval_words(&original, &data_orig, &[]);
            let o2 = sim_lock.eval_words(&locked, &data_se, &kw);
            if o1 != o2 {
                return; // observed the corruption — test passes
            }
        }
        panic!("SE assertion never corrupted outputs across seeds");
    }

    #[test]
    fn wrong_gate_count_rejected() {
        let mut nl = generators::adder(4);
        let mut keys = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gid = nl.gates().next().map(|(id, _)| id).unwrap();
        let err = insert_block(
            &mut nl,
            &mut keys,
            0,
            &RilBlockSpec::size_8x8(),
            &[gid],
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, ObfuscateError::WrongGateCount { .. }));
    }

    #[test]
    fn non_lut_gate_rejected() {
        let mut nl = ril_netlist::Netlist::new("m");
        let s = nl.add_input("s").unwrap();
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let y = nl.add_net("y").unwrap();
        let gid = nl.add_gate(GateKind::Mux, &[s, a, b], y).unwrap();
        nl.mark_output(y);
        let mut keys = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let err = insert_block(
            &mut nl,
            &mut keys,
            0,
            &RilBlockSpec::size_2x2(),
            &[gid],
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, ObfuscateError::NotLutCompatible(_)));
    }
}
