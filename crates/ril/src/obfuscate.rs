//! End-to-end obfuscation: benchmark in → locked netlist + keys out.

use crate::block::{insert_block, BlockMeta, ObfuscateError, RilBlockSpec};
use crate::insertion::{select_gates, InsertionPolicy};
use crate::key::KeyStore;
use crate::morph::MorphDelta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_netlist::{Netlist, Simulator};

/// The conventional name of the scan-enable pin added to locked netlists.
pub const SE_PIN: &str = "SE";

/// Configurable obfuscation pipeline (builder pattern).
///
/// # Examples
///
/// ```
/// use ril_core::{Obfuscator, RilBlockSpec};
/// use ril_netlist::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let host = generators::adder(8);
/// let locked = Obfuscator::new(RilBlockSpec::size_8x8())
///     .blocks(1)
///     .seed(42)
///     .obfuscate(&host)?;
/// assert_eq!(locked.keys.len(), RilBlockSpec::size_8x8().keys_per_block());
/// assert!(locked.verify(32)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Obfuscator {
    spec: RilBlockSpec,
    blocks: usize,
    policy: InsertionPolicy,
    seed: u64,
}

impl Obfuscator {
    /// Creates an obfuscator inserting one block of the given shape.
    pub fn new(spec: RilBlockSpec) -> Obfuscator {
        Obfuscator {
            spec,
            blocks: 1,
            policy: InsertionPolicy::Random,
            seed: 0,
        }
    }

    /// Sets the number of RIL-Blocks to insert.
    pub fn blocks(mut self, blocks: usize) -> Obfuscator {
        self.blocks = blocks;
        self
    }

    /// Sets the gate-selection policy.
    pub fn policy(mut self, policy: InsertionPolicy) -> Obfuscator {
        self.policy = policy;
        self
    }

    /// Enables the Scan-Enable obfuscation stage on every LUT.
    pub fn scan_obfuscation(mut self, on: bool) -> Obfuscator {
        self.spec.scan_obfuscation = on;
        self
    }

    /// Sets the RNG seed (key values, routing configs, gate selection).
    pub fn seed(mut self, seed: u64) -> Obfuscator {
        self.seed = seed;
        self
    }

    /// Runs the pipeline on `original`.
    ///
    /// # Errors
    ///
    /// Returns [`ObfuscateError`] when the host lacks enough independent
    /// replaceable gates or a structural edit fails.
    pub fn obfuscate(&self, original: &Netlist) -> Result<LockedCircuit, ObfuscateError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut locked = original.clone();
        locked.set_name(format!("{}_locked", original.name()));
        let se_net = if self.spec.scan_obfuscation {
            Some(locked.add_input(SE_PIN).map_err(ObfuscateError::Netlist)?)
        } else {
            None
        };
        let mut keys = KeyStore::new();
        let mut block_meta = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks {
            let gates = select_gates(&locked, self.spec.luts(), self.policy, &mut rng)?;
            let meta = insert_block(
                &mut locked,
                &mut keys,
                b,
                &self.spec,
                &gates,
                se_net,
                &mut rng,
            )?;
            block_meta.push(meta);
        }
        debug_assert!(locked.validate().is_ok());
        Ok(LockedCircuit {
            original: original.clone(),
            netlist: locked,
            keys,
            spec: self.spec,
            blocks: self.blocks,
            block_meta,
        })
    }
}

/// An obfuscated design: the locked netlist, its correct key, and the
/// pristine original (the defender's view; attacks only see `netlist` plus
/// an oracle).
#[derive(Debug, Clone)]
pub struct LockedCircuit {
    /// The pre-obfuscation netlist.
    pub original: Netlist,
    /// The locked netlist (key inputs declared as `KEYINPUT`s).
    pub netlist: Netlist,
    /// The correct key (tamper-proof memory contents).
    pub keys: KeyStore,
    /// Block shape used.
    pub spec: RilBlockSpec,
    /// Number of blocks inserted.
    pub blocks: usize,
    /// Per-block metadata (key layout, output ports) for dynamic morphing.
    pub block_meta: Vec<BlockMeta>,
}

impl LockedCircuit {
    /// Verifies functional equivalence of the locked circuit under the
    /// correct key (SE = 0) against the original, over `patterns` random
    /// 64-pattern words per input.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn verify(&self, patterns: usize) -> Result<bool, ril_netlist::NetlistError> {
        self.equivalent_under_key(self.keys.bits(), patterns)
    }

    /// Like [`LockedCircuit::verify`] but with an arbitrary candidate key —
    /// the success criterion of an attack.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn equivalent_under_key(
        &self,
        key: &[bool],
        patterns: usize,
    ) -> Result<bool, ril_netlist::NetlistError> {
        assert_eq!(key.len(), self.keys.len(), "key width mismatch");
        let mut sim_orig = Simulator::new(&self.original)?;
        let mut sim_lock = Simulator::new(&self.netlist)?;
        let kw: Vec<u64> = key.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
        let n_data_orig = self.original.data_inputs().len();
        let has_se = self.netlist.net_id(SE_PIN).is_some();
        let mut rng = StdRng::seed_from_u64(0xE0_5EED);
        for _ in 0..patterns {
            let data: Vec<u64> = (0..n_data_orig).map(|_| rng.gen()).collect();
            let mut data_lock = data.clone();
            if has_se {
                data_lock.push(0);
            }
            let o1 = sim_orig.eval_words(&self.original, &data, &[]);
            let o2 = sim_lock.eval_words(&self.netlist, &data_lock, &kw);
            if o1 != o2 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// *Formally* verifies equivalence under a candidate key with the
    /// SAT-based equivalence checker: key inputs are pinned to `key`, the
    /// `SE` pin (if present) to 0, and the miter must be UNSAT. Stronger
    /// than the random-pattern [`LockedCircuit::verify`] but costlier.
    ///
    /// # Errors
    ///
    /// Propagates equivalence-checking errors (port mismatches cannot
    /// occur for circuits produced by [`Obfuscator`]).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn verify_formal(
        &self,
        key: &[bool],
        timeout: Option<std::time::Duration>,
    ) -> Result<ril_sat::EquivResult, ril_sat::EquivError> {
        let mut verifier = self.formal_verifier(timeout)?;
        verifier.check_with(&self.key_assignment(key))
    }

    /// Builds a reusable formal verifier for this circuit pair: the miter
    /// `original` vs `locked` encoded once into an [`ril_sat::EquivSession`]
    /// with `SE` pinned to functional mode and the key inputs left free, so
    /// each candidate key is just an assumption set for
    /// [`ril_sat::EquivSession::check_with`]. Checking many keys (key
    /// sweeps, attack evaluation) against one warm verifier avoids paying
    /// miter encoding and solver construction per key.
    ///
    /// # Errors
    ///
    /// Propagates equivalence-checking errors (port mismatches cannot
    /// occur for circuits produced by [`Obfuscator`]).
    pub fn formal_verifier(
        &self,
        timeout: Option<std::time::Duration>,
    ) -> Result<ril_sat::EquivSession, ril_sat::EquivError> {
        ril_sat::EquivSession::new(&self.original, &self.netlist, &self.equiv_options(timeout))
    }

    /// The miter options shared by the eager and incremental verifiers:
    /// key inputs free (ignored on the original side), `SE` pinned to
    /// functional mode.
    fn equiv_options(&self, timeout: Option<std::time::Duration>) -> ril_sat::EquivOptions {
        let mut ignore: Vec<String> = self
            .netlist
            .key_inputs()
            .iter()
            .map(|&n| self.netlist.net(n).name().to_string())
            .collect();
        let mut fixed = Vec::new();
        if self.netlist.net_id(SE_PIN).is_some() {
            fixed.push((SE_PIN.to_string(), false));
        }
        ignore.extend(fixed.iter().map(|(n, _)| n.clone()));
        ril_sat::EquivOptions {
            timeout,
            ignore_inputs: ignore,
            fixed_inputs: fixed,
            ..ril_sat::EquivOptions::default()
        }
    }

    /// Builds an *incremental* post-morph verifier: the miter ports are
    /// matched once, but output cones are only encoded into the live SAT
    /// session when a check first touches them. After a morph,
    /// [`MorphVerifier::verify_after`] re-checks only the outputs whose
    /// cones read a changed key bit (per [`crate::morph::MorphDelta`] and
    /// the netlist's cached key analysis) — sound because a morph changes
    /// key *values* only, so an output whose cone reads no changed bit
    /// computes the same function it did when last verified.
    ///
    /// # Errors
    ///
    /// Propagates equivalence-checking errors (port mismatches cannot
    /// occur for circuits produced by [`Obfuscator`]).
    pub fn incremental_verifier(
        &self,
        timeout: Option<std::time::Duration>,
    ) -> Result<MorphVerifier, ril_sat::EquivError> {
        MorphVerifier::new(self, timeout)
    }

    /// Output indices of the locked netlist whose logic changed under
    /// `delta` — convenience over [`crate::morph::MorphDelta::dirty_outputs`].
    pub fn dirty_outputs(&self, delta: &crate::morph::MorphDelta) -> Vec<usize> {
        delta.dirty_outputs(&self.netlist)
    }

    /// The `(key input name, value)` pin list for a candidate key, in the
    /// shape [`ril_sat::EquivSession::check_with`] expects.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn key_assignment(&self, key: &[bool]) -> Vec<(String, bool)> {
        assert_eq!(key.len(), self.keys.len(), "key width mismatch");
        self.netlist
            .key_inputs()
            .iter()
            .zip(key)
            .map(|(&n, &v)| (self.netlist.net(n).name().to_string(), v))
            .collect()
    }

    /// Gate-count overhead of the locking (locked − original).
    pub fn gate_overhead(&self) -> usize {
        self.netlist
            .gate_count()
            .saturating_sub(self.original.gate_count())
    }

    /// Key width.
    pub fn key_width(&self) -> usize {
        self.keys.len()
    }
}

/// Incremental post-morph formal verifier (built by
/// [`LockedCircuit::incremental_verifier`]).
///
/// Wraps a [`ril_sat::IncrementalEquivSession`] — a lazily-encoded
/// `original` vs `locked` miter over one live incremental SAT session —
/// together with the locked design's cached key analysis, so a
/// [`MorphDelta`] maps directly to the subset of outputs whose cones must
/// be re-checked. Clean outputs keep their previous verdict: a morph only
/// changes key *values*, and an output whose cone reads no changed bit
/// still computes the function that was last certified.
#[derive(Debug)]
pub struct MorphVerifier {
    session: ril_sat::IncrementalEquivSession,
    /// Locked-netlist output index → miter output index. Miter pairs
    /// follow the *original* netlist's output order; for circuits from
    /// [`Obfuscator`] the map is the identity, but it is derived by name
    /// so netlists with reordered outputs stay correct.
    out_map: Vec<usize>,
    keys: std::sync::Arc<ril_netlist::KeyAnalysis>,
    key_names: Vec<String>,
}

impl MorphVerifier {
    /// Matches the miter ports of `locked.original` vs `locked.netlist`
    /// (key inputs free, `SE` pinned to 0) without encoding any gate
    /// cones, and snapshots the locked netlist's key analysis.
    ///
    /// # Errors
    ///
    /// Propagates port-matching errors (cannot occur for circuits
    /// produced by [`Obfuscator`]).
    pub fn new(
        locked: &LockedCircuit,
        timeout: Option<std::time::Duration>,
    ) -> Result<MorphVerifier, ril_sat::EquivError> {
        let session = ril_sat::IncrementalEquivSession::new(
            &locked.original,
            &locked.netlist,
            &locked.equiv_options(timeout),
        )?;
        let left_pos: std::collections::HashMap<&str, usize> = locked
            .original
            .outputs()
            .iter()
            .enumerate()
            .map(|(i, &o)| (locked.original.net(o).name(), i))
            .collect();
        let out_map = locked
            .netlist
            .outputs()
            .iter()
            .map(|&o| {
                let name = locked.netlist.net(o).name();
                *left_pos
                    .get(name)
                    .expect("port match above pairs every output by name")
            })
            .collect();
        Ok(MorphVerifier {
            session,
            out_map,
            keys: locked.netlist.key_analysis(),
            key_names: locked
                .netlist
                .key_inputs()
                .iter()
                .map(|&n| locked.netlist.net(n).name().to_string())
                .collect(),
        })
    }

    fn assignment(&self, key: &[bool]) -> Vec<(String, bool)> {
        assert_eq!(key.len(), self.key_names.len(), "key width mismatch");
        self.key_names
            .iter()
            .cloned()
            .zip(key.iter().copied())
            .collect()
    }

    /// Full formal check of `key` over every output (encodes all cones on
    /// first use). Call once after construction to certify the baseline
    /// the incremental checks then extend.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (sequential cones).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn verify(&mut self, key: &[bool]) -> Result<ril_sat::EquivResult, ril_sat::EquivError> {
        let assignment = self.assignment(key);
        self.session.check_with(&assignment)
    }

    /// Post-morph check: verifies `key` only on the outputs whose cones
    /// read a key bit changed by `delta`. An empty dirty set is vacuously
    /// [`ril_sat::EquivResult::Equivalent`] without touching the solver.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (sequential cones).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn verify_after(
        &mut self,
        delta: &MorphDelta,
        key: &[bool],
    ) -> Result<ril_sat::EquivResult, ril_sat::EquivError> {
        let dirty: Vec<usize> = self
            .keys
            .dirty_outputs(delta.changed_bits())
            .into_iter()
            .map(|o| self.out_map[o])
            .collect();
        let assignment = self.assignment(key);
        self.session.check_outputs(&dirty, &assignment)
    }

    /// Checks `key` on an explicit output subset (locked-netlist output
    /// indices).
    ///
    /// # Errors
    ///
    /// Returns a port error for out-of-range indices.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the key width.
    pub fn verify_outputs(
        &mut self,
        outputs: &[usize],
        key: &[bool],
    ) -> Result<ril_sat::EquivResult, ril_sat::EquivError> {
        let mapped: Vec<usize> = outputs
            .iter()
            .map(|&o| {
                self.out_map.get(o).copied().ok_or_else(|| {
                    ril_sat::EquivError::PortMismatch(format!(
                        "output index {o} out of range ({} outputs)",
                        self.out_map.len()
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        let assignment = self.assignment(key);
        self.session.check_outputs(&mapped, &assignment)
    }

    /// Number of matched output pairs.
    pub fn outputs(&self) -> usize {
        self.session.outputs()
    }

    /// Output pairs whose cones have been encoded into the live session.
    pub fn encoded_outputs(&self) -> usize {
        self.session.encoded_outputs()
    }

    /// Number of solver queries answered (vacuous empty-set checks are
    /// free and not counted).
    pub fn checks(&self) -> usize {
        self.session.checks()
    }

    /// Cumulative solver statistics.
    pub fn stats(&self) -> ril_sat::SolverStats {
        self.session.stats()
    }

    /// Updates the per-check wall-clock budget.
    pub fn set_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.session.set_timeout(timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_netlist::generators;

    #[test]
    fn single_2x2_block_end_to_end() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(7)
            .obfuscate(&host)
            .unwrap();
        assert!(locked.verify(16).unwrap());
        assert_eq!(locked.key_width(), 5);
        assert!(locked.gate_overhead() > 0);
    }

    #[test]
    fn multiple_blocks_accumulate_keys() {
        let host = generators::multiplier(6);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(10)
            .seed(3)
            .obfuscate(&host)
            .unwrap();
        assert_eq!(locked.key_width(), 10 * 5);
        assert_eq!(locked.blocks, 10);
        assert!(locked.verify(16).unwrap());
    }

    #[test]
    fn large_blocks_with_scan_on_real_benchmark() {
        let host = generators::benchmark("c7552").unwrap();
        let locked = Obfuscator::new(RilBlockSpec::size_8x8x8())
            .blocks(2)
            .scan_obfuscation(true)
            .seed(99)
            .obfuscate(&host)
            .unwrap();
        locked.netlist.validate().unwrap();
        assert!(locked.verify(8).unwrap());
        let per_block = RilBlockSpec::size_8x8x8().with_scan(true).keys_per_block();
        assert_eq!(locked.key_width(), 2 * per_block);
    }

    #[test]
    fn wrong_key_usually_inequivalent() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8())
            .seed(21)
            .obfuscate(&host)
            .unwrap();
        // Flip one LUT config bit: function changes.
        let mut wrong = locked.keys.bits().to_vec();
        let lut_bits = locked
            .keys
            .indices_where(|k| matches!(k, crate::key::KeyBitKind::LutConfig { .. }));
        wrong[lut_bits[0]] = !wrong[lut_bits[0]];
        assert!(!locked.equivalent_under_key(&wrong, 32).unwrap());
    }

    #[test]
    fn determinism_by_seed() {
        let host = generators::adder(8);
        let a = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        let b = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(5)
            .obfuscate(&host)
            .unwrap();
        assert_eq!(
            ril_netlist::write_bench(&a.netlist),
            ril_netlist::write_bench(&b.netlist)
        );
        assert_eq!(a.keys, b.keys);
        let c = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(6)
            .obfuscate(&host)
            .unwrap();
        assert_ne!(
            ril_netlist::write_bench(&a.netlist),
            ril_netlist::write_bench(&c.netlist)
        );
    }

    #[test]
    fn formal_verification_certifies_correct_key_and_refutes_wrong_one() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .scan_obfuscation(true)
            .seed(8)
            .obfuscate(&host)
            .unwrap();
        let ok = locked
            .verify_formal(locked.keys.bits(), Some(std::time::Duration::from_secs(30)))
            .unwrap();
        assert_eq!(ok, ril_sat::EquivResult::Equivalent);
        // Flip one LUT config bit: a concrete counterexample must exist.
        let mut wrong = locked.keys.bits().to_vec();
        let lut_bits = locked
            .keys
            .indices_where(|k| matches!(k, crate::key::KeyBitKind::LutConfig { .. }));
        wrong[lut_bits[0]] = !wrong[lut_bits[0]];
        match locked
            .verify_formal(&wrong, Some(std::time::Duration::from_secs(30)))
            .unwrap()
        {
            ril_sat::EquivResult::Inequivalent { counterexample } => {
                assert_eq!(counterexample.len(), host.data_inputs().len());
            }
            other => panic!("wrong key verified: {other:?}"),
        }
    }

    #[test]
    fn formal_verifier_checks_many_keys_on_one_miter() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(8)
            .obfuscate(&host)
            .unwrap();
        let mut verifier = locked
            .formal_verifier(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        assert_eq!(
            verifier
                .check_with(&locked.key_assignment(locked.keys.bits()))
                .unwrap(),
            ril_sat::EquivResult::Equivalent
        );
        let lut_bits = locked
            .keys
            .indices_where(|k| matches!(k, crate::key::KeyBitKind::LutConfig { .. }));
        for &flip in lut_bits.iter().take(3) {
            let mut wrong = locked.keys.bits().to_vec();
            wrong[flip] = !wrong[flip];
            assert!(matches!(
                verifier.check_with(&locked.key_assignment(&wrong)).unwrap(),
                ril_sat::EquivResult::Inequivalent { .. }
            ));
        }
        // One miter encoding answered every query.
        assert_eq!(verifier.checks(), 4);
    }

    #[test]
    fn incremental_verifier_tracks_morphs_lazily() {
        let host = generators::multiplier(6);
        let mut locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .scan_obfuscation(true)
            .seed(8)
            .obfuscate(&host)
            .unwrap();
        let timeout = Some(std::time::Duration::from_secs(30));
        let mut verifier = locked.incremental_verifier(timeout).unwrap();
        assert_eq!(
            verifier.encoded_outputs(),
            0,
            "construction encodes no cones"
        );
        // Baseline: full check under the correct key.
        assert_eq!(
            verifier.verify(locked.keys.bits()).unwrap(),
            ril_sat::EquivResult::Equivalent
        );
        assert_eq!(verifier.encoded_outputs(), verifier.outputs());
        // Morph rounds: only dirty cones are re-checked, verdicts agree
        // with the eager full-miter verifier.
        let mut eager = locked.formal_verifier(timeout).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for round in 0..3 {
            let (_, delta) = crate::morph::morph_all_delta(&mut locked, &mut rng);
            let bits = locked.keys.bits().to_vec();
            let fast = verifier.verify_after(&delta, &bits).unwrap();
            let full = eager.check_with(&locked.key_assignment(&bits)).unwrap();
            assert_eq!(fast, full, "round {round} verdicts diverge");
            assert_eq!(fast, ril_sat::EquivResult::Equivalent);
        }
        // A wrong key on a dirty cone must still be caught incrementally.
        let lut_bits = locked
            .keys
            .indices_where(|k| matches!(k, crate::key::KeyBitKind::LutConfig { .. }));
        let mut wrong = locked.keys.bits().to_vec();
        wrong[lut_bits[0]] = !wrong[lut_bits[0]];
        let delta = crate::morph::MorphDelta::between(locked.keys.bits(), &wrong);
        assert!(matches!(
            verifier.verify_after(&delta, &wrong).unwrap(),
            ril_sat::EquivResult::Inequivalent { .. }
        ));
        // Empty delta: vacuous pass, no extra solver query.
        let checks = verifier.checks();
        assert_eq!(
            verifier
                .verify_after(&crate::morph::MorphDelta::default(), locked.keys.bits())
                .unwrap(),
            ril_sat::EquivResult::Equivalent
        );
        assert_eq!(verifier.checks(), checks);
    }

    #[test]
    fn locked_bench_round_trips_with_keyinputs() {
        let host = generators::adder(6);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(1)
            .obfuscate(&host)
            .unwrap();
        let text = ril_netlist::write_bench(&locked.netlist);
        let back = ril_netlist::parse_bench("locked", &text).unwrap();
        assert_eq!(back.key_inputs().len(), locked.key_width());
        assert_eq!(back.gate_count(), locked.netlist.gate_count());
    }
}
