//! Logarithmic banyan (butterfly) routing networks.
//!
//! An `N×N` banyan has `log2 N` stages of `N/2` two-line switch boxes —
//! `(N/2)·log2 N` boxes total, exactly the count the paper quotes. Each
//! box holds **one key bit and two MUXes** (straight or crossed); the
//! FullLock-style baseline box with its extra inverter and second key bit
//! is provided for the overhead/redundancy comparison of Section III-A.
//!
//! Stages are ordered from the most-significant pairing bit down to bit 0,
//! so the *last* stage pairs adjacent lines `(2j, 2j+1)` — the pair feeding
//! LUT `j` in a RIL-Block, which is what makes the cheap "swap + truth-table
//! -swap" dynamic-morphing move always available.

use rand::Rng;
use ril_netlist::{GateKind, NetId, Netlist, NetlistError};

/// Structural description of an `N×N` banyan network.
///
/// # Examples
///
/// ```
/// use ril_core::banyan::BanyanNetwork;
///
/// let net = BanyanNetwork::new(8);
/// assert_eq!(net.num_stages(), 3);
/// assert_eq!(net.num_keys(), 12); // (8/2) · log2 8
/// // All-straight keys realize the identity permutation.
/// assert_eq!(net.route(&vec![false; 12]), (0..8).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BanyanNetwork {
    n: usize,
    stage_bits: Vec<usize>,
}

impl BanyanNetwork {
    /// Creates an `n × n` network.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> BanyanNetwork {
        assert!(n >= 2 && n.is_power_of_two(), "banyan size must be 2^k ≥ 2");
        let stages = n.trailing_zeros() as usize;
        // MSB-first so the final stage pairs adjacent lines.
        let stage_bits = (0..stages).rev().collect();
        BanyanNetwork { n, stage_bits }
    }

    /// Line count.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Stage count (`log2 N`).
    pub fn num_stages(&self) -> usize {
        self.stage_bits.len()
    }

    /// Switch boxes per stage (`N/2`).
    pub fn boxes_per_stage(&self) -> usize {
        self.n / 2
    }

    /// Total key bits (= total switch boxes for RIL boxes).
    pub fn num_keys(&self) -> usize {
        self.num_stages() * self.boxes_per_stage()
    }

    /// The two line indices joined by `switchbox` in `stage`.
    pub fn box_lines(&self, stage: usize, switchbox: usize) -> (usize, usize) {
        let bit = self.stage_bits[stage];
        // Boxes are ordered by the line index with `bit` removed.
        let low_mask = (1usize << bit) - 1;
        let lo_part = switchbox & low_mask;
        let hi_part = (switchbox & !low_mask) << 1;
        let i = hi_part | lo_part;
        (i, i | (1 << bit))
    }

    /// Key-vector index of the box at (`stage`, `switchbox`).
    pub fn key_index(&self, stage: usize, switchbox: usize) -> usize {
        stage * self.boxes_per_stage() + switchbox
    }

    /// Key index of the last-stage box feeding the adjacent pair
    /// `(2*pair, 2*pair + 1)`.
    pub fn last_stage_key_for_pair(&self, pair: usize) -> usize {
        self.key_index(self.num_stages() - 1, pair)
    }

    /// Computes the permutation realized by `keys`: `perm[input] = output`.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.num_keys()`.
    pub fn route(&self, keys: &[bool]) -> Vec<usize> {
        assert_eq!(keys.len(), self.num_keys(), "key width mismatch");
        // contents[line] = input currently riding on the line.
        let mut contents: Vec<usize> = (0..self.n).collect();
        for stage in 0..self.num_stages() {
            for b in 0..self.boxes_per_stage() {
                if keys[self.key_index(stage, b)] {
                    let (i, j) = self.box_lines(stage, b);
                    contents.swap(i, j);
                }
            }
        }
        let mut perm = vec![0; self.n];
        for (line, &input) in contents.iter().enumerate() {
            perm[input] = line;
        }
        perm
    }

    /// Searches for a key vector realizing `perm` (`perm[input] = output`).
    /// Exhaustive for ≤ 20 key bits, randomized otherwise. Banyan networks
    /// are "almost non-blocking": not every permutation is routable, in
    /// which case `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.width()`.
    pub fn find_keys<R: Rng>(
        &self,
        perm: &[usize],
        rng: &mut R,
        tries: usize,
    ) -> Option<Vec<bool>> {
        assert_eq!(perm.len(), self.n, "permutation width mismatch");
        let k = self.num_keys();
        if k <= 20 {
            for mask in 0u64..(1u64 << k) {
                let keys: Vec<bool> = (0..k).map(|i| (mask >> i) & 1 == 1).collect();
                if self.route(&keys) == perm {
                    return Some(keys);
                }
            }
            None
        } else {
            for _ in 0..tries {
                let keys: Vec<bool> = (0..k).map(|_| rng.gen()).collect();
                if self.route(&keys) == perm {
                    return Some(keys);
                }
            }
            None
        }
    }

    /// Materializes the network in a netlist with the paper's RIL switch
    /// boxes: per box one key net and **two MUXes** (straight/cross).
    /// Returns the output nets (line order).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn materialize(
        &self,
        nl: &mut Netlist,
        inputs: &[NetId],
        key_nets: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        assert_eq!(inputs.len(), self.n, "input width mismatch");
        assert_eq!(key_nets.len(), self.num_keys(), "key width mismatch");
        let mut lines = inputs.to_vec();
        for stage in 0..self.num_stages() {
            for b in 0..self.boxes_per_stage() {
                let (i, j) = self.box_lines(stage, b);
                let k = key_nets[self.key_index(stage, b)];
                let oi = nl.add_gate_fresh(GateKind::Mux, &[k, lines[i], lines[j]], "swb")?;
                let oj = nl.add_gate_fresh(GateKind::Mux, &[k, lines[j], lines[i]], "swb")?;
                lines[i] = oi;
                lines[j] = oj;
            }
        }
        Ok(lines)
    }

    /// Materializes the network with FullLock-style switch boxes: **two key
    /// bits per box**, 3 MUXes plus an inverter. The second key optionally
    /// inverts one output — the redundancy the paper criticizes (a wrong
    /// inversion can be undone by a later box, multiplying correct keys).
    /// `key_nets` must hold `2 · num_keys()` nets (route keys then invert
    /// keys, stage-major).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn materialize_fulllock(
        &self,
        nl: &mut Netlist,
        inputs: &[NetId],
        key_nets: &[NetId],
    ) -> Result<Vec<NetId>, NetlistError> {
        assert_eq!(inputs.len(), self.n, "input width mismatch");
        assert_eq!(key_nets.len(), 2 * self.num_keys(), "key width mismatch");
        let mut lines = inputs.to_vec();
        for stage in 0..self.num_stages() {
            for b in 0..self.boxes_per_stage() {
                let (i, j) = self.box_lines(stage, b);
                let kr = key_nets[self.key_index(stage, b)];
                let ki = key_nets[self.num_keys() + self.key_index(stage, b)];
                let m1 = nl.add_gate_fresh(GateKind::Mux, &[kr, lines[i], lines[j]], "flb")?;
                let m2 = nl.add_gate_fresh(GateKind::Mux, &[kr, lines[j], lines[i]], "flb")?;
                let inv = nl.add_gate_fresh(GateKind::Not, &[m2], "flbi")?;
                let oj = nl.add_gate_fresh(GateKind::Mux, &[ki, m2, inv], "flb")?;
                lines[i] = m1;
                lines[j] = oj;
            }
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_netlist::Simulator;

    #[test]
    fn sizes_and_counts() {
        for (n, stages, keys) in [(2usize, 1usize, 1usize), (4, 2, 4), (8, 3, 12), (16, 4, 32)] {
            let net = BanyanNetwork::new(n);
            assert_eq!(net.num_stages(), stages);
            assert_eq!(net.num_keys(), keys, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        BanyanNetwork::new(6);
    }

    #[test]
    fn all_straight_is_identity() {
        for n in [2, 4, 8] {
            let net = BanyanNetwork::new(n);
            let id: Vec<usize> = (0..n).collect();
            assert_eq!(net.route(&vec![false; net.num_keys()]), id);
        }
    }

    #[test]
    fn last_stage_pairs_adjacent_lines() {
        let net = BanyanNetwork::new(8);
        let last = net.num_stages() - 1;
        for b in 0..4 {
            assert_eq!(net.box_lines(last, b), (2 * b, 2 * b + 1));
        }
    }

    #[test]
    fn single_last_stage_key_swaps_pair() {
        let net = BanyanNetwork::new(8);
        let mut keys = vec![false; net.num_keys()];
        keys[net.last_stage_key_for_pair(1)] = true;
        let perm = net.route(&keys);
        assert_eq!(perm[2], 3);
        assert_eq!(perm[3], 2);
        assert_eq!(perm[0], 0);
    }

    #[test]
    fn route_is_always_a_permutation() {
        let net = BanyanNetwork::new(8);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let keys: Vec<bool> = (0..net.num_keys()).map(|_| rng.gen()).collect();
            let mut perm = net.route(&keys);
            perm.sort_unstable();
            assert_eq!(perm, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn find_keys_inverts_route() {
        let net = BanyanNetwork::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let keys: Vec<bool> = (0..net.num_keys()).map(|_| rng.gen()).collect();
            let perm = net.route(&keys);
            let found = net
                .find_keys(&perm, &mut rng, 0)
                .expect("own perm routable");
            assert_eq!(net.route(&found), perm);
        }
    }

    #[test]
    fn some_permutation_is_blocked() {
        // Banyans are not rearrangeable: some permutation of 4 lines must
        // be unroutable with only 4 key bits (16 settings < 24 perms).
        let net = BanyanNetwork::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut blocked = 0;
        let perms4: Vec<Vec<usize>> = permutations(&[0, 1, 2, 3]);
        for p in &perms4 {
            if net.find_keys(p, &mut rng, 0).is_none() {
                blocked += 1;
            }
        }
        assert!(blocked > 0, "every permutation routable?");
        assert!(blocked < 24, "no permutation routable?");
    }

    fn permutations(xs: &[usize]) -> Vec<Vec<usize>> {
        if xs.len() <= 1 {
            return vec![xs.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            let rest: Vec<usize> = xs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &v)| v)
                .collect();
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn materialized_network_matches_route_model() {
        let net = BanyanNetwork::new(4);
        let mut nl = Netlist::new("banyan4");
        let inputs: Vec<NetId> = (0..4)
            .map(|i| nl.add_input(format!("in{i}")).unwrap())
            .collect();
        let keys: Vec<NetId> = (0..net.num_keys())
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let outs = net.materialize(&mut nl, &inputs, &keys).unwrap();
        for &o in &outs {
            nl.mark_output(o);
        }
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let keybits: Vec<bool> = (0..net.num_keys()).map(|_| rng.gen()).collect();
            let perm = net.route(&keybits);
            // One-hot input marking: input i high, rest low → appears at
            // output perm[i].
            for (i, &target) in perm.iter().enumerate() {
                let data: Vec<bool> = (0..4).map(|x| x == i).collect();
                let outbits = sim.eval_pattern(&nl, &data, &keybits);
                for (o, &bit) in outbits.iter().enumerate() {
                    assert_eq!(bit, o == target, "input {i} key {keybits:?}");
                }
            }
        }
    }

    #[test]
    fn ril_box_is_half_the_muxes_of_fulllock() {
        let net = BanyanNetwork::new(8);
        let mut nl1 = Netlist::new("ril");
        let ins: Vec<NetId> = (0..8)
            .map(|i| nl1.add_input(format!("i{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..net.num_keys())
            .map(|i| nl1.add_key_input(format!("k{i}")).unwrap())
            .collect();
        net.materialize(&mut nl1, &ins, &ks).unwrap();
        let ril_gates = nl1.gate_count();

        let mut nl2 = Netlist::new("fulllock");
        let ins2: Vec<NetId> = (0..8)
            .map(|i| nl2.add_input(format!("i{i}")).unwrap())
            .collect();
        let ks2: Vec<NetId> = (0..2 * net.num_keys())
            .map(|i| nl2.add_key_input(format!("k{i}")).unwrap())
            .collect();
        net.materialize_fulllock(&mut nl2, &ins2, &ks2).unwrap();
        let fl_gates = nl2.gate_count();
        assert_eq!(ril_gates, 24); // 12 boxes × 2 MUXes
        assert_eq!(fl_gates, 48); // 12 boxes × (3 MUXes + inverter)
        assert!(nl2.transistor_estimate() > nl1.transistor_estimate());
    }

    #[test]
    fn fulllock_inversion_key_flips_one_output() {
        let net = BanyanNetwork::new(2);
        let mut nl = Netlist::new("fl2");
        let ins: Vec<NetId> = (0..2)
            .map(|i| nl.add_input(format!("i{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..2)
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let outs = net.materialize_fulllock(&mut nl, &ins, &ks).unwrap();
        for o in outs {
            nl.mark_output(o);
        }
        let mut sim = Simulator::new(&nl).unwrap();
        // route straight, no invert: (a, b) -> (a, b)
        let o = sim.eval_pattern(&nl, &[true, false], &[false, false]);
        assert_eq!(o, vec![true, false]);
        // invert key flips line 1.
        let o = sim.eval_pattern(&nl, &[true, false], &[false, true]);
        assert_eq!(o, vec![true, true]);
    }
}
