//! Logical key-programmable LUTs and their SAT-simulation encodings.
//!
//! Two netlist materializations of a key-configured 2-input LUT, both from
//! the paper's Fig. 1 / Section II-B:
//!
//! * [`materialize_lut2`] — the compact **3-MUX select tree** over 4 key
//!   inputs (the encoding that makes MESO-style primitives cheap for the
//!   *attacker* to model);
//! * [`materialize_meso`] — the bulky **8-gates + 7-MUX** encoding of a
//!   statically-programmed MESO polymorphic device (3 key inputs choosing
//!   among 8 functions), reproduced to demonstrate the paper's motivation
//!   experiment: the same device, re-encoded as a LUT, falls to the SAT
//!   attack far faster.

use ril_netlist::{GateKind, NetId, Netlist, NetlistError};

/// Swaps the roles of inputs A and B in a 4-bit truth table
/// (minterm `a + 2b` convention): bits 1 and 2 exchange.
pub fn swap_lut_inputs(tt: u8) -> u8 {
    (tt & 0b1001) | ((tt & 0b0010) << 1) | ((tt & 0b0100) >> 1)
}

/// Complements a LUT function (`!f`).
pub fn complement_lut(tt: u8) -> u8 {
    !tt & 0xf
}

/// Materializes a key-programmable 2-input LUT as the 3-MUX select tree of
/// Fig. 1. `keys[i]` is the key net holding the output for minterm
/// `a + 2b = i`. Returns the LUT output net.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn materialize_lut2(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    keys: [NetId; 4],
) -> Result<NetId, NetlistError> {
    // Select between minterms along A, then along B.
    let m0 = nl.add_gate_fresh(GateKind::Mux, &[a, keys[0], keys[1]], "lutm")?; // b = 0
    let m1 = nl.add_gate_fresh(GateKind::Mux, &[a, keys[2], keys[3]], "lutm")?; // b = 1
    nl.add_gate_fresh(GateKind::Mux, &[b, m0, m1], "luto")
}

/// Materializes a key-programmable M-input LUT as a full binary MUX tree:
/// `2^M` key inputs at the leaves, selected by `inputs[0]` (fastest) up to
/// `inputs[M-1]`. `keys[i]` holds the output for the minterm whose bit `j`
/// is `inputs[j]`'s value. The paper's Section IV-B notes that growing the
/// LUT beyond 2 inputs fortifies SAT-hardness while the shared write
/// circuit keeps the incremental overhead low.
///
/// Returns the LUT output net.
///
/// # Errors
///
/// Propagates netlist construction errors.
///
/// # Panics
///
/// Panics if `keys.len() != 2^inputs.len()` or `inputs` is empty.
pub fn materialize_lutm(
    nl: &mut Netlist,
    inputs: &[NetId],
    keys: &[NetId],
) -> Result<NetId, NetlistError> {
    assert!(!inputs.is_empty(), "LUT needs at least one input");
    assert_eq!(keys.len(), 1 << inputs.len(), "need 2^M key nets");
    let mut layer: Vec<NetId> = keys.to_vec();
    for &sel in inputs {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(nl.add_gate_fresh(GateKind::Mux, &[sel, pair[0], pair[1]], "lutm")?);
        }
        layer = next;
    }
    Ok(layer[0])
}

/// The 8 boolean functions a statically-programmed MESO device offers, as
/// truth tables in the `a + 2b` convention, indexed by the 3-bit selector.
pub const MESO_FUNCTIONS: [u8; 8] = [
    0b1000, // AND
    0b1110, // OR
    0b0111, // NAND
    0b0001, // NOR
    0b0110, // XOR
    0b1001, // XNOR
    0b1100, // A (buffer)
    0b0011, // NOT A
];

/// Materializes a statically-programmed MESO polymorphic device in the
/// paper's original SAT-simulation form: the 8 candidate functions
/// instantiated as real gates, selected by a 7-MUX binary tree over 3 key
/// inputs. Returns the output net.
///
/// # Errors
///
/// Propagates netlist construction errors.
pub fn materialize_meso(
    nl: &mut Netlist,
    a: NetId,
    b: NetId,
    keys: [NetId; 3],
) -> Result<NetId, NetlistError> {
    let mut leaves = Vec::with_capacity(8);
    for &tt in &MESO_FUNCTIONS {
        let kind = match tt {
            0b1000 => GateKind::And,
            0b1110 => GateKind::Or,
            0b0111 => GateKind::Nand,
            0b0001 => GateKind::Nor,
            0b0110 => GateKind::Xor,
            0b1001 => GateKind::Xnor,
            other => GateKind::Lut2(other),
        };
        let ins: Vec<NetId> = match kind {
            GateKind::Lut2(_) => vec![a, b],
            _ => vec![a, b],
        };
        leaves.push(nl.add_gate_fresh(kind, &ins, "meso")?);
    }
    // 7-MUX binary selection tree, key 0 = LSB.
    let mut layer = leaves;
    for &k in &keys {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(nl.add_gate_fresh(GateKind::Mux, &[k, pair[0], pair[1]], "mesom")?);
        }
        layer = next;
    }
    Ok(layer[0])
}

/// The MESO selector value whose function equals truth table `tt`, if any.
pub fn meso_selector_for(tt: u8) -> Option<u8> {
    MESO_FUNCTIONS
        .iter()
        .position(|&f| f == tt & 0xf)
        .map(|p| p as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_netlist::Simulator;

    fn lut_fixture(tt: u8) -> (Netlist, u8) {
        let mut nl = Netlist::new("lut_fixture");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let keys: Vec<NetId> = (0..4)
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let out = materialize_lut2(&mut nl, a, b, [keys[0], keys[1], keys[2], keys[3]]).unwrap();
        nl.mark_output(out);
        (nl, tt)
    }

    #[test]
    fn mux_tree_realizes_every_function() {
        for tt in 0u8..16 {
            let (nl, _) = lut_fixture(tt);
            let mut sim = Simulator::new(&nl).unwrap();
            let keys: Vec<bool> = (0..4).map(|i| (tt >> i) & 1 == 1).collect();
            for a in [false, true] {
                for b in [false, true] {
                    let out = sim.eval_pattern(&nl, &[a, b], &keys);
                    let expect = (tt >> ((a as u8) | ((b as u8) << 1))) & 1 == 1;
                    assert_eq!(out[0], expect, "tt={tt:04b} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn mux_tree_uses_exactly_three_muxes() {
        let (nl, _) = lut_fixture(0);
        let muxes = nl
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Mux)
            .count();
        assert_eq!(muxes, 3);
        assert_eq!(nl.gate_count(), 3);
    }

    #[test]
    fn lutm_generalizes_lut2() {
        // A 3-input LUT programmed with an arbitrary 8-bit table matches
        // direct truth-table evaluation for all inputs.
        for tt in [0b1011_0010u8, 0b0110_1001, 0xff, 0x00] {
            let mut nl = Netlist::new("lut3");
            let ins: Vec<NetId> = (0..3)
                .map(|i| nl.add_input(format!("x{i}")).unwrap())
                .collect();
            let keys: Vec<NetId> = (0..8)
                .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
                .collect();
            let out = materialize_lutm(&mut nl, &ins, &keys).unwrap();
            nl.mark_output(out);
            // 4 + 2 + 1 MUXes for a 3-input tree.
            assert_eq!(nl.gate_count(), 7);
            let mut sim = Simulator::new(&nl).unwrap();
            let keybits: Vec<bool> = (0..8).map(|i| (tt >> i) & 1 == 1).collect();
            for m in 0u8..8 {
                let data: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
                let got = sim.eval_pattern(&nl, &data, &keybits)[0];
                assert_eq!(got, (tt >> m) & 1 == 1, "tt={tt:08b} m={m:03b}");
            }
        }
    }

    #[test]
    fn lutm_matches_lut2_for_two_inputs() {
        for tt in 0u8..16 {
            let mut nl = Netlist::new("lutm2");
            let a = nl.add_input("a").unwrap();
            let b = nl.add_input("b").unwrap();
            let keys: Vec<NetId> = (0..4)
                .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
                .collect();
            let out = materialize_lutm(&mut nl, &[a, b], &keys).unwrap();
            nl.mark_output(out);
            let mut sim = Simulator::new(&nl).unwrap();
            let keybits: Vec<bool> = (0..4).map(|i| (tt >> i) & 1 == 1).collect();
            for m in 0u8..4 {
                let data: Vec<bool> = (0..2).map(|i| (m >> i) & 1 == 1).collect();
                let got = sim.eval_pattern(&nl, &data, &keybits)[0];
                assert_eq!(got, (tt >> m) & 1 == 1);
            }
        }
    }

    #[test]
    fn meso_encoding_has_fifteen_nodes() {
        let mut nl = Netlist::new("meso");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let keys: Vec<NetId> = (0..3)
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let out = materialize_meso(&mut nl, a, b, [keys[0], keys[1], keys[2]]).unwrap();
        nl.mark_output(out);
        // 8 function gates + 7 MUXes = 15 nodes (the "MUX with additional
        // 8 gates and 7 MUXes" of Section II-B).
        assert_eq!(nl.gate_count(), 15);
        let muxes = nl
            .gates()
            .filter(|(_, g)| g.kind() == GateKind::Mux)
            .count();
        assert_eq!(muxes, 7);
    }

    #[test]
    fn meso_realizes_its_eight_functions() {
        let mut nl = Netlist::new("meso");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let keys: Vec<NetId> = (0..3)
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let out = materialize_meso(&mut nl, a, b, [keys[0], keys[1], keys[2]]).unwrap();
        nl.mark_output(out);
        let mut sim = Simulator::new(&nl).unwrap();
        for sel in 0u8..8 {
            let tt = MESO_FUNCTIONS[sel as usize];
            let keybits: Vec<bool> = (0..3).map(|i| (sel >> i) & 1 == 1).collect();
            for av in [false, true] {
                for bv in [false, true] {
                    let got = sim.eval_pattern(&nl, &[av, bv], &keybits)[0];
                    let expect = (tt >> ((av as u8) | ((bv as u8) << 1))) & 1 == 1;
                    assert_eq!(got, expect, "sel={sel} a={av} b={bv}");
                }
            }
        }
    }

    #[test]
    fn selector_lookup() {
        assert_eq!(meso_selector_for(0b1000), Some(0)); // AND
        assert_eq!(meso_selector_for(0b0001), Some(3)); // NOR
        assert_eq!(meso_selector_for(0b1111), None); // const-1 not offered
    }

    #[test]
    fn input_swap_and_complement() {
        // XOR is symmetric; AND-NOT-B is not.
        assert_eq!(swap_lut_inputs(0b0110), 0b0110);
        assert_eq!(swap_lut_inputs(0b0010), 0b0100);
        assert_eq!(swap_lut_inputs(swap_lut_inputs(0b1101)), 0b1101);
        assert_eq!(complement_lut(0b1000), 0b0111);
        assert_eq!(complement_lut(complement_lut(0b1010)), 0b1010);
    }

    #[test]
    fn meso_tree_selection_order_is_lsb_first() {
        // Selector bit 0 must choose within adjacent leaf pairs.
        // Verified implicitly by meso_realizes_its_eight_functions, but
        // check one concrete case: sel=1 → OR.
        let mut nl = Netlist::new("meso");
        let a = nl.add_input("a").unwrap();
        let b = nl.add_input("b").unwrap();
        let keys: Vec<NetId> = (0..3)
            .map(|i| nl.add_key_input(format!("k{i}")).unwrap())
            .collect();
        let out = materialize_meso(&mut nl, a, b, [keys[0], keys[1], keys[2]]).unwrap();
        nl.mark_output(out);
        let mut sim = Simulator::new(&nl).unwrap();
        let got = sim.eval_pattern(&nl, &[true, false], &[true, false, false])[0];
        assert!(got); // OR(1,0) = 1
    }
}
