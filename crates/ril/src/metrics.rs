//! Security and overhead metrics.
//!
//! * **Output corruptibility** — how wrong the circuit behaves under wrong
//!   keys (the paper argues RIL-Blocks beat one-point-function locks here).
//! * **Overhead model** — MUX / transistor / MTJ accounting behind the
//!   Section III-A claim that a few `8×8×8` blocks cost ~3× less than
//!   75 `2×2` blocks while being strictly harder to attack.

use crate::block::RilBlockSpec;
use crate::obfuscate::LockedCircuit;
use rand::Rng;
use ril_netlist::NetlistError;

/// Output corruption of a locked circuit under random wrong keys: the mean
/// fraction of differing (pattern, output-bit) pairs across `keys_sampled`
/// random keys × `patterns` 64-pattern words.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn output_corruptibility<R: Rng>(
    locked: &LockedCircuit,
    keys_sampled: usize,
    patterns: usize,
    rng: &mut R,
) -> Result<f64, NetlistError> {
    let mut total = 0.0;
    for _ in 0..keys_sampled {
        let wrong = locked.keys.random_key(rng);
        total += keyed_corruption(locked, &wrong, patterns, rng)?;
    }
    Ok(total / keys_sampled.max(1) as f64)
}

/// Corruption of one specific candidate key vs. the correct key.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn keyed_corruption<R: Rng>(
    locked: &LockedCircuit,
    key: &[bool],
    patterns: usize,
    rng: &mut R,
) -> Result<f64, NetlistError> {
    use ril_netlist::Simulator;
    let mut sim = Simulator::new(&locked.netlist)?;
    let correct: Vec<u64> = locked.keys.as_words();
    let wrong: Vec<u64> = key.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
    let has_se = locked.netlist.net_id(crate::obfuscate::SE_PIN).is_some();
    let n_data = locked.netlist.data_inputs().len();
    let mut diff = 0u64;
    let mut total = 0u64;
    for _ in 0..patterns {
        let mut data: Vec<u64> = (0..n_data).map(|_| rng.gen()).collect();
        if has_se {
            // SE pin is the last data input; keep it low (functional mode).
            let last = data.len() - 1;
            data[last] = 0;
        }
        let a = sim.eval_words(&locked.netlist, &data, &correct);
        let b = sim.eval_words(&locked.netlist, &data, &wrong);
        for (x, y) in a.iter().zip(&b) {
            diff += (x ^ y).count_ones() as u64;
            total += 64;
        }
    }
    Ok(diff as f64 / total.max(1) as f64)
}

/// Hardware cost of one obfuscation configuration in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadEstimate {
    /// 2:1 MUX count (switch boxes × 2 + LUT select trees × 3 + SE stage).
    pub muxes: usize,
    /// MOS transistor estimate.
    pub transistors: usize,
    /// MTJ count (2 per memory cell, 4 cells + optional SE cell per LUT).
    pub mtjs: usize,
    /// Key bits.
    pub key_bits: usize,
}

/// Analytic overhead of `blocks` RIL-Blocks of shape `spec` (paper
/// Section III-A / IV-E accounting; independent of the host circuit).
pub fn ril_overhead(spec: &RilBlockSpec, blocks: usize) -> OverheadEstimate {
    let banyan_boxes = (spec.width / 2) * spec.width.trailing_zeros() as usize;
    let networks = if spec.double_routing { 2 } else { 1 };
    let luts = spec.luts();
    let mux_per_block = networks * banyan_boxes * 2
        + luts * 3
        + if spec.scan_obfuscation {
            luts // the SE output stage is one 2:1 MUX per LUT
        } else {
            0
        };
    // Paper: 32 MOS + 4 MTJ per LUT memory column (2 MTJs per cell ×
    // (4 + SE) cells); each MUX ≈ 6 T (transmission gate + driver).
    let cells_per_lut = 4 + usize::from(spec.scan_obfuscation);
    let transistor_per_block = mux_per_block * 6 + luts * 32;
    let mtj_per_block = luts * cells_per_lut * 2;
    OverheadEstimate {
        muxes: blocks * mux_per_block,
        transistors: blocks * transistor_per_block,
        mtjs: blocks * mtj_per_block,
        key_bits: blocks * spec.keys_per_block(),
    }
}

/// Per-key-bit observability: for each key bit, the fraction of
/// (pattern, output-bit) pairs that flip when only that bit is toggled
/// away from the correct key. Bits with zero observability are
/// SAT-attack-free lunch (they can never be learned from I/O); RIL-Blocks'
/// routing symmetry makes *pairs* of bits jointly unobservable while every
/// functional bit stays individually active.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn key_bit_observability<R: Rng>(
    locked: &LockedCircuit,
    patterns: usize,
    rng: &mut R,
) -> Result<Vec<f64>, NetlistError> {
    let mut out = Vec::with_capacity(locked.keys.len());
    let correct = locked.keys.bits().to_vec();
    for bit in 0..correct.len() {
        let mut flipped = correct.clone();
        flipped[bit] = !flipped[bit];
        out.push(keyed_corruption(locked, &flipped, patterns, rng)?);
    }
    Ok(out)
}

/// Exhaustively counts functionally equivalent keys of a locked design by
/// enumerating the whole key space (only feasible for ≤ `max_bits` key
/// bits; returns `None` beyond that). Equivalence is judged by
/// `patterns × 64` random vectors — probabilistic, but false positives are
/// astronomically unlikely for non-trivial circuits.
///
/// The paper's Section III-A argues FullLock's switch-box inverter inflates
/// this count (a wrong inversion can be undone downstream); the
/// `key_redundancy` bench measures exactly that.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn count_equivalent_keys(
    locked: &LockedCircuit,
    max_bits: usize,
    patterns: usize,
) -> Result<Option<usize>, NetlistError> {
    let k = locked.keys.len();
    if k > max_bits || k >= usize::BITS as usize {
        return Ok(None);
    }
    let mut count = 0usize;
    for mask in 0usize..(1 << k) {
        let key: Vec<bool> = (0..k).map(|i| (mask >> i) & 1 == 1).collect();
        if locked.equivalent_under_key(&key, patterns)? {
            count += 1;
        }
    }
    Ok(Some(count))
}

/// The Section III-A comparison: `75 × 2×2` vs `3 × 8×8×8`.
pub fn paper_overhead_comparison() -> (OverheadEstimate, OverheadEstimate) {
    (
        ril_overhead(&RilBlockSpec::size_2x2(), 75),
        ril_overhead(&RilBlockSpec::size_8x8x8(), 3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscate::Obfuscator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_netlist::generators;

    #[test]
    fn ril_blocks_have_high_corruptibility() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_8x8())
            .seed(2)
            .obfuscate(&host)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let c = output_corruptibility(&locked, 8, 4, &mut rng).unwrap();
        assert!(c > 0.02, "corruption {c} too low");
    }

    #[test]
    fn correct_key_has_zero_corruption() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(3)
            .obfuscate(&host)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let c = keyed_corruption(&locked, locked.keys.bits(), 8, &mut rng).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn overhead_of_big_blocks_beats_many_small_ones() {
        let (small, big) = paper_overhead_comparison();
        // Section III-A: ~3× lower overhead for 3 × 8×8×8 vs 75 × 2×2.
        let ratio = small.muxes as f64 / big.muxes as f64;
        assert!(ratio > 1.5, "mux ratio {ratio}");
        assert!(small.transistors > big.transistors);
        // And the big blocks carry more key material (they are harder).
        assert!(big.key_bits > 75); // 3 × 40 = 120
    }

    #[test]
    fn key_bit_observability_profile() {
        let host = generators::adder(8);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .blocks(2)
            .seed(12)
            .obfuscate(&host)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = key_bit_observability(&locked, 8, &mut rng).unwrap();
        assert_eq!(obs.len(), locked.key_width());
        // LUT config bits are individually observable (flipping one changes
        // a truth-table entry); at least most bits must corrupt something.
        let active = obs.iter().filter(|&&o| o > 0.0).count();
        assert!(
            active >= locked.key_width() / 2,
            "only {active} active bits"
        );
        // And observability is a probability.
        assert!(obs.iter().all(|&o| (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn equivalent_key_counting() {
        // One 2x2 block: 5 key bits. At least the correct key and its
        // "swap routing + swap LUT halves" twin are equivalent.
        let host = generators::adder(6);
        let locked = Obfuscator::new(RilBlockSpec::size_2x2())
            .seed(4)
            .obfuscate(&host)
            .unwrap();
        let n = count_equivalent_keys(&locked, 12, 8).unwrap().unwrap();
        assert!(n >= 2, "at least the swap-symmetric twin: {n}");
        assert!(n < 32, "not every key can be correct: {n}");
        // Too-wide key spaces are refused, not enumerated.
        let wide = Obfuscator::new(RilBlockSpec::size_8x8())
            .seed(4)
            .obfuscate(&host)
            .unwrap();
        assert_eq!(count_equivalent_keys(&wide, 12, 4).unwrap(), None);
    }

    #[test]
    fn fulllock_inverter_multiplies_correct_keys() {
        // The Section III-A critique, measured: on identical wires, the
        // RIL routing network has a unique correct key, while FullLock's
        // inversion bits admit additional correct keys (compensating
        // inversions along a line).
        use crate::baselines::{fulllock_lock, ril_routing_lock};
        let host = generators::adder(6);
        let ril = ril_routing_lock(&host, 4, 9).unwrap();
        assert!(ril.verify(8).unwrap());
        let ril_eq = count_equivalent_keys(&ril, 16, 8).unwrap().unwrap();
        let fl = fulllock_lock(&host, 4, 9).unwrap();
        assert!(fl.verify(8).unwrap());
        let fl_eq = count_equivalent_keys(&fl, 16, 8).unwrap().unwrap();
        assert!(
            fl_eq > ril_eq,
            "FullLock correct keys ({fl_eq}) should exceed RIL routing ({ril_eq})"
        );
    }

    #[test]
    fn overhead_accounting_consistency() {
        let o = ril_overhead(&RilBlockSpec::size_2x2(), 1);
        // 1 switch box × 2 MUX + 1 LUT × 3 MUX = 5 MUXes.
        assert_eq!(o.muxes, 5);
        assert_eq!(o.key_bits, 5);
        assert_eq!(o.mtjs, 8);
        let o = ril_overhead(&RilBlockSpec::size_8x8x8().with_scan(true), 1);
        // 2 × 12 boxes × 2 + 4 LUT × 3 + 4 SE = 48 + 12 + 4 = 64.
        assert_eq!(o.muxes, 64);
        assert_eq!(o.key_bits, 44);
        assert_eq!(o.mtjs, 4 * 5 * 2);
    }
}
