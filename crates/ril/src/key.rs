//! Key bookkeeping for locked netlists.
//!
//! Every key bit of an obfuscated design — LUT configuration bits, banyan
//! routing bits, Scan-Enable bits — is tracked in a [`KeyStore`] in the
//! same order as the locked netlist's `KEYINPUT` declarations, together
//! with its provenance and correct value. The store models the
//! tamper-proof memory of the threat model: the defender holds it, the
//! attacker does not.

use rand::Rng;
use std::fmt;

/// Provenance of one key bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyBitKind {
    /// LUT configuration bit (Table II "K" bits).
    LutConfig {
        /// Block index.
        block: usize,
        /// LUT index within the block.
        lut: usize,
        /// Truth-table bit position (0–3, minterm `a + 2b`).
        bit: u8,
    },
    /// Banyan switch-box routing bit.
    Routing {
        /// Block index.
        block: usize,
        /// 0 = input-side network, 1 = output-side network.
        network: u8,
        /// Stage within the network.
        stage: usize,
        /// Switch box within the stage.
        switchbox: usize,
    },
    /// Scan-Enable obfuscation bit (`MTJ_SE`).
    ScanEnable {
        /// Block index.
        block: usize,
        /// LUT index within the block.
        lut: usize,
    },
    /// Key bit of a baseline locking scheme (XOR lock, Anti-SAT, SFLL…).
    Baseline,
}

impl fmt::Display for KeyBitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyBitKind::LutConfig { block, lut, bit } => {
                write!(f, "blk{block}.lut{lut}.k{bit}")
            }
            KeyBitKind::Routing {
                block,
                network,
                stage,
                switchbox,
            } => write!(f, "blk{block}.net{network}.s{stage}.b{switchbox}"),
            KeyBitKind::ScanEnable { block, lut } => write!(f, "blk{block}.lut{lut}.se"),
            KeyBitKind::Baseline => write!(f, "baseline"),
        }
    }
}

/// The correct key of a locked design, bit-ordered to match the locked
/// netlist's key inputs.
///
/// # Examples
///
/// ```
/// use ril_core::key::{KeyStore, KeyBitKind};
///
/// let mut keys = KeyStore::new();
/// keys.push(KeyBitKind::Baseline, true);
/// keys.push(KeyBitKind::Baseline, false);
/// assert_eq!(keys.bits(), &[true, false]);
/// assert_eq!(keys.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyStore {
    bits: Vec<bool>,
    kinds: Vec<KeyBitKind>,
}

impl KeyStore {
    /// Creates an empty store.
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Appends a key bit; returns its index.
    pub fn push(&mut self, kind: KeyBitKind, value: bool) -> usize {
        self.bits.push(value);
        self.kinds.push(kind);
        self.bits.len() - 1
    }

    /// Number of key bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The correct key bits, netlist key-input order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The provenance of each bit.
    pub fn kinds(&self) -> &[KeyBitKind] {
        &self.kinds
    }

    /// Mutable access to bit `i` (used by dynamic morphing).
    pub fn set_bit(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// Indices of bits with a given predicate on kind.
    pub fn indices_where(&self, mut pred: impl FnMut(&KeyBitKind) -> bool) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| pred(k))
            .map(|(i, _)| i)
            .collect()
    }

    /// The key as bit-parallel simulation words (all 64 lanes equal).
    pub fn as_words(&self) -> Vec<u64> {
        self.bits
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect()
    }

    /// A uniformly random *wrong-or-right* key of the same width (used by
    /// attack experiments and corruption measurements).
    pub fn random_key<R: Rng>(&self, rng: &mut R) -> Vec<bool> {
        (0..self.bits.len()).map(|_| rng.gen()).collect()
    }

    /// Serializes the key as a `0`/`1` string (netlist key-input order) —
    /// the on-disk format of the `rilock` CLI.
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Parses a `0`/`1` string (whitespace ignored) into a key-bit vector.
    ///
    /// # Errors
    ///
    /// Returns the offending character if anything but `0`/`1`/whitespace
    /// appears.
    pub fn parse_bit_string(text: &str) -> Result<Vec<bool>, char> {
        text.chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(other),
            })
            .collect()
    }

    /// Hamming distance between the correct key and `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn hamming_to(&self, other: &[bool]) -> usize {
        assert_eq!(other.len(), self.bits.len(), "key width mismatch");
        self.bits.iter().zip(other).filter(|(a, b)| a != b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_and_query() {
        let mut ks = KeyStore::new();
        assert!(ks.is_empty());
        let i0 = ks.push(
            KeyBitKind::LutConfig {
                block: 0,
                lut: 1,
                bit: 2,
            },
            true,
        );
        let i1 = ks.push(
            KeyBitKind::Routing {
                block: 0,
                network: 0,
                stage: 1,
                switchbox: 3,
            },
            false,
        );
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(ks.bits(), &[true, false]);
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn words_replicate_bits() {
        let mut ks = KeyStore::new();
        ks.push(KeyBitKind::Baseline, true);
        ks.push(KeyBitKind::Baseline, false);
        assert_eq!(ks.as_words(), vec![u64::MAX, 0]);
    }

    #[test]
    fn indices_filter_by_kind() {
        let mut ks = KeyStore::new();
        ks.push(KeyBitKind::Baseline, true);
        ks.push(KeyBitKind::ScanEnable { block: 0, lut: 0 }, false);
        ks.push(KeyBitKind::Baseline, true);
        let se = ks.indices_where(|k| matches!(k, KeyBitKind::ScanEnable { .. }));
        assert_eq!(se, vec![1]);
    }

    #[test]
    fn hamming_distance() {
        let mut ks = KeyStore::new();
        for b in [true, false, true] {
            ks.push(KeyBitKind::Baseline, b);
        }
        assert_eq!(ks.hamming_to(&[true, false, true]), 0);
        assert_eq!(ks.hamming_to(&[false, true, false]), 3);
    }

    #[test]
    fn random_key_has_same_width() {
        let mut ks = KeyStore::new();
        for _ in 0..10 {
            ks.push(KeyBitKind::Baseline, false);
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ks.random_key(&mut rng).len(), 10);
    }

    #[test]
    fn bit_string_round_trip() {
        let mut ks = KeyStore::new();
        for b in [true, false, false, true, true] {
            ks.push(KeyBitKind::Baseline, b);
        }
        let s = ks.to_bit_string();
        assert_eq!(s, "10011");
        assert_eq!(KeyStore::parse_bit_string(&s).unwrap(), ks.bits());
        assert_eq!(KeyStore::parse_bit_string("1 0\n0 11").unwrap(), ks.bits());
        assert_eq!(KeyStore::parse_bit_string("10x1"), Err('x'));
    }

    #[test]
    fn kind_display_is_informative() {
        let k = KeyBitKind::Routing {
            block: 2,
            network: 1,
            stage: 0,
            switchbox: 3,
        };
        assert_eq!(k.to_string(), "blk2.net1.s0.b3");
    }
}
