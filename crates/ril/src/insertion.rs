//! Gate-selection policies for RIL-Block insertion (paper Section III-D).
//!
//! The paper's headline policy is **random** selection — no restriction on
//! which gates are replaced, which both eases the designer's job and yields
//! high output corruptibility. A cone-targeted policy (the community's
//! traditional choice) is provided for the corruptibility comparison.
//!
//! Selections must be *structurally independent*: a RIL-Block connects all
//! of its inputs to all of its outputs, so two absorbed gates with a path
//! between them would create a combinational cycle. Independence is checked
//! against the current netlist, after any previously materialized blocks.

use crate::block::ObfuscateError;
use rand::seq::SliceRandom;
use rand::Rng;
use ril_netlist::cone::fanout_cone;
use ril_netlist::gate::truth_table_of;
use ril_netlist::{GateId, Netlist};

/// Gate-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertionPolicy {
    /// Uniform random selection over all replaceable gates (the paper's
    /// recommended policy).
    #[default]
    Random,
    /// Prefer gates with the largest transitive fan-out (deep in big logic
    /// cones) — the traditional policy the paper argues reduces output
    /// corruption.
    LargeCone,
}

/// Whether `gid` is replaceable by a 2-input LUT: a two-input boolean
/// function whose fan-ins are not key inputs.
pub fn is_replaceable(nl: &Netlist, gid: GateId) -> bool {
    let gate = nl.gate(gid);
    gate.inputs().len() == 2
        && truth_table_of(gate.kind()).is_some()
        && gate.inputs().iter().all(|&n| !nl.is_key_input(n))
}

/// Selects `count` replaceable, pairwise structurally independent gates
/// from the current netlist.
///
/// # Errors
///
/// Returns [`ObfuscateError::NotEnoughGates`] if no independent set of the
/// requested size exists along the sampled order.
pub fn select_gates<R: Rng>(
    nl: &Netlist,
    count: usize,
    policy: InsertionPolicy,
    rng: &mut R,
) -> Result<Vec<GateId>, ObfuscateError> {
    let mut candidates: Vec<GateId> = nl
        .gates()
        .filter(|(id, _)| is_replaceable(nl, *id))
        .map(|(id, _)| id)
        .collect();
    match policy {
        InsertionPolicy::Random => candidates.shuffle(rng),
        InsertionPolicy::LargeCone => {
            let mut sized: Vec<(usize, GateId)> = candidates
                .iter()
                .map(|&g| (fanout_cone(nl, nl.gate(g).output()).len(), g))
                .collect();
            // Largest cones first; shuffle within ties via random jitter.
            sized.sort_by_key(|&(size, _)| std::cmp::Reverse(size));
            candidates = sized.into_iter().map(|(_, g)| g).collect();
        }
    }

    let mut accepted: Vec<GateId> = Vec::with_capacity(count);
    let mut accepted_cones: Vec<Vec<GateId>> = Vec::with_capacity(count);
    for cand in candidates {
        if accepted.len() == count {
            break;
        }
        // No accepted gate may reach the candidate, nor vice versa.
        if accepted_cones.iter().any(|cone| cone.contains(&cand)) {
            continue;
        }
        let cand_cone = fanout_cone(nl, nl.gate(cand).output());
        if accepted.iter().any(|a| cand_cone.contains(a)) {
            continue;
        }
        accepted.push(cand);
        accepted_cones.push(cand_cone);
    }
    if accepted.len() < count {
        return Err(ObfuscateError::NotEnoughGates {
            needed: count,
            found: accepted.len(),
        });
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ril_netlist::generators;

    #[test]
    fn replaceable_filter() {
        let nl = generators::adder(4);
        let total = nl.gates().count();
        let replaceable = nl
            .gates()
            .filter(|(id, _)| is_replaceable(&nl, *id))
            .count();
        assert!(replaceable > 0);
        // Everything in the adder except the constant gate is 2-input.
        assert!(replaceable >= total - 2);
    }

    #[test]
    fn selected_gates_are_independent() {
        let nl = generators::multiplier(5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let sel = select_gates(&nl, 4, InsertionPolicy::Random, &mut rng).unwrap();
            assert_eq!(sel.len(), 4);
            for (i, &a) in sel.iter().enumerate() {
                let cone = fanout_cone(&nl, nl.gate(a).output());
                for (j, b) in sel.iter().enumerate() {
                    if i != j {
                        assert!(!cone.contains(b), "selected gates are dependent");
                    }
                }
            }
        }
    }

    #[test]
    fn random_policy_varies_with_seed() {
        let nl = generators::multiplier(5);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let s1 = select_gates(&nl, 4, InsertionPolicy::Random, &mut r1).unwrap();
        let s2 = select_gates(&nl, 4, InsertionPolicy::Random, &mut r2).unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn large_cone_policy_prefers_deep_gates() {
        let nl = generators::multiplier(5);
        let mut rng = StdRng::seed_from_u64(3);
        let sel = select_gates(&nl, 1, InsertionPolicy::LargeCone, &mut rng).unwrap();
        let chosen_cone = fanout_cone(&nl, nl.gate(sel[0]).output()).len();
        // The chosen gate's cone must be at least as large as the median.
        let mut sizes: Vec<usize> = nl
            .gates()
            .filter(|(id, _)| is_replaceable(&nl, *id))
            .map(|(id, _)| fanout_cone(&nl, nl.gate(id).output()).len())
            .collect();
        sizes.sort_unstable();
        assert!(chosen_cone >= sizes[sizes.len() / 2]);
    }

    #[test]
    fn impossible_request_errors() {
        let nl = generators::adder(2);
        let mut rng = StdRng::seed_from_u64(5);
        let err = select_gates(&nl, 1000, InsertionPolicy::Random, &mut rng).unwrap_err();
        assert!(matches!(err, ObfuscateError::NotEnoughGates { .. }));
    }
}
