//! Property tests for dynamic morphing (DESIGN.md §12): on *random*
//! locked circuits, any sequence of morph applications must preserve
//! functional I/O equivalence — checked formally through a warm
//! [`ril_sat::EquivSession`] miter, not just by simulation — and every
//! morph that applied a key-changing move must report `bits_changed > 0`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ril_core::{morph_all, LockedCircuit, MorphReport, Obfuscator, RilBlockSpec};
use ril_netlist::generators;
use ril_sat::EquivResult;
use std::time::Duration;

/// Locks a random host with `blocks` blocks of `spec`, retrying nearby
/// seeds when the sampled host is too small to place that many
/// independent blocks (a property of the host draw, not a failure).
fn random_locked(spec: RilBlockSpec, blocks: usize, seed: u64) -> Option<LockedCircuit> {
    let host = generators::random_circuit(seed, 8, 64, 6);
    (0..8).find_map(|bump| {
        Obfuscator::new(spec)
            .blocks(blocks)
            .seed(seed.wrapping_add(bump))
            .obfuscate(&host)
            .ok()
    })
}

/// A morph "applied a move" when it touched something that must, by
/// construction, flip at least one key bit: a pair swap always flips the
/// banyan bit it targets, and an output re-route only picks candidate
/// keys different from the current one. (`se_rerolled` alone does not
/// qualify — a re-roll may draw every bit's old value.)
fn key_changing_move_applied(report: &MorphReport) -> bool {
    report.pair_swaps > 0 || report.output_rerouted > 0 || report.complemented > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2×2 blocks with the scan stage on: every prefix of a morph
    /// sequence leaves the stored key functionally correct, verified
    /// against the original netlist through one warm miter session.
    #[test]
    fn repeated_morphs_preserve_equivalence_2x2(seed in 0u64..500, blocks in 1usize..4) {
        let Some(mut locked) = random_locked(
            RilBlockSpec::size_2x2().with_scan(true), blocks, seed,
        ) else {
            // Host too small for this (blocks, seed) draw — vacuous case.
            return;
        };
        let mut verifier = locked
            .formal_verifier(Some(Duration::from_secs(20)))
            .expect("combinational miter");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4d4f_5250);
        for round in 0..4 {
            let report = morph_all(&mut locked, &mut rng);
            if key_changing_move_applied(&report) {
                prop_assert!(
                    report.bits_changed > 0,
                    "round {round}: moves applied ({report:?}) but no bit changed"
                );
            }
            let bits = locked.keys.bits().to_vec();
            let verdict = verifier
                .check_with(&locked.key_assignment(&bits))
                .expect("known key inputs");
            prop_assert_eq!(
                verdict,
                EquivResult::Equivalent,
                "round {} broke functional equivalence ({:?})",
                round,
                report
            );
        }
    }

    /// 8×8×8 blocks (double routing): output re-routes and table
    /// complements must also keep the miter UNSAT on every round.
    #[test]
    fn repeated_morphs_preserve_equivalence_8x8x8(seed in 0u64..500) {
        let Some(mut locked) = random_locked(RilBlockSpec::size_8x8x8(), 1, seed) else {
            return;
        };
        let mut verifier = locked
            .formal_verifier(Some(Duration::from_secs(20)))
            .expect("combinational miter");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_7270);
        let mut applied = 0usize;
        for round in 0..3 {
            let report = morph_all(&mut locked, &mut rng);
            if key_changing_move_applied(&report) {
                applied += 1;
                prop_assert!(
                    report.bits_changed > 0,
                    "round {round}: moves applied ({report:?}) but no bit changed"
                );
            }
            let bits = locked.keys.bits().to_vec();
            let verdict = verifier
                .check_with(&locked.key_assignment(&bits))
                .expect("known key inputs");
            prop_assert_eq!(verdict, EquivResult::Equivalent, "round {} ({:?})", round, report);
        }
        // Three rounds of coin flips over ≥4 LUT pair-swap candidates:
        // at least one round must land a move, or the generator is broken.
        prop_assert!(applied > 0, "no morph round ever applied a move");
    }
}
