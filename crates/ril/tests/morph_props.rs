//! Property tests for dynamic morphing (DESIGN.md §12): on *random*
//! locked circuits, any sequence of morph applications must preserve
//! functional I/O equivalence — checked formally through a warm
//! [`ril_sat::EquivSession`] miter, not just by simulation — and every
//! morph that applied a key-changing move must report `bits_changed > 0`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ril_core::{
    morph_all, morph_all_delta, LockedCircuit, MorphDelta, MorphReport, Obfuscator, RilBlockSpec,
};
use ril_netlist::generators;
use ril_sat::EquivResult;
use std::time::Duration;

/// Locks a random host with `blocks` blocks of `spec`, retrying nearby
/// seeds when the sampled host is too small to place that many
/// independent blocks (a property of the host draw, not a failure).
fn random_locked(spec: RilBlockSpec, blocks: usize, seed: u64) -> Option<LockedCircuit> {
    let host = generators::random_circuit(seed, 8, 64, 6);
    (0..8).find_map(|bump| {
        Obfuscator::new(spec)
            .blocks(blocks)
            .seed(seed.wrapping_add(bump))
            .obfuscate(&host)
            .ok()
    })
}

/// A morph "applied a move" when it touched something that must, by
/// construction, flip at least one key bit: a pair swap always flips the
/// banyan bit it targets, and an output re-route only picks candidate
/// keys different from the current one. (`se_rerolled` alone does not
/// qualify — a re-roll may draw every bit's old value.)
fn key_changing_move_applied(report: &MorphReport) -> bool {
    report.pair_swaps > 0 || report.output_rerouted > 0 || report.complemented > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2×2 blocks with the scan stage on: every prefix of a morph
    /// sequence leaves the stored key functionally correct, verified
    /// against the original netlist through one warm miter session.
    #[test]
    fn repeated_morphs_preserve_equivalence_2x2(seed in 0u64..500, blocks in 1usize..4) {
        let Some(mut locked) = random_locked(
            RilBlockSpec::size_2x2().with_scan(true), blocks, seed,
        ) else {
            // Host too small for this (blocks, seed) draw — vacuous case.
            return;
        };
        let mut verifier = locked
            .formal_verifier(Some(Duration::from_secs(20)))
            .expect("combinational miter");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4d4f_5250);
        for round in 0..4 {
            let report = morph_all(&mut locked, &mut rng);
            if key_changing_move_applied(&report) {
                prop_assert!(
                    report.bits_changed > 0,
                    "round {round}: moves applied ({report:?}) but no bit changed"
                );
            }
            let bits = locked.keys.bits().to_vec();
            let verdict = verifier
                .check_with(&locked.key_assignment(&bits))
                .expect("known key inputs");
            prop_assert_eq!(
                verdict,
                EquivResult::Equivalent,
                "round {} broke functional equivalence ({:?})",
                round,
                report
            );
        }
    }

    /// 8×8×8 blocks (double routing): output re-routes and table
    /// complements must also keep the miter UNSAT on every round.
    #[test]
    fn repeated_morphs_preserve_equivalence_8x8x8(seed in 0u64..500) {
        let Some(mut locked) = random_locked(RilBlockSpec::size_8x8x8(), 1, seed) else {
            return;
        };
        let mut verifier = locked
            .formal_verifier(Some(Duration::from_secs(20)))
            .expect("combinational miter");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d6f_7270);
        let mut applied = 0usize;
        for round in 0..3 {
            let report = morph_all(&mut locked, &mut rng);
            if key_changing_move_applied(&report) {
                applied += 1;
                prop_assert!(
                    report.bits_changed > 0,
                    "round {round}: moves applied ({report:?}) but no bit changed"
                );
            }
            let bits = locked.keys.bits().to_vec();
            let verdict = verifier
                .check_with(&locked.key_assignment(&bits))
                .expect("known key inputs");
            prop_assert_eq!(verdict, EquivResult::Equivalent, "round {} ({:?})", round, report);
        }
        // Three rounds of coin flips over ≥4 LUT pair-swap candidates:
        // at least one round must land a move, or the generator is broken.
        prop_assert!(applied > 0, "no morph round ever applied a move");
    }

    /// Incremental post-morph verification (dirty cones only, one live
    /// solver) must reach the same verdict as a scratch full-miter check
    /// on every round of a random morph sequence — for both the correct
    /// morphed key and a perturbed (usually wrong) candidate.
    #[test]
    fn incremental_verifier_agrees_with_scratch(seed in 0u64..500, blocks in 1usize..3) {
        let Some(mut locked) = random_locked(
            RilBlockSpec::size_2x2().with_scan(true), blocks, seed,
        ) else {
            return;
        };
        let timeout = Some(Duration::from_secs(20));
        let mut inc = locked
            .incremental_verifier(timeout)
            .expect("combinational miter");
        // Baseline full check, then only dirty cones per round.
        prop_assert_eq!(
            inc.verify(locked.keys.bits()).expect("known ports"),
            EquivResult::Equivalent
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1235_DE17);
        let mut pending = MorphDelta::default();
        for round in 0..4 {
            let (_, delta) = morph_all_delta(&mut locked, &mut rng);
            // Half the rounds batch two deltas before re-checking, the
            // way a deployment re-verifies on a cadence, not per-morph.
            pending.merge(&delta);
            if round % 2 == 0 {
                continue;
            }
            let delta = std::mem::take(&mut pending);
            let bits = locked.keys.bits().to_vec();
            let fast = inc.verify_after(&delta, &bits).expect("known ports");
            let scratch = locked
                .verify_formal(&bits, timeout)
                .expect("known ports");
            prop_assert_eq!(&fast, &scratch, "round {}: verdicts diverge", round);
            prop_assert_eq!(&fast, &EquivResult::Equivalent, "round {}", round);

            // Perturb one key bit: both checkers must again agree (the
            // flipped cone is part of the re-checked dirty set by
            // construction of the delta).
            let flip = rng.gen_range(0..bits.len());
            let mut cand = bits.clone();
            cand[flip] = !cand[flip];
            let cand_delta = MorphDelta::between(&bits, &cand);
            let fast = inc.verify_after(&cand_delta, &cand).expect("known ports");
            let scratch = locked
                .verify_formal(&cand, timeout)
                .expect("known ports");
            // Verdict *kinds* must agree; concrete counterexamples may
            // legitimately differ between solver states.
            let agree = matches!(
                (&fast, &scratch),
                (EquivResult::Equivalent, EquivResult::Equivalent)
                    | (EquivResult::Inequivalent { .. }, EquivResult::Inequivalent { .. })
                    | (EquivResult::Unknown, EquivResult::Unknown)
            );
            prop_assert!(
                agree,
                "round {}: candidate verdicts diverge ({:?} vs {:?})",
                round, fast, scratch
            );
        }
    }
}
