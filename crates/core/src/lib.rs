pub fn placeholder() {}
