//! Trace exporters: a JSONL span log and Chrome trace-event JSON.
//!
//! The JSONL log is the canonical machine-readable artifact: one object
//! per span `begin`/`end` event (so open/close ordering and balance are
//! checkable) plus one final `metrics` record with every counter and
//! timing histogram. The Chrome document uses the trace-event format's
//! `B`/`E` duration events, which Perfetto and `chrome://tracing` load
//! directly.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::span::{FieldValue, TraceEvent, Tracer};

/// Escapes a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn field_value_into(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn fields_object_into(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        field_value_into(out, v);
    }
    out.push('}');
}

impl Tracer {
    /// Renders the JSONL span log. Line kinds:
    ///
    /// ```text
    /// {"ev":"begin","id":1,"parent":0,"name":"experiment","phase":"experiment","tid":1,"ts_us":0}
    /// {"ev":"end","id":1,"tid":1,"ts_us":152,"fields":{"cells":4}}
    /// {"ev":"metrics","counters":{...},"timings":{"sat.solve_wall":{"count":9,...}}}
    /// ```
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        self.with_events(|events| {
            for ev in events {
                match ev {
                    TraceEvent::Begin {
                        id,
                        parent,
                        name,
                        phase,
                        tid,
                        ts_us,
                    } => {
                        let _ = write!(
                            out,
                            r#"{{"ev":"begin","id":{id},"parent":{parent},"name":"{name}","phase":"{}","tid":{tid},"ts_us":{ts_us}}}"#,
                            phase.as_str()
                        );
                        out.push('\n');
                    }
                    TraceEvent::End {
                        id,
                        tid,
                        ts_us,
                        fields,
                    } => {
                        let _ = write!(out, r#"{{"ev":"end","id":{id},"tid":{tid},"ts_us":{ts_us},"fields":"#);
                        fields_object_into(&mut out, fields);
                        out.push_str("}\n");
                    }
                }
            }
        });
        out.push_str(&self.metrics_jsonl_line());
        out
    }

    /// The final `metrics` JSONL record (with trailing newline).
    fn metrics_jsonl_line(&self) -> String {
        let mut out = String::from(r#"{"ev":"metrics","counters":{"#);
        for (i, (name, value)) in self.metrics().counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#""{name}":{value}"#);
        }
        out.push_str(r#"},"timings":{"#);
        for (i, (name, snap)) in self.metrics().timings().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#""{name}":{{"count":{},"sum_us":{},"max_us":{},"buckets":["#,
                snap.count, snap.sum_us, snap.max_us
            );
            for (j, (bound, n)) in snap.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bound},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }

    /// Renders a Chrome trace-event JSON document (`B`/`E` duration
    /// events, one `pid`, real thread ids) loadable in Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from(r#"{"displayTimeUnit":"ms","traceEvents":["#);
        self.with_events(|events| {
            // End events name-match their Begin for viewer friendliness.
            let mut names: std::collections::HashMap<u64, (&'static str, &'static str)> =
                std::collections::HashMap::new();
            let mut first = true;
            for ev in events {
                if !first {
                    out.push(',');
                }
                first = false;
                match ev {
                    TraceEvent::Begin {
                        id,
                        name,
                        phase,
                        tid,
                        ts_us,
                        ..
                    } => {
                        names.insert(*id, (name, phase.as_str()));
                        let _ = write!(
                            out,
                            r#"{{"name":"{name}","cat":"{}","ph":"B","pid":1,"tid":{tid},"ts":{ts_us}}}"#,
                            phase.as_str()
                        );
                    }
                    TraceEvent::End {
                        id,
                        tid,
                        ts_us,
                        fields,
                    } => {
                        let (name, cat) = names.get(id).copied().unwrap_or(("?", "other"));
                        let _ = write!(
                            out,
                            r#"{{"name":"{name}","cat":"{cat}","ph":"E","pid":1,"tid":{tid},"ts":{ts_us},"args":"#
                        );
                        fields_object_into(&mut out, fields);
                        out.push('}');
                    }
                }
            }
        });
        out.push_str("]}");
        out
    }

    /// Writes [`Tracer::spans_jsonl`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_spans_jsonl(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.spans_jsonl())
    }

    /// Writes [`Tracer::chrome_trace_json`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.chrome_trace_json())
    }
}

#[cfg(test)]
mod tests {
    use crate::span::{span, Phase, Tracer};
    use std::time::Duration;

    fn traced() -> Tracer {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        {
            let _ctx = tracer.install(root);
            let mut sp = span("solve", Phase::Solve);
            sp.record_u64("conflicts", 7);
            sp.record_str("outcome", "sat \"ok\"");
            sp.record_f64("ratio", 0.5);
            sp.record_bool("cached", false);
        }
        tracer.metrics().counter_add("sat.solves", 1);
        tracer
            .metrics()
            .record_timing("sat.solve_wall", Duration::from_micros(42));
        tracer.close(root);
        tracer
    }

    #[test]
    fn jsonl_has_balanced_begin_end_plus_metrics() {
        let out = traced().spans_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // 2 begins + 2 ends + metrics
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains(r#""ev":"begin""#))
                .count(),
            2
        );
        assert_eq!(
            lines.iter().filter(|l| l.contains(r#""ev":"end""#)).count(),
            2
        );
        assert!(lines[4].contains(r#""ev":"metrics""#));
        assert!(lines[4].contains(r#""sat.solves":1"#));
        assert!(lines[4].contains(r#""sat.solve_wall":{"count":1"#));
        // Escaping of string fields.
        assert!(out.contains(r#""outcome":"sat \"ok\"""#), "{out}");
    }

    #[test]
    fn chrome_trace_shape() {
        let out = traced().chrome_trace_json();
        assert!(out.starts_with(r#"{"displayTimeUnit":"ms","traceEvents":["#));
        assert!(out.ends_with("]}"));
        assert_eq!(out.matches(r#""ph":"B""#).count(), 2);
        assert_eq!(out.matches(r#""ph":"E""#).count(), 2);
        assert!(out.contains(r#""cat":"solve""#));
        assert!(out.contains(r#""args":{"conflicts":7"#));
    }

    #[test]
    fn disabled_tracer_exports_empty_documents() {
        let tracer = Tracer::disabled();
        let root = tracer.open_root("experiment", Phase::Experiment);
        tracer.close(root);
        assert_eq!(tracer.spans_jsonl().lines().count(), 1); // metrics only
        let chrome = tracer.chrome_trace_json();
        assert!(chrome.contains(r#""traceEvents":[]"#));
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        {
            let _ctx = tracer.install(root);
            let mut sp = span("x", Phase::Other);
            sp.record_f64("bad", f64::NAN);
        }
        tracer.close(root);
        assert!(tracer.spans_jsonl().contains(r#""bad":null"#));
    }
}
