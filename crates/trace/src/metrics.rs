//! Monotonic counters and timing histograms.
//!
//! The registry is "lock-free-ish": name lookup takes a short
//! `RwLock` read, the increment itself is a plain atomic. Registering a
//! new name (first touch) takes the write lock once. Histograms bucket
//! durations by the power of two of their microsecond count, which is
//! plenty of resolution for "where did the solve time distribution move"
//! questions at zero allocation cost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of log₂ buckets: bucket `b` counts durations in
/// `[2^(b-1), 2^b)` microseconds (bucket 0 is `< 1 µs`), so 40 buckets
/// span sub-microsecond to ~2 weeks.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed timing histogram with atomic buckets.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, wall: Duration) {
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket a `us`-microsecond duration lands in.
    fn bucket_index(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// A consistent-enough copy for reporting (relaxed reads; exact only
    /// once recording has quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (upper_bound_us(i), n))
                })
                .collect(),
        }
    }
}

/// Exclusive upper bound (µs) of bucket `i`.
fn upper_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded durations.
    pub count: u64,
    /// Sum of all recorded durations, microseconds.
    pub sum_us: u64,
    /// Largest recorded duration, microseconds.
    pub max_us: u64,
    /// Non-empty buckets as `(exclusive upper bound µs, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean duration in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// A named registry of counters and timing histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    timings: RwLock<HashMap<&'static str, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it on first touch.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(c) = self.counters.read().expect("counter registry").get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .expect("counter registry")
            .entry(name)
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("counter registry")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Records a duration into the named histogram, creating it on first
    /// touch.
    pub fn record_timing(&self, name: &'static str, wall: Duration) {
        if let Some(h) = self.timings.read().expect("timing registry").get(name) {
            h.record(wall);
            return;
        }
        self.timings
            .write()
            .expect("timing registry")
            .entry(name)
            .or_default()
            .record(wall);
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counters
            .read()
            .expect("counter registry")
            .iter()
            .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// All timing histograms, sorted by name.
    pub fn timings(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut out: Vec<(&'static str, HistogramSnapshot)> = self
            .timings
            .read()
            .expect("timing registry")
            .iter()
            .map(|(k, v)| (*k, v.snapshot()))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.counter("sat.solves"), 0);
        m.counter_add("sat.solves", 2);
        m.counter_add("sat.solves", 3);
        m.counter_add("sat.conflicts", 1);
        assert_eq!(m.counter("sat.solves"), 5);
        assert_eq!(m.counters(), vec![("sat.conflicts", 1), ("sat.solves", 5)]);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0)); // bucket 0: < 1 µs
        h.record(Duration::from_micros(1)); // bucket 1: [1, 2)
        h.record(Duration::from_micros(3)); // bucket 2: [2, 4)
        h.record(Duration::from_micros(3));
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 7);
        assert_eq!(snap.max_us, 3);
        assert_eq!(snap.buckets, vec![(1, 1), (2, 1), (4, 2)]);
        assert!((snap.mean_us() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_huge_durations() {
        let h = Histogram::default();
        h.record(Duration::from_secs(10_000_000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].0, 1u64 << (HISTOGRAM_BUCKETS - 1));
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        m.counter_add("hits", 1);
                        m.record_timing("wall", Duration::from_micros(5));
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 8000);
        assert_eq!(m.timings()[0].1.count, 8000);
    }
}
