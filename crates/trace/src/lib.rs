//! # ril-trace — hierarchical span tracing and metrics
//!
//! The paper's entire evaluation is a claim about *where time goes*
//! (SAT-attack runtime exploding with RIL-Block count/size), so the suite
//! needs instrumentation that can attribute a two-hour table cell to CNF
//! encoding vs. DIP search vs. key confirmation — not just report its
//! wall clock. This crate provides that layer (DESIGN.md §9):
//!
//! - **Spans** ([`span`], [`Span`], [`Tracer`]): hierarchical timed
//!   regions following the taxonomy `experiment → cell → attack →
//!   iteration → solve`, tagged with a [`Phase`] so post-processing can
//!   bucket time into encode / solve / verify.
//! - **Context propagation**: a thread-local stack carries the active
//!   tracer and span, so deep layers (`ril_sat::Session::solve_under`)
//!   open child spans with a free-function call and zero API plumbing.
//!   Worker threads join an existing trace with [`Tracer::install`] —
//!   this is how `ril-bench` keeps parallel sweep cells attributable.
//! - **Metrics** ([`metrics::Metrics`]): named monotonic counters and
//!   log₂-bucketed timing histograms behind atomics (one short
//!   read-lock per touch, no allocation on the hot path).
//! - **Exporters** ([`export`]): a JSONL span log
//!   (`begin`/`end`/`metrics` records, integrity-checkable) and Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! Everything is a no-op when no tracer is installed on the current
//! thread (one thread-local read), and a [`Tracer::disabled`] tracer
//! installs nothing — the overhead knob the bench harness exposes as
//! `RIL_TRACE=0`.
//!
//! ```
//! use ril_trace::{span, Phase, SpanId, Tracer};
//!
//! let tracer = Tracer::new();
//! let root = tracer.open_root("experiment", Phase::Experiment);
//! {
//!     let _ctx = tracer.install(root); // current thread joins the trace
//!     let mut sp = span("solve", Phase::Solve);
//!     sp.record_u64("conflicts", 42);
//! } // span closed, context popped
//! tracer.close(root);
//! let jsonl = tracer.spans_jsonl();
//! assert!(jsonl.lines().count() >= 4); // 2 begins + 2 ends (+ metrics)
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

pub use metrics::{Histogram, HistogramSnapshot, Metrics};
pub use span::{
    counter, current, span, timing, ContextGuard, FieldValue, Phase, Span, SpanId, Tracer,
};
