//! Spans, the tracer, and thread-local context propagation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Metrics;

/// The span taxonomy: what layer of the system a span belongs to.
///
/// `Experiment`, `Cell`, `Attack` and `Iteration` are *structural* (they
/// show where in the hierarchy work happened); `Encode`, `Solve` and
/// `Verify` are the *cost phases* the per-phase breakdown buckets time
/// into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One experiment run (the trace root).
    Experiment,
    /// One sweep cell (lock + attack + scoring).
    Cell,
    /// One attack invocation (satattack, appsat, scansat, removal).
    Attack,
    /// One DIP iteration of an oracle-guided attack.
    Iteration,
    /// Problem construction: obfuscation, miter building, CNF encoding.
    Encode,
    /// A SAT solve call (miter, finder, or equivalence miter).
    Solve,
    /// Confirmation work: error estimation, ground-truth key checks.
    Verify,
    /// Anything else (oracle queries, worker scaffolding, …).
    Other,
}

impl Phase {
    /// The lowercase tag used in both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Experiment => "experiment",
            Phase::Cell => "cell",
            Phase::Attack => "attack",
            Phase::Iteration => "iteration",
            Phase::Encode => "encode",
            Phase::Solve => "solve",
            Phase::Verify => "verify",
            Phase::Other => "other",
        }
    }

    /// Parses the tag back (for trace post-processors).
    pub fn parse(s: &str) -> Option<Phase> {
        Some(match s {
            "experiment" => Phase::Experiment,
            "cell" => Phase::Cell,
            "attack" => Phase::Attack,
            "iteration" => Phase::Iteration,
            "encode" => Phase::Encode,
            "solve" => Phase::Solve,
            "verify" => Phase::Verify,
            "other" => Phase::Other,
            _ => return None,
        })
    }
}

/// A value attached to a span at close time.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (non-finite values export as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on export).
    Str(String),
}

/// Identifier of an open span. `SpanId::NONE` (id 0) marks "no span" —
/// the root's parent, and everything a disabled tracer hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The null span id.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The raw id (0 = none).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One record in the trace buffer. Begin and end are separate events so
/// the JSONL export preserves real open/close ordering (and so an
/// integrity checker can verify the pairs balance).
#[derive(Debug)]
pub(crate) enum TraceEvent {
    Begin {
        id: u64,
        parent: u64,
        name: &'static str,
        phase: Phase,
        tid: u64,
        ts_us: u64,
    },
    End {
        id: u64,
        tid: u64,
        ts_us: u64,
        fields: Vec<(&'static str, FieldValue)>,
    },
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    start: Instant,
    next_id: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Metrics,
}

/// A handle to one trace: a shared event buffer plus a metrics registry.
/// Cloning is cheap (`Arc`); clones all feed the same trace.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

/// Stable small thread ids for the exporters (`ThreadId` has no stable
/// integer form). Assigned on first use per thread, process-wide.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The context stack: (tracer, open span) pairs. The top is the
    /// parent for [`span`] calls on this thread.
    static CONTEXT: RefCell<Vec<(Tracer, u64)>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, enabled tracer.
    pub fn new() -> Tracer {
        Tracer::with_enabled(true)
    }

    /// A tracer that records nothing: every open returns [`SpanId::NONE`],
    /// [`Tracer::install`] installs nothing, and the exporters emit empty
    /// documents. This is the `RIL_TRACE=0` path; its cost is one branch.
    pub fn disabled() -> Tracer {
        Tracer::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                enabled,
                start: Instant::now(),
                next_id: AtomicU64::new(1),
                events: Mutex::new(Vec::new()),
                metrics: Metrics::new(),
            }),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Microseconds since the tracer was created.
    fn now_us(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    fn push_event(&self, ev: TraceEvent) {
        self.inner.events.lock().expect("trace buffer").push(ev);
    }

    pub(crate) fn with_events<R>(&self, f: impl FnOnce(&[TraceEvent]) -> R) -> R {
        f(&self.inner.events.lock().expect("trace buffer"))
    }

    /// The tracer's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Opens a span with no parent — the experiment root. The caller owns
    /// closing it with [`Tracer::close`] (an explicit handle rather than a
    /// guard, so it can outlive a `catch_unwind` boundary).
    pub fn open_root(&self, name: &'static str, phase: Phase) -> SpanId {
        SpanId(self.open_raw(0, name, phase))
    }

    fn open_raw(&self, parent: u64, name: &'static str, phase: Phase) -> u64 {
        if !self.inner.enabled {
            return 0;
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.push_event(TraceEvent::Begin {
            id,
            parent,
            name,
            phase,
            tid: tid(),
            ts_us: self.now_us(),
        });
        id
    }

    /// Closes an explicitly opened span with no extra fields.
    pub fn close(&self, id: SpanId) {
        self.close_with(id, Vec::new());
    }

    /// Closes an explicitly opened span, attaching `fields`.
    pub fn close_with(&self, id: SpanId, fields: Vec<(&'static str, FieldValue)>) {
        if id.is_none() || !self.inner.enabled {
            return;
        }
        self.push_event(TraceEvent::End {
            id: id.0,
            tid: tid(),
            ts_us: self.now_us(),
            fields,
        });
    }

    /// Installs `(self, parent)` as the current thread's trace context
    /// until the returned guard drops: [`span`] calls on this thread
    /// become children of `parent`. This is how sweep worker threads join
    /// the experiment's trace. No-op for disabled tracers.
    pub fn install(&self, parent: SpanId) -> ContextGuard {
        if !self.inner.enabled {
            return ContextGuard { pushed: false };
        }
        CONTEXT.with(|c| c.borrow_mut().push((self.clone(), parent.0)));
        ContextGuard { pushed: true }
    }

    /// Opens a span under an explicit parent *and* installs it as the
    /// current thread's context until the returned [`Span`] drops.
    pub fn span_under(&self, parent: SpanId, name: &'static str, phase: Phase) -> Span {
        if !self.inner.enabled {
            return Span::noop();
        }
        let id = self.open_raw(parent.0, name, phase);
        CONTEXT.with(|c| c.borrow_mut().push((self.clone(), id)));
        Span {
            state: Some(SpanState {
                tracer: self.clone(),
                id,
                fields: Vec::new(),
            }),
        }
    }
}

/// Pops the thread's trace context on drop (see [`Tracer::install`]).
#[must_use = "dropping the guard immediately uninstalls the context"]
#[derive(Debug)]
pub struct ContextGuard {
    pushed: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.pushed {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

#[derive(Debug)]
struct SpanState {
    tracer: Tracer,
    id: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span. Closes (and pops the thread context it pushed) on drop —
/// including during panic unwinding, which is what keeps span logs
/// balanced when an experiment dies under `catch_unwind`.
#[must_use = "dropping the span immediately closes it"]
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// A span that records nothing (no tracer in scope).
    pub fn noop() -> Span {
        Span { state: None }
    }

    /// Whether this span actually records. Use to skip field formatting
    /// work when tracing is off.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// This span's id ([`SpanId::NONE`] for no-op spans).
    pub fn id(&self) -> SpanId {
        SpanId(self.state.as_ref().map_or(0, |s| s.id))
    }

    /// Attaches an integer field (emitted on close).
    pub fn record_u64(&mut self, key: &'static str, value: u64) {
        if let Some(s) = &mut self.state {
            s.fields.push((key, FieldValue::U64(value)));
        }
    }

    /// Attaches a float field (emitted on close).
    pub fn record_f64(&mut self, key: &'static str, value: f64) {
        if let Some(s) = &mut self.state {
            s.fields.push((key, FieldValue::F64(value)));
        }
    }

    /// Attaches a boolean field (emitted on close).
    pub fn record_bool(&mut self, key: &'static str, value: bool) {
        if let Some(s) = &mut self.state {
            s.fields.push((key, FieldValue::Bool(value)));
        }
    }

    /// Attaches a string field (emitted on close).
    pub fn record_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(s) = &mut self.state {
            s.fields.push((key, FieldValue::Str(value.into())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
            s.tracer.close_with(SpanId(s.id), s.fields);
        }
    }
}

/// Opens a child span of the current thread's trace context, or a no-op
/// span when no context is installed. This is the only call the deep
/// layers (solver, attacks) need.
pub fn span(name: &'static str, phase: Phase) -> Span {
    let Some((tracer, parent)) = top() else {
        return Span::noop();
    };
    let id = tracer.open_raw(parent, name, phase);
    CONTEXT.with(|c| c.borrow_mut().push((tracer.clone(), id)));
    Span {
        state: Some(SpanState {
            tracer,
            id,
            fields: Vec::new(),
        }),
    }
}

/// The tracer installed on the current thread, if any.
pub fn current() -> Option<Tracer> {
    top().map(|(t, _)| t)
}

fn top() -> Option<(Tracer, u64)> {
    CONTEXT.with(|c| c.borrow().last().cloned())
}

/// Bumps a named monotonic counter on the current thread's tracer (no-op
/// without one).
pub fn counter(name: &'static str, delta: u64) {
    if let Some((tracer, _)) = top() {
        tracer.metrics().counter_add(name, delta);
    }
}

/// Records a duration into a named timing histogram on the current
/// thread's tracer (no-op without one).
pub fn timing(name: &'static str, wall: Duration) {
    if let Some((tracer, _)) = top() {
        tracer.metrics().record_timing(name, wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_summary(tracer: &Tracer) -> Vec<(String, u64)> {
        tracer.with_events(|evs| {
            evs.iter()
                .map(|e| match e {
                    TraceEvent::Begin { id, name, .. } => (format!("B:{name}"), *id),
                    TraceEvent::End { id, .. } => ("E".to_string(), *id),
                })
                .collect()
        })
    }

    #[test]
    fn spans_nest_and_balance() {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        assert!(!root.is_none());
        {
            let _ctx = tracer.install(root);
            let outer = span("attack", Phase::Attack);
            assert!(outer.is_active());
            {
                let mut inner = span("solve", Phase::Solve);
                inner.record_u64("conflicts", 3);
                assert_ne!(inner.id(), outer.id());
            }
        }
        tracer.close(root);
        let evs = event_summary(&tracer);
        assert_eq!(
            evs.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["B:experiment", "B:attack", "B:solve", "E", "E", "E"]
        );
        // Children close before parents: end order is solve, attack, root.
        assert_eq!(evs[3].1, evs[2].1);
        assert_eq!(evs[4].1, evs[1].1);
        assert_eq!(evs[5].1, evs[0].1);
    }

    #[test]
    fn parent_linkage_follows_context() {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        let _ctx = tracer.install(root);
        let cell = span("cell", Phase::Cell);
        let child = span("solve", Phase::Solve);
        let (cell_parent, child_parent) = tracer.with_events(|evs| {
            let parent_of = |target: u64| {
                evs.iter()
                    .find_map(|e| match e {
                        TraceEvent::Begin { id, parent, .. } if *id == target => Some(*parent),
                        _ => None,
                    })
                    .unwrap()
            };
            (parent_of(cell.id().raw()), parent_of(child.id().raw()))
        });
        assert_eq!(cell_parent, root.raw());
        assert_eq!(child_parent, cell.id().raw());
    }

    #[test]
    fn no_context_means_noop() {
        assert!(current().is_none());
        let sp = span("solve", Phase::Solve);
        assert!(!sp.is_active());
        assert!(sp.id().is_none());
        counter("x", 1); // must not panic
        timing("y", Duration::from_millis(1));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let root = tracer.open_root("experiment", Phase::Experiment);
        assert!(root.is_none());
        {
            let _ctx = tracer.install(root);
            assert!(current().is_none());
            let sp = span("solve", Phase::Solve);
            assert!(!sp.is_active());
        }
        tracer.close(root);
        assert_eq!(tracer.with_events(|e| e.len()), 0);
    }

    #[test]
    fn spans_balance_across_panic() {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ctx = tracer.install(root);
            let _sp = span("cell", Phase::Cell);
            let _inner = span("solve", Phase::Solve);
            panic!("boom");
        }));
        assert!(result.is_err());
        tracer.close(root);
        // Unwinding dropped the guards: begins and ends balance, and the
        // thread context is clean.
        let (begins, ends) = tracer.with_events(|evs| {
            let b = evs
                .iter()
                .filter(|e| matches!(e, TraceEvent::Begin { .. }))
                .count();
            (b, evs.len() - b)
        });
        assert_eq!(begins, 3);
        assert_eq!(ends, 3);
        assert!(current().is_none());
    }

    #[test]
    fn cross_thread_spans_share_one_trace() {
        let tracer = Tracer::new();
        let root = tracer.open_root("experiment", Phase::Experiment);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut sp = tracer.span_under(root, "cell", Phase::Cell);
                    sp.record_bool("worker", true);
                    let _child = span("solve", Phase::Solve);
                });
            }
        });
        tracer.close(root);
        let begins = tracer.with_events(|evs| {
            evs.iter()
                .filter(|e| matches!(e, TraceEvent::Begin { .. }))
                .count()
        });
        assert_eq!(begins, 1 + 4 * 2);
        // Distinct threads got distinct tids.
        let tids: std::collections::HashSet<u64> = tracer.with_events(|evs| {
            evs.iter()
                .filter_map(|e| match e {
                    TraceEvent::Begin {
                        name, tid, phase, ..
                    } if *name == "cell" && *phase == Phase::Cell => Some(*tid),
                    _ => None,
                })
                .collect()
        });
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn phase_tags_round_trip() {
        for phase in [
            Phase::Experiment,
            Phase::Cell,
            Phase::Attack,
            Phase::Iteration,
            Phase::Encode,
            Phase::Solve,
            Phase::Verify,
            Phase::Other,
        ] {
            assert_eq!(Phase::parse(phase.as_str()), Some(phase));
        }
        assert_eq!(Phase::parse("bogus"), None);
    }
}
