//! The activated-IC oracle of the threat model.
//!
//! The attacker owns an unlocked chip (correct key burned into tamper-proof
//! memory) and can apply inputs / observe outputs — for the combinational
//! threat model, through the scan interface. When the design carries the
//! Scan-Enable obfuscation, every scan access asserts `SE`, so the
//! responses the attacker records are corrupted by the hidden `MTJ_SE`
//! keys (paper Section III-C); normal functional operation (`SE = 0`) is
//! not observable bit-exactly by the attacker.

use ril_core::{LockedCircuit, SE_PIN};
use ril_netlist::{CompiledSim, GateKind, Netlist, NetlistError};
use std::collections::HashMap;

/// A failed oracle access, as seen by an attack.
///
/// The in-process [`Oracle`] never fails; [`OracleError`] exists for
/// remote oracle sources (`ril-serve`'s `RemoteOracle`), whose transport
/// and protocol failures must surface to the attack loop as typed values
/// rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The oracle's host rejected the request with a typed protocol error
    /// (unknown chip, rate limit, width mismatch, …).
    Protocol {
        /// Machine-readable error kind (the wire `kind` field).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The transport failed even after the client's bounded retries.
    Transport(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Protocol { kind, message } => {
                write!(f, "oracle protocol error [{kind}]: {message}")
            }
            OracleError::Transport(msg) => write!(f, "oracle transport error: {msg}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A black-box oracle an oracle-guided attack can query.
///
/// Implemented by the in-process [`Oracle`] (infallible) and by
/// `ril-serve`'s `RemoteOracle` (fallible: network transport, morphing
/// target). The attack drivers ([`crate::satattack::sat_attack`],
/// [`crate::appsat::appsat_attack`], …) only speak this trait, so they run
/// unchanged against either.
pub trait OracleSource {
    /// Number of data inputs per query (excluding any hidden `SE` pin).
    fn input_width(&self) -> usize;
    /// Number of outputs per response.
    fn output_width(&self) -> usize;
    /// Applies one input pattern through the scan interface and returns
    /// the response.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures for remote sources; in-process
    /// oracles never fail.
    fn try_query(&mut self, inputs: &[bool]) -> Result<Vec<bool>, OracleError>;
    /// Chip accesses issued so far (cache hits excluded).
    fn queries(&self) -> u64;
    /// The target's key generation, when the source exposes one (a
    /// morphing remote chip bumps it on every re-key). `None` for static
    /// in-process oracles.
    fn generation(&self) -> Option<u64> {
        None
    }
}

/// Repeated-DIP memo entries kept per oracle before insertion stops.
/// Bounds memory on adversarial query streams; typical attacks stay far
/// below it.
const MEMO_CAP: usize = 4096;

/// Query-counting black-box oracle over an activated chip.
///
/// Holds only the compiled evaluation plan ([`CompiledSim`]) plus the
/// burned-in key — not a second [`Netlist`] clone. Repeated scan queries
/// for the same pattern are served from a bounded memo cache (the chip is
/// deterministic between re-keys), counted via the `oracle.cache_hit`
/// trace counter instead of touching the chip.
#[derive(Debug, Clone)]
pub struct Oracle {
    sim: CompiledSim,
    key_words: Vec<u64>,
    has_se: bool,
    scan_corrupted: bool,
    queries: u64,
    memo: HashMap<Vec<bool>, Vec<bool>>,
    memo_hits: u64,
}

impl Oracle {
    /// Builds the oracle from a locked circuit (netlist + correct key).
    /// If the design has an `SE` pin, attack queries via
    /// [`Oracle::query`] assert it — the defense in action.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction failures.
    pub fn new(locked: &LockedCircuit) -> Result<Oracle, NetlistError> {
        let sim = CompiledSim::new(&locked.netlist)?;
        Ok(Oracle {
            sim,
            key_words: locked.keys.as_words(),
            has_se: locked.netlist.net_id(SE_PIN).is_some(),
            scan_corrupted: true,
            queries: 0,
            memo: HashMap::new(),
            memo_hits: 0,
        })
    }

    /// Disables the scan-corruption model (an idealized attacker with
    /// direct functional access — used to show the attacks *do* work when
    /// the SE defense is absent).
    pub fn without_scan_corruption(mut self) -> Oracle {
        self.scan_corrupted = false;
        self.memo.clear();
        self
    }

    /// Re-burns the key after a morph of the *same* design: the chip keeps
    /// its circuit but answers under the new key, so the memo cache is
    /// invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `locked`'s key width differs from the compiled design's.
    pub fn rekey(&mut self, locked: &LockedCircuit) {
        let words = locked.keys.as_words();
        assert_eq!(words.len(), self.key_words.len(), "rekey width mismatch");
        self.key_words = words;
        self.memo.clear();
    }

    /// Number of data inputs the oracle expects per query (excluding the
    /// SE pin).
    pub fn input_width(&self) -> usize {
        self.sim.data_width() - usize::from(self.has_se)
    }

    /// Number of outputs per response.
    pub fn output_width(&self) -> usize {
        self.sim.output_width()
    }

    fn eval(&mut self, inputs: &[bool], se: bool) -> Vec<bool> {
        let mut data: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        if self.has_se {
            data.push(if se { u64::MAX } else { 0 });
        }
        self.sim
            .eval_words(&data, &self.key_words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Applies one input pattern through the scan interface and returns
    /// the response. With the SE defense present and corruption enabled,
    /// `SE = 1` during the access. A repeated pattern is answered from
    /// the memo cache without a chip access (and without bumping
    /// [`Oracle::queries`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_width()`.
    pub fn query(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_width(), "oracle input width");
        if let Some(cached) = self.memo.get(inputs) {
            self.memo_hits += 1;
            ril_trace::counter("oracle.cache_hit", 1);
            return cached.clone();
        }
        self.queries += 1;
        let response = self.eval(inputs, self.scan_corrupted);
        if self.memo.len() < MEMO_CAP {
            self.memo.insert(inputs.to_vec(), response.clone());
        }
        response
    }

    /// Ground-truth functional response (`SE = 0`) — available to the
    /// evaluation harness, *not* to attacks. Never cached (it is not a
    /// scan access).
    pub fn functional_response(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.input_width(), "oracle input width");
        self.eval(inputs, false)
    }

    /// Queries issued so far (scan chip accesses; memo hits excluded).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Scan queries answered from the memo cache instead of the chip.
    pub fn cache_hits(&self) -> u64 {
        self.memo_hits
    }
}

impl OracleSource for Oracle {
    fn input_width(&self) -> usize {
        Oracle::input_width(self)
    }

    fn output_width(&self) -> usize {
        Oracle::output_width(self)
    }

    fn try_query(&mut self, inputs: &[bool]) -> Result<Vec<bool>, OracleError> {
        Ok(self.query(inputs))
    }

    fn queries(&self) -> u64 {
        Oracle::queries(self)
    }
}

/// The attacker's reverse-engineered netlist view.
///
/// The Scan-Enable circuitry lives *inside* the analog MRAM LUT (an extra
/// MTJ and a transmission-gate MUX), so layout reverse engineering shows a
/// plain LUT: the attacker's netlist has the SE path absent. We model this
/// by tying the `SE` pin to constant 0, which makes every SE-XOR stage
/// transparent (and the hidden `K_SE` key bits unobservable).
pub fn attacker_view(locked: &LockedCircuit) -> Netlist {
    let mut nl = locked.netlist.clone();
    if let Some(se) = nl.net_id(SE_PIN) {
        let zero = nl.fresh_net("se_tied");
        nl.add_gate(GateKind::Const0, &[], zero)
            .expect("fresh net is undriven");
        let redirected = nl.redirect_consumers(se, zero);
        debug_assert!(redirected > 0 || locked.blocks == 0);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use ril_core::{Obfuscator, RilBlockSpec};
    use ril_netlist::{generators, Simulator};

    fn locked(scan: bool) -> LockedCircuit {
        let host = generators::adder(6);
        Obfuscator::new(RilBlockSpec::size_8x8())
            .scan_obfuscation(scan)
            .seed(13)
            .obfuscate(&host)
            .unwrap()
    }

    #[test]
    fn oracle_matches_original_without_scan_defense() {
        let lc = locked(false);
        let mut oracle = Oracle::new(&lc).unwrap();
        let mut sim = Simulator::new(&lc.original).unwrap();
        for pattern in [0u64, 5, 63, 4095] {
            let bits: Vec<bool> = (0..oracle.input_width())
                .map(|i| (pattern >> i) & 1 == 1)
                .collect();
            let resp = oracle.query(&bits);
            let expect = sim.eval_bits(&lc.original, &bits);
            assert_eq!(resp, expect);
        }
        assert_eq!(oracle.queries(), 4);
    }

    #[test]
    fn scan_defense_corrupts_some_response() {
        // Find a seed whose SE keys are not all zero, then at least one
        // input pattern must answer differently in scan vs functional mode.
        for seed in 0..20 {
            let host = generators::adder(6);
            let lc = Obfuscator::new(RilBlockSpec::size_8x8())
                .scan_obfuscation(true)
                .seed(seed)
                .obfuscate(&host)
                .unwrap();
            let any_se = lc
                .keys
                .kinds()
                .iter()
                .zip(lc.keys.bits())
                .any(|(k, &v)| matches!(k, ril_core::KeyBitKind::ScanEnable { .. }) && v);
            if !any_se {
                continue;
            }
            let mut oracle = Oracle::new(&lc).unwrap();
            let w = oracle.input_width();
            let mut corrupted = false;
            for pattern in 0u64..256 {
                let bits: Vec<bool> = (0..w).map(|i| (pattern >> i) & 1 == 1).collect();
                if oracle.query(&bits) != oracle.functional_response(&bits) {
                    corrupted = true;
                    break;
                }
            }
            assert!(corrupted, "seed {seed}: SE key set but responses clean");
            return;
        }
        panic!("no seed produced a set SE key");
    }

    #[test]
    fn disabling_corruption_restores_functional_responses() {
        let lc = locked(true);
        let mut honest = Oracle::new(&lc).unwrap().without_scan_corruption();
        let w = honest.input_width();
        for pattern in 0u64..64 {
            let bits: Vec<bool> = (0..w).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(honest.query(&bits), honest.functional_response(&bits));
        }
    }

    #[test]
    fn repeated_queries_hit_the_memo_cache() {
        let lc = locked(true);
        let mut oracle = Oracle::new(&lc).unwrap();
        let w = oracle.input_width();
        let bits: Vec<bool> = (0..w).map(|i| i % 2 == 0).collect();
        let first = oracle.query(&bits);
        assert_eq!(oracle.queries(), 1);
        assert_eq!(oracle.cache_hits(), 0);
        let second = oracle.query(&bits);
        assert_eq!(first, second);
        assert_eq!(oracle.queries(), 1, "cache hit must not touch the chip");
        assert_eq!(oracle.cache_hits(), 1);
        // A different pattern is a real chip access again.
        let other: Vec<bool> = (0..w).map(|i| i % 2 == 1).collect();
        oracle.query(&other);
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn rekey_invalidates_the_memo_cache() {
        use rand::SeedableRng;
        let mut lc = locked(true);
        let mut oracle = Oracle::new(&lc).unwrap();
        let w = oracle.input_width();
        let bits: Vec<bool> = (0..w).map(|i| i % 3 == 0).collect();
        let functional_before = oracle.functional_response(&bits);
        oracle.query(&bits);
        oracle.query(&bits);
        assert_eq!(oracle.cache_hits(), 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        ril_core::morph_all(&mut lc, &mut rng);
        oracle.rekey(&lc);
        let after = oracle.query(&bits);
        assert_eq!(
            oracle.queries(),
            2,
            "post-rekey query must re-evaluate, not reuse the stale memo"
        );
        // Morphing never changes functional behaviour; scan responses may
        // differ, but the fresh memo must hold the new generation's answer.
        assert_eq!(oracle.functional_response(&bits), functional_before);
        assert_eq!(oracle.query(&bits), after);
    }

    #[test]
    fn oracle_as_source_is_infallible() {
        let lc = locked(false);
        let mut oracle = Oracle::new(&lc).unwrap();
        let w = OracleSource::input_width(&oracle);
        let bits = vec![false; w];
        let via_trait = oracle.try_query(&bits).unwrap();
        assert_eq!(via_trait.len(), OracleSource::output_width(&oracle));
        assert_eq!(oracle.generation(), None);
    }

    #[test]
    fn attacker_view_hides_se_behaviour() {
        let lc = locked(true);
        let view = attacker_view(&lc);
        view.validate().unwrap();
        // Same I/O widths as the locked netlist (SE pin still declared).
        assert_eq!(view.inputs().len(), lc.netlist.inputs().len());
        // Under the correct key the view equals the functional circuit even
        // with SE pin driven high — the XOR stages are tied off.
        let mut sim_view = Simulator::new(&view).unwrap();
        let mut sim_orig = Simulator::new(&lc.original).unwrap();
        let kw = lc.keys.as_words();
        let n = lc.original.data_inputs().len();
        for pattern in [1u64, 77, 1023] {
            let data: Vec<u64> = (0..n)
                .map(|i| if (pattern >> i) & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let mut dv = data.clone();
            dv.push(u64::MAX); // SE pin high — must not matter in the view
            let o1 = sim_orig.eval_words(&lc.original, &data, &[]);
            let o2 = sim_view.eval_words(&view, &dv, &kw);
            assert_eq!(o1, o2);
        }
    }
}
